"""Setuptools entry point (kept for offline editable installs without wheel)."""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "Schema Independent Relational Learning: Castor, baseline ILP learners, "
        "and the supporting relational substrate"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    package_data={"repro": ["py.typed"]},
    python_requires=">=3.9",
)
