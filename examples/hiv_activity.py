"""Domain example: learn anti-HIV activity from molecular structure.

Run with::

    python examples/hiv_activity.py

The synthetic HIV dataset mirrors the NCI AIDS antiviral screen used in the
paper: compounds are bags of typed atoms connected by typed bonds, and the
target ``hivActive(comp)`` holds exactly when a nitrogen atom carrying
property ``p2_1`` is bonded to an oxygen atom.  The script learns the target
over the three schema variants of Table 3 (Initial, 4NF-1, 4NF-2) with Castor
and reports precision/recall per variant, illustrating that the IND-aware
learner keeps working when the bond relation is composed with its type
relations or split into source/target halves.

All three variants run through **one** :class:`LearningSession`: the
pooled-SQLite backend and the per-variant saturation stores are owned by the
session, so a second pass over a variant would start warm.
"""

from __future__ import annotations

import time

from repro import CastorParameters, LearningSession, SessionConfig, evaluate_definition
from repro.castor.bottom_clause import CastorBottomClauseConfig
from repro.datasets import hiv


def main() -> None:
    bundle = hiv.load(hiv.HivConfig(num_compounds=50, min_atoms=3, max_atoms=6), seed=11)
    print(
        f"Molecules: {bundle.base_instance.total_tuples()} tuples, "
        f"+{len(bundle.examples.positives)} active / -{len(bundle.examples.negatives)} inactive"
    )

    parameters = CastorParameters(
        sample_size=3,
        beam_width=2,
        bottom_clause=CastorBottomClauseConfig(max_depth=3, max_distinct_variables=15),
    )
    train, test = bundle.examples.train_test_split(test_fraction=0.3, seed=0)
    with LearningSession(SessionConfig(backend="sqlite-pooled", parallelism=2)) as session:
        for variant in bundle.variant_names:
            schema = bundle.schema(variant)
            instance = bundle.instance(variant)
            learner = session.learner("castor", schema, parameters)
            start = time.perf_counter()
            definition = learner.learn(instance, train)
            elapsed = time.perf_counter() - start
            evaluation = evaluate_definition(definition, instance, test)
            print(f"\n--- schema variant: {variant} ({len(schema)} relations) ---")
            for clause in definition:
                print(f"  {clause}")
            print(
                f"  precision={evaluation.precision:.2f} recall={evaluation.recall:.2f} "
                f"time={elapsed:.1f}s"
            )


if __name__ == "__main__":
    main()
