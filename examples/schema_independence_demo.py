"""Schema-independence demo: Castor vs. a top-down learner across schema variants.

Run with::

    python examples/schema_independence_demo.py

The script learns the same target (advisedBy) over every UW-CSE schema
variant — the highly decomposed Original schema, the 4NF schema, and two
denormalized schemas — once with Castor and once with the Aleph-FOIL
emulation.  It then compares the *outputs*: a schema-independent learner
returns definitions whose results agree on corresponding instances
(Definition 3.10 of the paper), a schema-dependent one does not.

Both checks share one :class:`LearningSession`, so every variant's instance
is prepared exactly once and reused across the two learners.
"""

from __future__ import annotations

from repro import LearningSession, SessionConfig
from repro.datasets import uwcse
from repro.experiments import aleph_foil_spec, castor_spec


def main() -> None:
    config = uwcse.UwCseConfig(num_students=20, num_professors=6, num_courses=10)
    bundle = uwcse.load(config, seed=3)

    with LearningSession(SessionConfig()) as session:
        for spec in (castor_spec(), aleph_foil_spec(clause_length=6, name="Aleph-FOIL")):
            report = session.check_schema_independence(bundle, spec)
            print(f"\n=== {spec.name} ===")
            print("result-set size per schema variant:", report.result_sizes)
            for pair, equivalent in report.pairwise_equivalent.items():
                print(f"  {pair:35s} equivalent: {equivalent}")
            print("schema independent on this dataset:", report.is_schema_independent)
            for variant, definition in report.definitions.items():
                first_clause = definition.clauses[0] if len(definition) else "(empty)"
                print(f"  [{variant}] {first_clause}")


if __name__ == "__main__":
    main()
