"""Query-based learning example: the A2 algorithm and its query complexity.

Run with::

    python examples/query_based_learning.py

A random Horn definition is generated over the most denormalized UW-CSE
schema variant, rewritten (via the inverse decomposition) for each of the
other variants, and then re-learned from scratch by the A2-style query-based
learner, which only interacts with an oracle through equivalence and
membership queries.  The number of membership queries grows as the schema is
decomposed — the Figure 3 / Theorem 8.1 effect.

As a final, data-grounded check the script materializes a small UW-CSE
database through a :class:`LearningSession` and verifies that each learned
definition returns the same result relation as its target on the variant's
actual instance — the semantic equivalence the oracle's EQs promised,
re-validated on real tuples.
"""

from __future__ import annotations

from repro import LearningSession, SessionConfig
from repro.datasets import uwcse
from repro.experiments.figures import _map_definition_to_variant
from repro.querybased import A2Learner, A2Parameters, HornOracle, RandomDefinitionConfig, RandomDefinitionGenerator
from repro.transform.equivalence import definition_results


def main() -> None:
    variants = {variant.name: variant for variant in uwcse.schema_variants()}
    most_composed = variants["denormalized2"]

    generator = RandomDefinitionGenerator(
        most_composed.schema,
        RandomDefinitionConfig(num_clauses=2, num_variables=6, target_name="target"),
        seed=42,
    )
    definition = generator.generate()
    print("Random target definition over the Denormalized-2 schema:")
    print(definition)

    bundle = uwcse.load(
        uwcse.UwCseConfig(num_students=12, num_professors=4, num_courses=6), seed=9
    )
    with LearningSession(SessionConfig(backend="sqlite")) as session:
        for name in ("original", "4nf", "denormalized1", "denormalized2"):
            variant = variants[name]
            target = _map_definition_to_variant(
                definition, most_composed.transformation, variant.transformation
            )
            oracle = HornOracle(target)
            result = A2Learner(A2Parameters(max_equivalence_queries=100)).learn(
                oracle, target.target
            )
            line = (
                f"[{name:15s}] converged={result.converged} "
                f"EQs={result.equivalence_queries} MQs={result.membership_queries}"
            )
            if result.converged:
                # Semantic spot-check on data: learned and target definitions
                # must return the same result relation on the variant's
                # materialized instance.
                instance = session.prepare(bundle.instance(name))
                learned_rows = definition_results(result.hypothesis, instance)
                target_rows = definition_results(target, instance)
                line += f" | result set matches on data: {learned_rows == target_rows}"
            print(f"\n{line}")


if __name__ == "__main__":
    main()
