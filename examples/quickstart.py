"""Quickstart: learn advisedBy over the synthetic UW-CSE database with Castor.

Run with::

    python examples/quickstart.py

The script generates a small UW-CSE-style department, splits the labeled
advisedBy pairs into train/test, learns a Horn definition with Castor
through a :class:`LearningSession` (the unified front door: one validated
config instead of per-learner knobs), and prints the definition together
with its precision and recall.

To learn against a persistent evaluation server instead — so repeated runs
reuse one warm worker fleet — start one and swap the session line::

    python -m repro.distributed.service --serve 127.0.0.1:7463
    # then: session = repro.connect("127.0.0.1:7463")
"""

from __future__ import annotations

from repro import CastorParameters, LearningSession, SessionConfig, evaluate_definition
from repro.castor.bottom_clause import CastorBottomClauseConfig
from repro.datasets import uwcse


def main() -> None:
    # A small department keeps the run under a few seconds.
    config = uwcse.UwCseConfig(num_students=25, num_professors=8, num_courses=12)
    bundle = uwcse.load(config, seed=7)
    print("Schema variants:", ", ".join(bundle.variant_names))

    schema = bundle.schema("original")
    instance = bundle.instance("original")
    print(f"Database: {len(schema)} relations, {instance.total_tuples()} tuples")
    print(
        f"Examples: +{len(bundle.examples.positives)} / -{len(bundle.examples.negatives)}"
    )

    train, test = bundle.examples.train_test_split(test_fraction=0.3, seed=0)
    parameters = CastorParameters(
        sample_size=3,
        beam_width=2,
        bottom_clause=CastorBottomClauseConfig(max_depth=3, max_distinct_variables=15),
    )
    with LearningSession(SessionConfig(backend="sqlite")) as session:
        learner = session.learner("castor", schema, parameters)
        definition = learner.learn(instance, train)

    print("\nLearned definition for advisedBy(stud, prof):")
    print(definition if len(definition) else "  (no clause satisfied the acceptance thresholds)")

    evaluation = evaluate_definition(definition, instance, test)
    print(f"\nTest precision: {evaluation.precision:.2f}")
    print(f"Test recall:    {evaluation.recall:.2f}")


if __name__ == "__main__":
    main()
