"""Shared benchmark configuration.

Every benchmark regenerates one table or figure of the paper at reduced
scale (see DESIGN.md for the scale substitutions).  ``pytest-benchmark`` is
used in pedantic mode with a single round so that a full
``pytest benchmarks/ --benchmark-only`` sweep stays laptop-friendly; crank
the dataset configs and fold counts up for a longer, closer-to-paper run.
"""

from __future__ import annotations

import pytest

from repro.datasets import hiv, imdb, uwcse

# Reduced-scale dataset configurations shared by the benchmarks.
UWCSE_CONFIG = uwcse.UwCseConfig(num_students=20, num_professors=6, num_courses=10)
HIV_CONFIG = hiv.HivConfig(num_compounds=30, min_atoms=3, max_atoms=5)
HIV_LARGE_CONFIG = hiv.HivConfig(num_compounds=60, min_atoms=3, max_atoms=6)
IMDB_CONFIG = imdb.ImdbConfig(
    num_movies=30, num_directors=12, num_producers=8, num_companies=8, num_actors=20
)
SEED = 1


@pytest.fixture(scope="session")
def uwcse_bundle():
    return uwcse.load(UWCSE_CONFIG, seed=SEED)


@pytest.fixture(scope="session")
def hiv_bundle():
    return hiv.load(HIV_CONFIG, seed=SEED)


@pytest.fixture(scope="session")
def hiv_large_bundle():
    return hiv.load(HIV_LARGE_CONFIG, seed=SEED)


@pytest.fixture(scope="session")
def imdb_bundle():
    return imdb.load(IMDB_CONFIG, seed=SEED)


def run_once(benchmark, function, *args, **kwargs):
    """Run ``function`` exactly once under pytest-benchmark's pedantic mode."""
    return benchmark.pedantic(function, args=args, kwargs=kwargs, rounds=1, iterations=1)
