"""Table 12: Castor with subset-form INDs only (general decomposition/composition)."""

from repro.experiments.harness import run_schema_sweep
from repro.experiments.reporting import format_paper_table
from repro.experiments.tables import castor_spec, _downgrade_bundle_inds

from .conftest import run_once


def _sweep_subset_inds(bundle, variants):
    downgraded = _downgrade_bundle_inds(bundle)
    spec = castor_spec(use_subset_inds=True, name="Castor (subset INDs)")
    return run_schema_sweep(downgraded, [spec], variants=variants, folds=1, seed=0)


def test_table12_uwcse_subset_inds(benchmark, uwcse_bundle):
    variants = ["original", "4nf", "denormalized2"]
    results = run_once(benchmark, _sweep_subset_inds, uwcse_bundle, variants)
    print("\n" + format_paper_table(results, variants, "Table 12 (UW-CSE, subset INDs)"))


def test_table12_hiv_subset_inds(benchmark, hiv_bundle):
    variants = ["initial", "4nf1", "4nf2"]
    results = run_once(benchmark, _sweep_subset_inds, hiv_bundle, variants)
    print("\n" + format_paper_table(results, variants, "Table 12 (HIV, subset INDs)"))


def test_table12_imdb_subset_inds(benchmark, imdb_bundle):
    variants = ["jmdb", "stanford", "denormalized"]
    results = run_once(benchmark, _sweep_subset_inds, imdb_bundle, variants)
    print("\n" + format_paper_table(results, variants, "Table 12 (IMDb, subset INDs)"))
