"""Table 13: impact of the stored-procedure optimization on bottom-clause construction."""

from repro.castor.stored_procedures import compare_stored_procedure_modes

from .conftest import run_once


def _compare(bundle, variant):
    return compare_stored_procedure_modes(
        bundle.instance(variant), bundle.examples.positives, bundle.schema(variant)
    )


def test_table13_hiv(benchmark, hiv_bundle):
    result = run_once(benchmark, _compare, hiv_bundle, "initial")
    print(
        f"\nTable 13 (HIV): with SP {result['with_stored_procedures_seconds']:.3f}s, "
        f"without SP {result['without_stored_procedures_seconds']:.3f}s, "
        f"speedup {result['speedup']:.2f}x"
    )
    assert result["speedup"] > 0


def test_table13_imdb(benchmark, imdb_bundle):
    result = run_once(benchmark, _compare, imdb_bundle, "jmdb")
    print(
        f"\nTable 13 (IMDb): with SP {result['with_stored_procedures_seconds']:.3f}s, "
        f"without SP {result['without_stored_procedures_seconds']:.3f}s, "
        f"speedup {result['speedup']:.2f}x"
    )


def test_table13_uwcse(benchmark, uwcse_bundle):
    result = run_once(benchmark, _compare, uwcse_bundle, "original")
    print(
        f"\nTable 13 (UW-CSE): with SP {result['with_stored_procedures_seconds']:.3f}s, "
        f"without SP {result['without_stored_procedures_seconds']:.3f}s, "
        f"speedup {result['speedup']:.2f}x"
    )
