"""Table 13: impact of the stored-procedure optimization on bottom-clause
construction, plus the saturation parity/performance gate.

Two usage modes:

* under pytest (``pytest benchmarks/ --benchmark-only``) the ``test_*``
  functions regenerate Table 13 on the shared dataset bundles;
* standalone, the script gates the **compiled saturation path** — frontier
  expansion through the backend's ``neighbors_of_batch`` capability (one
  set-at-a-time statement per relation and depth level on SQLite, one
  cross-relation dict hit per value on ``memory``) — against the per-value
  Python ``tuples_containing`` path::

      PYTHONPATH=src python benchmarks/bench_table13_stored_procedures.py
          [--quick] [--backend {memory,sqlite,both}] [--repeats N]
          [--seed N] [--parallelism N] [--json PATH]

  The gate asserts the two paths construct **byte-identical** bottom
  clauses for the UW-CSE/HIV positive-example sets; exit status is non-zero
  on any mismatch, so CI can gate on it.  ``--json`` writes the
  machine-readable summary (compiled-vs-python saturation speedups, the
  memory-backend index-vs-relation-scan regression check, and the Table 13
  with/without-stored-procedures quantity) uploaded as a CI artifact.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from typing import Dict, List, Optional, Sequence, Tuple

from repro.castor.bottom_clause import CastorBottomClauseBuilder, CastorBottomClauseConfig
from repro.castor.stored_procedures import compare_stored_procedure_modes
from repro.database.instance import DatabaseInstance
from repro.datasets import hiv, uwcse
from repro.learning.bottom_clause import BatchSaturationEngine
from repro.learning.examples import Example
from repro.obs import provenance

if __package__:  # pytest collects this module as part of the benchmarks package
    from .conftest import run_once

SATURATION_BACKENDS = ("memory", "sqlite")


# --------------------------------------------------------------------- #
# pytest entry points (Table 13 on the shared bundles)
# --------------------------------------------------------------------- #
def _compare(bundle, variant):
    return compare_stored_procedure_modes(
        bundle.instance(variant), bundle.examples.positives, bundle.schema(variant)
    )


def test_table13_hiv(benchmark, hiv_bundle):
    result = run_once(benchmark, _compare, hiv_bundle, "initial")
    print(
        f"\nTable 13 (HIV): with SP {result['with_stored_procedures_seconds']:.3f}s, "
        f"without SP {result['without_stored_procedures_seconds']:.3f}s, "
        f"speedup {result['speedup']:.2f}x"
    )
    assert result["speedup"] > 0


def test_table13_imdb(benchmark, imdb_bundle):
    result = run_once(benchmark, _compare, imdb_bundle, "jmdb")
    print(
        f"\nTable 13 (IMDb): with SP {result['with_stored_procedures_seconds']:.3f}s, "
        f"without SP {result['without_stored_procedures_seconds']:.3f}s, "
        f"speedup {result['speedup']:.2f}x"
    )


def test_table13_uwcse(benchmark, uwcse_bundle):
    result = run_once(benchmark, _compare, uwcse_bundle, "original")
    print(
        f"\nTable 13 (UW-CSE): with SP {result['with_stored_procedures_seconds']:.3f}s, "
        f"without SP {result['without_stored_procedures_seconds']:.3f}s, "
        f"speedup {result['speedup']:.2f}x"
    )


# --------------------------------------------------------------------- #
# Standalone saturation parity/performance gate
# --------------------------------------------------------------------- #
def time_saturation(
    instance: DatabaseInstance,
    examples: Sequence[Example],
    config: CastorBottomClauseConfig,
    compiled: bool,
    repeats: int,
    parallelism: int,
) -> Tuple[float, List[str]]:
    """Best-of-``repeats`` wall time of saturating the whole example set.

    ``compiled=True`` is this PR's path: batched level-synchronous
    construction over the backend's set-at-a-time saturation capability
    (one :class:`BatchSaturationEngine` call for the whole set).
    ``compiled=False`` is the pre-batching baseline: one example at a time,
    one Python ``tuples_containing`` round-trip per frontier constant.  The
    builder is constructed inside the timed region on every repeat so
    metadata compilation is charged to both paths alike.
    """
    clauses: List[str] = []
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        builder = CastorBottomClauseBuilder(
            instance, config=config, use_compiled_lookups=compiled
        )
        if compiled:
            engine = BatchSaturationEngine(builder, parallelism=parallelism)
            clauses = [str(c) for c in engine.build_ground_batch(examples)]
        else:
            clauses = [str(builder.build_ground(example)) for example in examples]
        best = min(best, time.perf_counter() - start)
    return best, clauses


def time_memory_value_lookups(
    instance: DatabaseInstance, repeats: int
) -> Dict[str, float]:
    """Regression check: memory-backend ``tuples_containing`` must answer
    from the backend's cross-relation value index, not a per-relation scan.

    Times the indexed instance-level lookup against the naive loop over
    every relation store for every distinct value in the database; if the
    index is ever lost, the recorded speedup collapses toward 1x.
    """
    values = sorted(
        {v for relation in instance.relations() for row in relation for v in row},
        key=str,
    )
    indexed = float("inf")
    naive = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        for value in values:
            instance.tuples_containing(value)
        indexed = min(indexed, time.perf_counter() - start)
        relations = [(r.schema.name, r) for r in instance.relations()]
        start = time.perf_counter()
        for value in values:
            found = []
            for name, relation in relations:
                for row in relation.tuples_containing(value):
                    found.append((name, row))
        naive = min(naive, time.perf_counter() - start)
    return {
        "values": float(len(values)),
        "indexed_seconds": indexed,
        "relation_scan_seconds": naive,
        "speedup": naive / indexed if indexed > 0 else 0.0,
    }


def run_workload(
    name: str,
    bundle,
    backends: Sequence[str],
    config: CastorBottomClauseConfig,
    repeats: int,
    parallelism: int,
) -> Tuple[Dict[str, object], bool]:
    """Benchmark one dataset; returns the result record and a parity flag."""
    variant = bundle.variant_names[0]
    base_instance = bundle.instance(variant)
    examples = bundle.examples.positives
    print(
        f"\n[{name}] variant={variant} tuples={base_instance.total_tuples()} "
        f"positive examples={len(examples)}"
    )
    record: Dict[str, object] = {
        "workload": name,
        "variant": variant,
        "tuples": base_instance.total_tuples(),
        "examples": len(examples),
        "saturation_seconds": {},
        "speedups": {},
    }
    parity = True

    reference: Optional[List[str]] = None
    print("  saturation construction (whole positive set, ground clauses):")
    for backend in backends:
        instance = (
            base_instance
            if backend == base_instance.backend_name
            else base_instance.with_backend(backend)
        )
        compiled_seconds, compiled_clauses = time_saturation(
            instance, examples, config, True, repeats, parallelism
        )
        python_seconds, python_clauses = time_saturation(
            instance, examples, config, False, repeats, parallelism
        )
        record["saturation_seconds"][backend] = {
            "compiled": compiled_seconds,
            "python": python_seconds,
        }
        speedup = python_seconds / compiled_seconds if compiled_seconds > 0 else 0.0
        record["speedups"][f"{backend}_compiled_vs_python"] = speedup
        print(
            f"    {backend:>7}: compiled {compiled_seconds * 1000:8.1f} ms | "
            f"python {python_seconds * 1000:8.1f} ms | {speedup:5.2f}x"
        )
        if compiled_clauses != python_clauses:
            parity = False
            print(f"  PARITY MISMATCH [{backend}]: compiled vs python clauses differ")
        if reference is None:
            reference = compiled_clauses
        elif compiled_clauses != reference:
            parity = False
            print(
                f"  PARITY MISMATCH [{backend}]: clauses differ from "
                f"{backends[0]}'s"
            )
    if parity:
        print(
            "  parity: identical bottom clauses across "
            f"{'/'.join(backends)} x compiled/python lookups"
        )

    if "memory" in backends:
        memory_instance = (
            base_instance
            if base_instance.backend_name == "memory"
            else base_instance.with_backend("memory")
        )
        lookup = time_memory_value_lookups(memory_instance, repeats)
        record["memory_value_index"] = lookup
        record["speedups"]["memory_index_vs_relation_scan"] = lookup["speedup"]
        print(
            f"  memory value lookups ({int(lookup['values'])} values): indexed "
            f"{lookup['indexed_seconds'] * 1000:6.1f} ms | relation scan "
            f"{lookup['relation_scan_seconds'] * 1000:6.1f} ms | "
            f"{lookup['speedup']:.2f}x"
        )

    table13 = compare_stored_procedure_modes(
        base_instance,
        examples,
        bundle.schema(variant),
        config=config,
        parallelism=parallelism,
    )
    record["table13"] = table13
    print(
        f"  Table 13: with SP {table13['with_stored_procedures_seconds'] * 1000:8.1f} ms | "
        f"without SP {table13['without_stored_procedures_seconds'] * 1000:8.1f} ms | "
        f"speedup {table13['speedup']:.2f}x"
    )
    return record, parity


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--backend",
        choices=[*SATURATION_BACKENDS, "both"],
        default="both",
        help="backend(s) to gate saturation parity on (default: both)",
    )
    parser.add_argument(
        "--quick", action="store_true", help="small datasets, one repeat (CI smoke)"
    )
    parser.add_argument("--repeats", type=int, default=None, help="timing repeats")
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument(
        "--parallelism",
        type=int,
        default=1,
        help="thread fan-out for batched construction (default: 1)",
    )
    parser.add_argument(
        "--json",
        metavar="PATH",
        default=None,
        help="write a machine-readable result summary to PATH",
    )
    args = parser.parse_args(argv)

    backends = list(SATURATION_BACKENDS) if args.backend == "both" else [args.backend]
    repeats = args.repeats or (1 if args.quick else 3)
    if args.quick:
        uwcse_config = uwcse.UwCseConfig(num_students=15, num_professors=5, num_courses=8)
        hiv_config = hiv.HivConfig(num_compounds=20, min_atoms=3, max_atoms=4)
    else:
        uwcse_config = uwcse.UwCseConfig(num_students=40, num_professors=12, num_courses=18)
        hiv_config = hiv.HivConfig(num_compounds=60, min_atoms=3, max_atoms=6)
    config = CastorBottomClauseConfig(
        max_depth=3, max_distinct_variables=15, max_total_literals=60
    )

    records: List[Dict[str, object]] = []
    all_parity = True
    for name, bundle in (
        ("uwcse", uwcse.load(uwcse_config, seed=args.seed)),
        ("hiv", hiv.load(hiv_config, seed=args.seed)),
    ):
        record, parity = run_workload(
            name, bundle, backends, config, repeats, args.parallelism
        )
        records.append(record)
        all_parity &= parity

    if args.json:
        summary = {
            "benchmark": "stored_procedures_table13",
            "config": {
                "backends": backends,
                "quick": bool(args.quick),
                "repeats": repeats,
                "seed": args.seed,
                "parallelism": args.parallelism,
            },
            "parity_ok": bool(all_parity),
            "workloads": records,
            "provenance": provenance(benchmark="stored_procedures_table13"),
        }
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(summary, handle, indent=2, sort_keys=True)
        print(f"\nwrote JSON summary to {args.json}")

    if not all_parity:
        print("\nFAIL: compiled and python saturation paths disagree")
        return 1
    warned = False
    uwcse_speedup = records[0]["speedups"].get("sqlite_compiled_vs_python")
    if uwcse_speedup is not None and uwcse_speedup < 1.0:
        warned = True
        print(
            "\nWARN: parity holds but compiled saturation was only "
            f"{uwcse_speedup:.2f}x the python path on UW-CSE (target: > 1x)"
        )
    index_speedup = records[0]["speedups"].get("memory_index_vs_relation_scan")
    if index_speedup is not None and index_speedup < 1.0:
        # The cross-relation value index lost to a plain relation scan —
        # the regression this bench exists to catch (results stay identical
        # when the index wiring is lost, so only the timing can tell).
        warned = True
        print(
            f"\nWARN: memory-backend value lookups ran at {index_speedup:.2f}x "
            "the per-relation scan; the cross-relation index may be unwired"
        )
    if not warned:
        print("\nPASS: saturation parity holds on every backend and lookup path")
    return 0


if __name__ == "__main__":
    sys.exit(main())
