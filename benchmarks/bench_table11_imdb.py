"""Table 11: IMDb — precision/recall/time per learner over JMDB / Stanford / Denormalized."""

from repro.experiments.harness import run_schema_sweep
from repro.experiments.reporting import format_paper_table
from repro.experiments.tables import aleph_foil_spec, aleph_progol_spec, castor_spec

from .conftest import run_once

VARIANTS = ["jmdb", "stanford", "denormalized"]


def _sweep(bundle, specs):
    return run_schema_sweep(bundle, specs, variants=VARIANTS, folds=1, seed=0)


def test_table11_castor(benchmark, imdb_bundle):
    results = run_once(benchmark, _sweep, imdb_bundle, [castor_spec()])
    print("\n" + format_paper_table(results, VARIANTS, "Table 11 (Castor) — IMDb"))


def test_table11_aleph_foil(benchmark, imdb_bundle):
    results = run_once(
        benchmark, _sweep, imdb_bundle, [aleph_foil_spec(clause_length=6, name="Aleph-FOIL")]
    )
    print("\n" + format_paper_table(results, VARIANTS, "Table 11 (Aleph-FOIL) — IMDb"))


def test_table11_aleph_progol(benchmark, imdb_bundle):
    results = run_once(
        benchmark, _sweep, imdb_bundle, [aleph_progol_spec(clause_length=6, name="Aleph-Progol")]
    )
    print("\n" + format_paper_table(results, VARIANTS, "Table 11 (Aleph-Progol) — IMDb"))
