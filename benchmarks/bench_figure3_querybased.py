"""Figure 3: average #EQs and #MQs of the A2 algorithm per schema variant."""

from repro.experiments.figures import figure3_query_complexity

from .conftest import run_once


def test_figure3_query_complexity(benchmark):
    points = run_once(
        benchmark,
        figure3_query_complexity,
        num_variables_range=(4, 6, 8),
        definitions_per_setting=5,
        seed=1,
    )
    print("\nFigure 3 (A2 query complexity):")
    for point in points:
        print(
            f"  vars={point['num_variables']:.0f} variant={point['variant']:15s} "
            f"EQs={point['mean_equivalence_queries']:.1f} "
            f"MQs={point['mean_membership_queries']:.1f}"
        )
    assert len(points) == 12
