"""Table 10: UW-CSE — precision/recall/time per learner and schema variant."""

from repro.experiments.harness import run_schema_sweep
from repro.experiments.reporting import format_paper_table
from repro.experiments.tables import aleph_foil_spec, aleph_progol_spec, castor_spec, foil_spec

from .conftest import run_once

VARIANTS = ["original", "4nf", "denormalized1", "denormalized2"]


def _sweep(bundle, specs):
    return run_schema_sweep(bundle, specs, variants=VARIANTS, folds=1, seed=0)


def test_table10_castor(benchmark, uwcse_bundle):
    results = run_once(benchmark, _sweep, uwcse_bundle, [castor_spec()])
    print("\n" + format_paper_table(results, VARIANTS, "Table 10 (Castor) — UW-CSE"))


def test_table10_aleph_foil(benchmark, uwcse_bundle):
    results = run_once(
        benchmark, _sweep, uwcse_bundle, [aleph_foil_spec(clause_length=6, name="Aleph-FOIL")]
    )
    print("\n" + format_paper_table(results, VARIANTS, "Table 10 (Aleph-FOIL) — UW-CSE"))


def test_table10_aleph_progol(benchmark, uwcse_bundle):
    results = run_once(
        benchmark,
        _sweep,
        uwcse_bundle,
        [aleph_progol_spec(clause_length=6, name="Aleph-Progol")],
    )
    print("\n" + format_paper_table(results, VARIANTS, "Table 10 (Aleph-Progol) — UW-CSE"))


def test_table10_foil(benchmark, uwcse_bundle):
    results = run_once(benchmark, _sweep, uwcse_bundle, [foil_spec()])
    print("\n" + format_paper_table(results, VARIANTS, "Table 10 (FOIL) — UW-CSE"))
