"""Figure 2: Castor running time vs. parallel evaluation resources.

Two surfaces:

* **pytest** (below) — the original reduced-scale thread-count curves via
  ``repro.experiments.figures.figure2_parallelization``;
* **CLI** — an end-to-end Castor parallelization curve over *shard* counts
  on the ``sqlite-sharded`` backend (plus a memory-backend reference run),
  with two hard gates: the learned definition must be literal-for-literal
  identical across every configuration (parallelism only moves work), and —
  on machines with enough cores — the speedup at 4 and 8 shards must clear a
  floor.  Run standalone::

      PYTHONPATH=src python benchmarks/bench_figure2_parallelization.py
          [--quick] [--shards 1 2 4 8] [--json PATH]

  On boxes with fewer than 4 CPUs the speedup floors are recorded as
  skipped (a 1-core container cannot demonstrate parallel speedup); the
  parity gate always runs.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from typing import Dict, List, Optional, Sequence

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
SRC = os.path.join(REPO_ROOT, "src")
if SRC not in sys.path:
    sys.path.insert(0, SRC)

from repro.castor.bottom_clause import CastorBottomClauseConfig  # noqa: E402
from repro.castor.castor import CastorLearner, CastorParameters  # noqa: E402
from repro.datasets import uwcse  # noqa: E402
from repro.obs import provenance  # noqa: E402

#: Minimum end-to-end speedup expected from 4 / 8 shards on a machine with
#: at least that many cores.  Deliberately modest: the quick workload is
#: small and the floor guards against *regressions to below-sequential*,
#: not against imperfect scaling.
SPEEDUP_FLOOR = 1.05


def _make_parameters(seed: int) -> CastorParameters:
    return CastorParameters(
        sample_size=3,
        beam_width=2,
        max_armg_rounds=5,
        bottom_clause=CastorBottomClauseConfig(max_depth=2, max_total_literals=20),
        seed=seed,
    )


def _definition_text(definition) -> List[str]:
    return [str(clause) for clause in definition]


def run_curve(
    quick: bool, shard_counts: Sequence[int], seed: int
) -> Dict[str, object]:
    config = (
        uwcse.UwCseConfig(num_students=20, num_professors=6, num_courses=10)
        if quick
        else uwcse.UwCseConfig(num_students=30, num_professors=9, num_courses=14)
    )
    bundle = uwcse.load(config, seed=seed)
    variant = bundle.variant_names[0]
    schema = bundle.schema(variant)
    instance = bundle.instance(variant)
    examples = bundle.examples

    definitions: Dict[str, List[str]] = {}
    series: List[Dict[str, object]] = []

    # Memory-backend sequential run: the cross-backend parity reference.
    learner = CastorLearner(schema, _make_parameters(seed), backend="memory")
    start = time.perf_counter()
    definitions["memory"] = _definition_text(learner.learn(instance, examples))
    memory_seconds = time.perf_counter() - start

    baseline_seconds: Optional[float] = None
    for shards in shard_counts:
        learner = CastorLearner(
            schema,
            _make_parameters(seed),
            backend="sqlite-sharded",
            shards=shards,
            parallelism=shards,
        )
        start = time.perf_counter()
        definition = learner.learn(instance, examples)
        elapsed = time.perf_counter() - start
        definitions[f"sharded-{shards}"] = _definition_text(definition)
        if baseline_seconds is None:
            baseline_seconds = elapsed
        series.append(
            {
                "shards": shards,
                "seconds": round(elapsed, 4),
                "speedup": round(baseline_seconds / elapsed, 3) if elapsed else None,
            }
        )

    reference = definitions["memory"]
    parity_failures = [
        f"{label}: learned definition differs from the memory-backend run"
        for label, clauses in definitions.items()
        if clauses != reference
    ]
    return {
        "workload": f"uwcse[{variant}]",
        "examples": len(examples.all_examples()),
        "memory_seconds": round(memory_seconds, 4),
        "series": series,
        "clauses_learned": len(reference),
        "definition": reference,
        "parity_failures": parity_failures,
    }


# --------------------------------------------------------------------- #
# pytest entry points (reduced-scale thread curves, unchanged)
# --------------------------------------------------------------------- #
def test_figure2_hiv(benchmark):
    from repro.experiments.figures import figure2_parallelization

    from .conftest import run_once

    series = run_once(
        benchmark, figure2_parallelization, dataset="hiv", thread_counts=(1, 2, 4), seed=1
    )
    print("\nFigure 2 (HIV): " + ", ".join(f"{p['threads']:.0f}T={p['seconds']:.2f}s" for p in series))
    assert len(series) == 3


def test_figure2_uwcse(benchmark):
    from repro.experiments.figures import figure2_parallelization

    from .conftest import run_once

    series = run_once(
        benchmark, figure2_parallelization, dataset="uwcse", thread_counts=(1, 2), seed=1
    )
    print(
        "\nFigure 2 (UW-CSE): "
        + ", ".join(f"{p['threads']:.0f}T={p['seconds']:.2f}s" for p in series)
    )
    assert len(series) == 2


def test_figure2_shard_curve_parity(benchmark):
    """End-to-end shard curve: learned clauses identical across configs."""
    from .conftest import run_once

    report = run_once(benchmark, run_curve, quick=True, shard_counts=(1, 2), seed=1)
    assert not report["parity_failures"], report["parity_failures"]
    assert report["clauses_learned"] >= 1


# --------------------------------------------------------------------- #
# CLI entry point
# --------------------------------------------------------------------- #
def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true", help="small workload")
    parser.add_argument(
        "--shards", type=int, nargs="+", default=[1, 2, 4, 8],
        help="shard counts to sweep (first one is the curve's baseline)",
    )
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument(
        "--speedup-floor", type=float, default=SPEEDUP_FLOOR,
        help="minimum speedup required at 4/8 shards (when cores permit)",
    )
    parser.add_argument("--json", metavar="PATH", default=None)
    args = parser.parse_args(argv)

    cpus = os.cpu_count() or 1
    report = run_curve(args.quick, args.shards, args.seed)
    print(
        f"workload: {report['workload']}, {report['examples']} examples, "
        f"{report['clauses_learned']} clauses learned, {cpus} CPUs"
    )
    print(f"memory backend (sequential reference): {report['memory_seconds']:.2f}s")
    for point in report["series"]:
        print(
            f"sqlite-sharded x{point['shards']}: {point['seconds']:.2f}s "
            f"(speedup {point['speedup']}x)"
        )

    failures: List[str] = list(report["parity_failures"])
    gates: List[Dict[str, object]] = []
    for point in report["series"]:
        if point["shards"] not in (4, 8):
            continue
        if cpus < point["shards"]:
            gates.append(
                {
                    "shards": point["shards"],
                    "status": "skipped",
                    "reason": f"{cpus} CPUs cannot demonstrate "
                    f"{point['shards']}-way speedup",
                }
            )
            continue
        ok = point["speedup"] is not None and point["speedup"] >= args.speedup_floor
        gates.append(
            {
                "shards": point["shards"],
                "status": "ok" if ok else "failed",
                "speedup": point["speedup"],
                "floor": args.speedup_floor,
            }
        )
        if not ok:
            failures.append(
                f"{point['shards']}-shard speedup {point['speedup']}x below "
                f"floor {args.speedup_floor}x"
            )
    for failure in failures:
        print(f"GATE FAILURE: {failure}", file=sys.stderr)
    for gate in gates:
        if gate["status"] == "skipped":
            print(f"gate skipped (shards={gate['shards']}): {gate['reason']}")

    summary: Dict[str, object] = {
        "benchmark": "figure2_parallelization",
        "cpus": cpus,
        "speedup_floor": args.speedup_floor,
        **{k: v for k, v in report.items() if k != "parity_failures"},
        "speedup_gates": gates,
        "parity_ok": not report["parity_failures"],
        "gates_ok": not failures,
        "provenance": provenance(benchmark="figure2_parallelization"),
    }
    if args.json:
        with open(args.json, "w") as handle:
            json.dump(summary, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"wrote {args.json}")
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
