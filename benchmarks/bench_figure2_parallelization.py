"""Figure 2: Castor running time vs. number of coverage-test threads."""

from repro.experiments.figures import figure2_parallelization

from .conftest import run_once


def test_figure2_hiv(benchmark):
    series = run_once(
        benchmark, figure2_parallelization, dataset="hiv", thread_counts=(1, 2, 4), seed=1
    )
    print("\nFigure 2 (HIV): " + ", ".join(f"{p['threads']:.0f}T={p['seconds']:.2f}s" for p in series))
    assert len(series) == 3


def test_figure2_uwcse(benchmark):
    series = run_once(
        benchmark, figure2_parallelization, dataset="uwcse", thread_counts=(1, 2), seed=1
    )
    print(
        "\nFigure 2 (UW-CSE): "
        + ", ".join(f"{p['threads']:.0f}T={p['seconds']:.2f}s" for p in series)
    )
    assert len(series) == 2
