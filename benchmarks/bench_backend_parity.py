"""Backend parity + speed benchmark: memory vs sqlite coverage testing.

Times query-based coverage (the Section 7.5.2 hot path) on the UW-CSE and
HIV workloads under both storage/evaluation backends:

* ``memory`` — the dict-indexed tuple-at-a-time Python backtracking join,
  one evaluator call per (clause, example);
* ``sqlite`` — compiled set-at-a-time SQL: one statement per clause tests
  the whole example set (the Python analogue of the paper's stored-procedure
  path, Table 13).

The script asserts that both backends cover **identical** example sets for
every candidate clause (parity), then reports wall-clock times and the
sqlite speedup.  Run it standalone::

    PYTHONPATH=src python benchmarks/bench_backend_parity.py [--quick]
        [--backend {memory,sqlite,both}] [--repeats N] [--seed N]

Exit status is non-zero on any parity mismatch, so CI can gate on it.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Dict, List, Sequence, Tuple

from repro.castor.bottom_clause import CastorBottomClauseBuilder, CastorBottomClauseConfig
from repro.database.instance import DatabaseInstance
from repro.datasets import hiv, uwcse
from repro.learning.coverage import QueryCoverageEngine
from repro.learning.examples import Example
from repro.logic.clauses import HornClause


def candidate_clauses(
    instance: DatabaseInstance, examples: Sequence[Example], count: int
) -> List[HornClause]:
    """Variablized Castor bottom clauses of the first ``count`` positives.

    These are exactly the clauses the covering loop would submit to coverage
    testing; their bodies are kept below the SQL join limit by the config.
    """
    builder = CastorBottomClauseBuilder(
        instance,
        config=CastorBottomClauseConfig(
            max_depth=2, max_distinct_variables=12, max_total_literals=25
        ),
    )
    clauses: List[HornClause] = []
    for example in examples[:count]:
        clause = builder.build(example)
        if clause.body:
            clauses.append(clause)
    return clauses


def time_coverage(
    instance: DatabaseInstance,
    clauses: Sequence[HornClause],
    examples: Sequence[Example],
    repeats: int,
) -> Tuple[float, List[frozenset]]:
    """Best-of-``repeats`` wall time plus per-clause covered example sets."""
    engine = QueryCoverageEngine(instance)
    covered: List[frozenset] = []
    best = float("inf")
    for _ in range(repeats):
        engine = QueryCoverageEngine(instance)
        start = time.perf_counter()
        covered = [
            frozenset(e.values for e in engine.covered_examples(clause, examples))
            for clause in clauses
        ]
        best = min(best, time.perf_counter() - start)
    return best, covered


def run_workload(
    name: str,
    bundle,
    backends: Sequence[str],
    repeats: int,
) -> Tuple[Dict[str, float], bool]:
    """Benchmark one dataset; returns per-backend seconds and parity flag."""
    variant = bundle.variant_names[0]
    base_instance = bundle.instance(variant)
    examples = bundle.examples.all_examples()
    clauses = candidate_clauses(base_instance, bundle.examples.positives, count=6)
    print(
        f"\n[{name}] variant={variant} tuples={base_instance.total_tuples()} "
        f"examples={len(examples)} clauses={len(clauses)} "
        f"(mean body length "
        f"{sum(len(c.body) for c in clauses) / max(1, len(clauses)):.1f})"
    )

    seconds: Dict[str, float] = {}
    results: Dict[str, List[frozenset]] = {}
    for backend in backends:
        instance = (
            base_instance
            if backend == base_instance.backend_name
            else base_instance.with_backend(backend)
        )
        seconds[backend], results[backend] = time_coverage(
            instance, clauses, examples, repeats
        )
        total_covered = sum(len(s) for s in results[backend])
        print(
            f"  {backend:>7}: {seconds[backend] * 1000:8.1f} ms  "
            f"({total_covered} covered pairs)"
        )

    parity = True
    if len(backends) == 2:
        first, second = backends
        for index, (a, b) in enumerate(zip(results[first], results[second])):
            if a != b:
                parity = False
                print(
                    f"  PARITY MISMATCH on clause {index}: "
                    f"{sorted(a ^ b)} differ between {first} and {second}"
                )
        if parity:
            print(f"  parity: identical covered sets across {first}/{second}")
        if seconds[second] > 0:
            print(
                f"  speedup ({first}/{second}): "
                f"{seconds[first] / seconds[second]:.2f}x"
            )
    return seconds, parity


def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--backend",
        choices=["memory", "sqlite", "both"],
        default="both",
        help="which storage/evaluation backend(s) to run (default: both)",
    )
    parser.add_argument(
        "--quick", action="store_true", help="small datasets, one repeat (CI smoke)"
    )
    parser.add_argument("--repeats", type=int, default=None, help="timing repeats")
    parser.add_argument("--seed", type=int, default=1)
    args = parser.parse_args(argv)

    backends = ["memory", "sqlite"] if args.backend == "both" else [args.backend]
    repeats = args.repeats or (1 if args.quick else 3)

    if args.quick:
        uwcse_config = uwcse.UwCseConfig(num_students=15, num_professors=5, num_courses=8)
        hiv_config = hiv.HivConfig(num_compounds=20, min_atoms=3, max_atoms=4)
    else:
        uwcse_config = uwcse.UwCseConfig(num_students=40, num_professors=12, num_courses=18)
        hiv_config = hiv.HivConfig(num_compounds=60, min_atoms=3, max_atoms=6)

    all_parity = True
    uwcse_seconds, parity = run_workload(
        "uwcse", uwcse.load(uwcse_config, seed=args.seed), backends, repeats
    )
    all_parity &= parity
    _, parity = run_workload(
        "hiv", hiv.load(hiv_config, seed=args.seed), backends, repeats
    )
    all_parity &= parity

    if len(backends) == 2:
        if not all_parity:
            print("\nFAIL: backends disagree on covered examples")
            return 1
        if uwcse_seconds["sqlite"] <= uwcse_seconds["memory"]:
            print("\nPASS: parity holds; sqlite >= memory speed on UW-CSE")
        else:
            print(
                "\nWARN: parity holds but sqlite was slower than memory on UW-CSE "
                f"({uwcse_seconds['sqlite']:.3f}s vs {uwcse_seconds['memory']:.3f}s)"
            )
    return 0


if __name__ == "__main__":
    sys.exit(main())
