"""Backend parity + speed benchmark across all registered backends.

Times the two coverage hot paths of the covering loop (Section 7.5) on the
UW-CSE and HIV workloads:

* **query coverage, sequential** — one ``covered_examples`` call per clause:
  tuple-at-a-time on ``memory``, one compiled SQL statement per clause on
  the SQLite backends;
* **query coverage, batched** — the whole candidate-clause generation in one
  ``BatchCoverageEngine`` call: SQLite backends share one candidate temp
  table per head signature across the batch, ``sqlite-pooled`` fans the
  clauses out over snapshot connections (``--parallelism``), and
  ``sqlite-sharded`` fans the example axis over ``--shards`` worker
  processes;
* **subsumption coverage** — the Python θ-subsumption engine vs the compiled
  saturation-store path (one statement tests a clause against every
  example's saturation at once).

The script asserts that every backend and every path covers **identical**
example sets for every candidate clause (parity) — including the
**cross-shard** check that the sharded backend answers identically at
``shards=1`` and ``--shards N``.  Run it standalone::

    PYTHONPATH=src python benchmarks/bench_backend_parity.py [--quick]
        [--backend {memory,sqlite,sqlite-pooled,sqlite-sharded,both,all}]
        [--repeats N] [--seed N] [--parallelism N] [--shards N] [--json PATH]

``--json`` writes a machine-readable summary (CI uploads it as the
per-commit benchmark artifact); it records the shard configuration.  Exit
status is non-zero on any parity mismatch — cross-backend or cross-shard —
so CI can gate on it.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from typing import Dict, List, Optional, Sequence, Tuple

from repro.castor.bottom_clause import CastorBottomClauseBuilder, CastorBottomClauseConfig
from repro.database.backend import configure_backend_sharding
from repro.database.instance import DatabaseInstance
from repro.distributed.sharding import DEFAULT_STRATEGY
from repro.datasets import hiv, uwcse
from repro.learning.coverage import (
    BatchCoverageEngine,
    QueryCoverageEngine,
    make_coverage_engine,
)
from repro.learning.examples import Example
from repro.logic.clauses import HornClause
from repro.obs import provenance, span as obs_span, tracer as obs_tracer

QUERY_BACKENDS = ("memory", "sqlite", "sqlite-pooled", "sqlite-sharded")


def materialize(base_instance: DatabaseInstance, backend: str, shards: int):
    """The workload instance on ``backend`` (sharded backends configured)."""
    instance = (
        base_instance
        if backend == base_instance.backend_name
        else base_instance.with_backend(backend)
    )
    if backend == "sqlite-sharded":
        configure_backend_sharding(instance.backend, shards)
    return instance


def candidate_clauses(
    instance: DatabaseInstance, examples: Sequence[Example], count: int
) -> List[HornClause]:
    """Variablized Castor bottom clauses of the first ``count`` positives.

    These are exactly the clauses the covering loop would submit to coverage
    testing; their bodies are kept below the SQL join limit by the config.
    """
    builder = CastorBottomClauseBuilder(
        instance,
        config=CastorBottomClauseConfig(
            max_depth=2, max_distinct_variables=12, max_total_literals=25
        ),
    )
    clauses: List[HornClause] = []
    for example in examples[:count]:
        clause = builder.build(example)
        if clause.body:
            clauses.append(clause)
    return clauses


def time_sequential(
    instance: DatabaseInstance,
    clauses: Sequence[HornClause],
    examples: Sequence[Example],
    repeats: int,
) -> Tuple[float, List[frozenset]]:
    """Best-of-``repeats`` wall time of one covered_examples call per clause."""
    covered: List[frozenset] = []
    best = float("inf")
    for _ in range(repeats):
        engine = QueryCoverageEngine(instance)
        start = time.perf_counter()
        covered = [
            frozenset(e.values for e in engine.covered_examples(clause, examples))
            for clause in clauses
        ]
        best = min(best, time.perf_counter() - start)
    return best, covered


def time_batched(
    instance: DatabaseInstance,
    clauses: Sequence[HornClause],
    examples: Sequence[Example],
    repeats: int,
    parallelism: int,
) -> Tuple[float, List[frozenset]]:
    """Best-of-``repeats`` wall time of the whole clause batch in one call."""
    covered: List[frozenset] = []
    best = float("inf")
    for _ in range(repeats):
        batch = BatchCoverageEngine(
            QueryCoverageEngine(instance), parallelism=parallelism
        )
        start = time.perf_counter()
        covered = [
            frozenset(e.values for e in per_clause)
            for per_clause in batch.covered_examples_batch(clauses, examples)
        ]
        best = min(best, time.perf_counter() - start)
    return best, covered


def time_subsumption(
    instance: DatabaseInstance,
    clauses: Sequence[HornClause],
    examples: Sequence[Example],
    strategy: str,
    saturation_cache: Dict[Example, HornClause],
    saturation_store=None,
) -> Tuple[float, List[frozenset]]:
    """Wall time of subsumption coverage over all clauses (fresh engine).

    Saturations are shared between the compared engines (building them is
    identical work for both paths).  For the compiled strategy, passing a
    pre-materialized ``saturation_store`` measures the warm steady state a
    learning run reaches after its first generation; without it the timing
    includes one-off store materialization.
    """
    engine = make_coverage_engine(
        instance, strategy=strategy, saturation_store=saturation_store
    )
    engine._saturation_cache = saturation_cache
    start = time.perf_counter()
    covered = [
        frozenset(e.values for e in engine.covered_examples(clause, examples))
        for clause in clauses
    ]
    return time.perf_counter() - start, covered


def run_workload(
    name: str,
    bundle,
    backends: Sequence[str],
    repeats: int,
    parallelism: int,
    clause_count: int,
    shards: int,
) -> Tuple[Dict[str, object], bool]:
    """Benchmark one dataset; returns the result record and a parity flag."""
    variant = bundle.variant_names[0]
    base_instance = bundle.instance(variant)
    examples = bundle.examples.all_examples()
    clauses = candidate_clauses(
        base_instance, bundle.examples.positives, count=clause_count
    )
    print(
        f"\n[{name}] variant={variant} tuples={base_instance.total_tuples()} "
        f"examples={len(examples)} clauses={len(clauses)} "
        "(mean body length "
        f"{sum(len(c.body) for c in clauses) / max(1, len(clauses)):.1f})"
    )

    record: Dict[str, object] = {
        "workload": name,
        "variant": variant,
        "tuples": base_instance.total_tuples(),
        "examples": len(examples),
        "clauses": len(clauses),
        "query_sequential_seconds": {},
        "query_batched_seconds": {},
        "subsumption_seconds": {},
        "speedups": {},
    }
    parity = True

    sequential: Dict[str, List[frozenset]] = {}
    batched: Dict[str, List[frozenset]] = {}
    instances: Dict[str, DatabaseInstance] = {}
    for backend in backends:
        instances[backend] = materialize(base_instance, backend, shards)
    if "sqlite-sharded" in instances:
        # Spawn + initialize the worker fleet outside the timed region: a
        # learning run pays service startup once, not per generation.
        time_batched(
            instances["sqlite-sharded"], clauses[:2], examples, 1, parallelism
        )

    print("  query coverage (sequential, one call per clause):")
    for backend in backends:
        seconds, sequential[backend] = time_sequential(
            instances[backend], clauses, examples, repeats
        )
        record["query_sequential_seconds"][backend] = seconds
        print(f"    {backend:>13}: {seconds * 1000:8.1f} ms")

    shard_note = f", shards={shards}" if "sqlite-sharded" in backends else ""
    print(f"  query coverage (batched, parallelism={parallelism}{shard_note}):")
    for backend in backends:
        if backend == "memory":
            continue  # no batched entry point beyond the sequential loop
        seconds, batched[backend] = time_batched(
            instances[backend], clauses, examples, repeats, parallelism
        )
        record["query_batched_seconds"][backend] = seconds
        print(f"    {backend:>13}: {seconds * 1000:8.1f} ms")

    reference_backend = backends[0]
    reference = sequential[reference_backend]
    for backend, results in list(sequential.items()) + list(batched.items()):
        for index, (expected, actual) in enumerate(zip(reference, results)):
            if expected != actual:
                parity = False
                print(
                    f"  PARITY MISMATCH [{backend} clause {index}]: "
                    f"{sorted(expected ^ actual)} differ from {reference_backend}"
                )
    if parity:
        print(
            "  parity: identical covered sets across "
            f"{'/'.join(backends)} (sequential and batched)"
        )

    if "sqlite-sharded" in backends and shards > 1:
        # Cross-shard parity: the sharded backend must answer identically
        # however many workers the batch is split over.  (Skipped for
        # --shards 1, where the comparison would be vacuous.)
        single = materialize(base_instance, "sqlite-sharded", 1)
        try:
            _seconds, single_sets = time_batched(
                single, clauses, examples, 1, parallelism
            )
        finally:
            single.backend.close()
        record["cross_shard_parity"] = {
            "shards_compared": [1, shards],
            "strategy": instances["sqlite-sharded"].backend.strategy,
        }
        for index, (expected, actual) in enumerate(
            zip(single_sets, batched["sqlite-sharded"])
        ):
            if expected != actual:
                parity = False
                print(
                    f"  CROSS-SHARD PARITY MISMATCH [clause {index}]: "
                    f"{sorted(expected ^ actual)} differ between "
                    f"shards=1 and shards={shards}"
                )
        if parity:
            print(
                "  parity: sqlite-sharded identical at shards=1 and "
                f"shards={shards}"
            )
    if "sqlite-sharded" in backends:
        instances["sqlite-sharded"].backend.close()

    # Subsumption coverage: Python engine vs compiled saturation store.
    from repro.database.sqlite_backend import SaturationStore

    saturation_cache: Dict[Example, HornClause] = {}
    python_seconds, python_sets = time_subsumption(
        base_instance, clauses, examples, "subsumption-python", saturation_cache
    )
    shared_store = SaturationStore()
    compiled_cold_seconds, compiled_sets = time_subsumption(
        base_instance,
        clauses,
        examples,
        "subsumption-compiled",
        saturation_cache,
        saturation_store=shared_store,
    )
    compiled_warm_seconds, compiled_warm_sets = time_subsumption(
        base_instance,
        clauses,
        examples,
        "subsumption-compiled",
        saturation_cache,
        saturation_store=shared_store,
    )
    record["subsumption_seconds"] = {
        "python": python_seconds,
        "compiled_cold": compiled_cold_seconds,
        "compiled_warm": compiled_warm_seconds,
    }
    print(
        f"  subsumption coverage: python {python_seconds * 1000:8.1f} ms | "
        f"compiled cold {compiled_cold_seconds * 1000:8.1f} ms | "
        f"warm {compiled_warm_seconds * 1000:8.1f} ms"
    )
    if compiled_warm_sets != compiled_sets:
        parity = False
        print("  PARITY MISMATCH: warm and cold compiled subsumption disagree")
    for index, (expected, actual) in enumerate(zip(python_sets, compiled_sets)):
        if expected != actual:
            parity = False
            print(
                f"  PARITY MISMATCH [subsumption clause {index}]: "
                f"{sorted(expected ^ actual)} differ between python and compiled"
            )
    if python_sets == compiled_sets:
        print("  parity: python and compiled subsumption coverage agree")

    speedups: Dict[str, float] = {}
    seq = record["query_sequential_seconds"]
    bat = record["query_batched_seconds"]
    if "memory" in seq and "sqlite" in seq and seq["sqlite"] > 0:
        speedups["sqlite_vs_memory_sequential"] = seq["memory"] / seq["sqlite"]
    if "sqlite" in seq and "sqlite-pooled" in bat and bat["sqlite-pooled"] > 0:
        speedups["pooled_batched_vs_sqlite_sequential"] = (
            seq["sqlite"] / bat["sqlite-pooled"]
        )
    if "sqlite" in seq and "sqlite-sharded" in bat and bat["sqlite-sharded"] > 0:
        speedups["sharded_batched_vs_sqlite_sequential"] = (
            seq["sqlite"] / bat["sqlite-sharded"]
        )
    if "sqlite" in seq and "sqlite" in bat and bat["sqlite"] > 0:
        speedups["sqlite_batched_vs_sqlite_sequential"] = seq["sqlite"] / bat["sqlite"]
    if compiled_warm_seconds > 0:
        speedups["compiled_warm_vs_python_subsumption"] = (
            python_seconds / compiled_warm_seconds
        )
    record["speedups"] = speedups
    for label, value in speedups.items():
        print(f"  speedup {label}: {value:.2f}x")
    return record, parity


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--backend",
        choices=[
            "memory", "sqlite", "sqlite-pooled", "sqlite-sharded", "both", "all",
        ],
        default="all",
        help="which storage/evaluation backend(s) to run (default: all); "
        "sqlite-sharded always also times sqlite as its speedup baseline",
    )
    parser.add_argument(
        "--quick", action="store_true", help="small datasets, one repeat (CI smoke)"
    )
    parser.add_argument("--repeats", type=int, default=None, help="timing repeats")
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument(
        "--parallelism",
        type=int,
        default=4,
        help="clause-level fan-out for the batched/pooled path (default: 4)",
    )
    parser.add_argument(
        "--shards",
        type=int,
        default=4,
        help="worker-process count for the sqlite-sharded backend (default: 4)",
    )
    parser.add_argument(
        "--json",
        metavar="PATH",
        default=None,
        help="write a machine-readable result summary to PATH",
    )
    parser.add_argument(
        "--trace",
        metavar="OUT.json",
        default=None,
        help="record spans and write a repro-trace JSON dump to OUT.json "
        "(inspect with `python -m repro.obs.report OUT.json`)",
    )
    parser.add_argument(
        "--trace-chrome",
        metavar="OUT.json",
        default=None,
        help="also/instead write the trace as Chrome trace_event JSON "
        "(load in chrome://tracing or Perfetto)",
    )
    args = parser.parse_args(argv)
    if args.trace or args.trace_chrome:
        obs_tracer().enable(process="bench")

    if args.backend == "all":
        backends = list(QUERY_BACKENDS)
    elif args.backend == "both":
        backends = ["memory", "sqlite"]
    elif args.backend == "sqlite-sharded":
        # The acceptance target is sharded-batched vs sequential
        # single-connection sqlite, so always time the baseline too.
        backends = ["sqlite", "sqlite-sharded"]
    else:
        backends = [args.backend]
    repeats = args.repeats or (1 if args.quick else 3)

    if args.quick:
        uwcse_config = uwcse.UwCseConfig(num_students=15, num_professors=5, num_courses=8)
        hiv_config = hiv.HivConfig(num_compounds=20, min_atoms=3, max_atoms=4)
        clause_count = 8
    else:
        uwcse_config = uwcse.UwCseConfig(num_students=40, num_professors=12, num_courses=18)
        hiv_config = hiv.HivConfig(num_compounds=60, min_atoms=3, max_atoms=6)
        clause_count = 12

    records: List[Dict[str, object]] = []
    all_parity = True
    # One root span per workload: with --trace, the sharded path's
    # service.shard and worker spans all nest under it.
    with obs_span("bench.workload", benchmark="backend_parity", workload="uwcse"):
        uwcse_record, parity = run_workload(
            "uwcse",
            uwcse.load(uwcse_config, seed=args.seed),
            backends,
            repeats,
            args.parallelism,
            clause_count,
            args.shards,
        )
    records.append(uwcse_record)
    all_parity &= parity
    with obs_span("bench.workload", benchmark="backend_parity", workload="hiv"):
        hiv_record, parity = run_workload(
            "hiv",
            hiv.load(hiv_config, seed=args.seed),
            backends,
            repeats,
            args.parallelism,
            clause_count,
            args.shards,
        )
    records.append(hiv_record)
    all_parity &= parity

    if args.json:
        summary = {
            "benchmark": "backend_parity",
            "config": {
                "backends": backends,
                "quick": bool(args.quick),
                "repeats": repeats,
                "seed": args.seed,
                "parallelism": args.parallelism,
                "shards": args.shards,
                "sharding_strategy": DEFAULT_STRATEGY,
            },
            "parity_ok": bool(all_parity),
            "workloads": records,
            "provenance": provenance(benchmark="backend_parity"),
        }
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(summary, handle, indent=2, sort_keys=True)
        print(f"\nwrote JSON summary to {args.json}")
    if args.trace:
        print(f"wrote trace to {obs_tracer().dump_json(args.trace)}")
    if args.trace_chrome:
        print(f"wrote Chrome trace to {obs_tracer().dump_chrome(args.trace_chrome)}")

    if not all_parity:
        print("\nFAIL: coverage paths disagree on covered examples")
        return 1
    warned = False
    for label in (
        "pooled_batched_vs_sqlite_sequential",
        "sharded_batched_vs_sqlite_sequential",
    ):
        target = uwcse_record["speedups"].get(label)
        if target is not None and target < 2.0:
            warned = True
            print(
                f"\nWARN: parity holds but {label} was only {target:.2f}x "
                "on UW-CSE (target: >= 2x; expect less on few cores)"
            )
    if not warned:
        print("\nPASS: parity holds across all backends and coverage paths")
    return 0


if __name__ == "__main__":
    sys.exit(main())
