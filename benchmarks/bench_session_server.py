"""Warm-session vs cold-per-run benchmark (and persistent-server smoke gate).

Measures what the session API buys on **repeated** learning runs — the
cross-validation / parameter-sweep / multi-user pattern the persistent
server exists for:

* **cold** — every run builds a fresh :class:`LearningSession` (the old
  per-run world: instance conversion, service spawn, payload ship, and
  saturation materialization are paid every time);
* **warm** — all runs share one session: the prepared instance, the worker
  fleet, and the saturation store persist, so runs after the first skip
  the spin-up entirely.

With ``--server`` the same comparison runs against a **persistent
evaluation server** (``python -m repro.distributed.service --serve``),
started by the benchmark as a subprocess.  Each run then executes in its
own *client subprocess* (``--client-run``), proving the cross-process
warm-reuse contract: the first client ships the instance payload, every
later client's content hash matches the registered handle and ships
nothing (``reloads_full == 0`` — asserted, non-zero exit otherwise).

Parity is the hard gate: learned definitions and fold metrics must be
byte-identical across every run of every mode, or the exit status is
non-zero.  Run standalone::

    PYTHONPATH=src python benchmarks/bench_session_server.py
        [--quick] [--runs N] [--folds N] [--shards N]
        [--backend {sqlite,sqlite-pooled,sqlite-sharded}]
        [--server] [--json PATH]
"""

from __future__ import annotations

import argparse
import json
import os
import re
import signal
import subprocess
import sys
import threading
import time
from typing import Dict, List, Optional, Sequence

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
SRC = os.path.join(REPO_ROOT, "src")
if SRC not in sys.path:
    sys.path.insert(0, SRC)

from repro import LearningSession, SessionConfig  # noqa: E402
from repro.datasets import uwcse  # noqa: E402
from repro.experiments.harness import LearnerSpec, run_variant  # noqa: E402
from repro.learning.bottom_clause import BottomClauseConfig  # noqa: E402
from repro.obs import provenance, span as obs_span, tracer as obs_tracer  # noqa: E402
from repro.progolem.progolem import ProGolemLearner, ProGolemParameters  # noqa: E402


def load_bundle(quick: bool):
    config = (
        uwcse.UwCseConfig(num_students=10, num_professors=3, num_courses=5)
        if quick
        else uwcse.UwCseConfig(num_students=20, num_professors=6, num_courses=10)
    )
    return uwcse.load(config, seed=5)


def learner_spec() -> LearnerSpec:
    def factory(schema):
        return ProGolemLearner(
            schema,
            ProGolemParameters(
                sample_size=3,
                beam_width=2,
                max_armg_rounds=3,
                max_clauses=4,
                bottom_clause=BottomClauseConfig(max_depth=2, max_total_literals=30),
            ),
        )

    return LearnerSpec("ProGolem", factory)


def result_key(result) -> List[object]:
    # Ordered, not sorted: clause order is part of a definition's identity,
    # and the gate must catch order divergence between warm/cold/server.
    clauses = (
        [str(clause) for clause in result.definition] if result.definition else []
    )
    return [
        round(result.precision, 9),
        round(result.recall, 9),
        round(result.f1, 9),
        result.folds,
        clauses,
    ]


def one_run(bundle, variant: str, folds: int, session: LearningSession):
    start = time.perf_counter()
    result = run_variant(bundle, variant, learner_spec(), folds=folds, session=session)
    return time.perf_counter() - start, result


def run_local(bundle, variant, folds, runs, config) -> Dict[str, object]:
    """Cold (fresh session per run) vs warm (one shared session)."""
    cold_seconds: List[float] = []
    keys: List[object] = []
    for _ in range(runs):
        with LearningSession(config) as session:
            elapsed, result = one_run(bundle, variant, folds, session)
        cold_seconds.append(elapsed)
        keys.append(result_key(result))

    warm_seconds: List[float] = []
    with LearningSession(config) as session:
        for _ in range(runs):
            elapsed, result = one_run(bundle, variant, folds, session)
            warm_seconds.append(elapsed)
            keys.append(result_key(result))

    parity_ok = all(key == keys[0] for key in keys)
    cold_total, warm_total = sum(cold_seconds), sum(warm_seconds)
    return {
        "cold_seconds": [round(s, 4) for s in cold_seconds],
        "warm_seconds": [round(s, 4) for s in warm_seconds],
        "cold_total": round(cold_total, 4),
        "warm_total": round(warm_total, 4),
        "speedup": round(cold_total / warm_total, 3) if warm_total else None,
        "parity_ok": parity_ok,
        "result_key": keys[0],
    }


# --------------------------------------------------------------------- #
# Persistent-server mode
# --------------------------------------------------------------------- #
def client_run(
    address: str, quick: bool, variant: str, folds: int, token: Optional[str]
) -> int:
    """One harness run against the server; JSON report on stdout.

    Runs in its own process (``--client-run``) so the content-hash warm
    path is exercised across process boundaries, exactly like two separate
    harness invocations against one long-lived server.
    """
    bundle = load_bundle(quick)
    start = time.perf_counter()
    with LearningSession.connect(address, token=token) as session:
        result = run_variant(
            bundle, variant, learner_spec(), folds=folds, session=session
        )
        stats = session.evaluation_stats()
    elapsed = time.perf_counter() - start
    print(
        json.dumps(
            {
                "elapsed": round(elapsed, 4),
                "result_key": result_key(result),
                "reloads_full": stats["reloads_full"],
                "register_hits": stats["register_hits"],
            }
        )
    )
    return 0


#: Server mode always runs with auth enabled: the smoke must exercise the
#: token path end to end, and an unauthenticated persistent server is not
#: a configuration the benchmark should bless.
AUTH_TOKEN = "bench-session-secret"


def _client_args(address, quick, variant, folds) -> List[str]:
    args = [
        sys.executable, os.path.abspath(__file__),
        "--client-run", "--address", address,
        "--variant", variant, "--folds", str(folds),
        "--token", AUTH_TOKEN,
    ]
    if quick:
        args.append("--quick")
    return args


def drain_under_load_smoke(
    server, address, env, quick, variant, folds, expected_key
) -> Dict[str, object]:
    """SIGTERM the server while a client run is mid-batch.

    The graceful-drain contract: the in-flight batch finishes (the client
    may even complete with full parity), any *further* request gets a typed
    error — never a hang, never a half-written reply — and the server
    itself exits 0.
    """
    from repro.distributed import ServiceClient

    admin = ServiceClient(address, token=AUTH_TOKEN, client_name="bench-admin")
    client = subprocess.Popen(
        _client_args(address, quick, variant, folds),
        stdout=subprocess.PIPE, stderr=subprocess.PIPE, env=env, text=True,
    )
    try:
        # Fire the signal only once the client is demonstrably mid-run: its
        # warm register bumps the handle's hit counter.
        def hits(status):
            return sum(
                entry.get("register_hits", 0)
                for entry in status.get("handles", {}).values()
            )

        baseline = hits(admin.server_status())
        deadline = time.time() + 120
        while time.time() < deadline:
            if hits(admin.server_status()) > baseline:
                break
            time.sleep(0.1)
        time.sleep(0.3)  # let the first post-register batch take flight
        server.send_signal(signal.SIGTERM)
        stdout, stderr = client.communicate(timeout=180)
    finally:
        if client.poll() is None:
            client.kill()
            client.communicate()
        try:
            admin.close()
        except Exception:  # noqa: BLE001 - the server is going down
            pass
    try:
        server_exit = server.wait(timeout=60)
    except subprocess.TimeoutExpired:
        server_exit = None  # never exited: the drain hung
    completed = client.returncode == 0
    parity = None
    typed_error = None
    if completed:
        report = json.loads(stdout.strip().splitlines()[-1])
        parity = report["result_key"] == expected_key
    else:
        typed_error = bool(
            re.search(
                r"ServerDrainingError|ServerError|TransportError"
                r"|ConnectionRefusedError|ConnectionError",
                stderr,
            )
        )
    return {
        "server_exit": server_exit,
        "client_completed": completed,
        "client_parity": parity,
        "client_typed_error": typed_error,
    }


def run_server_mode(quick, variant, folds, runs, shards) -> Dict[str, object]:
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")
    server = subprocess.Popen(
        [
            sys.executable, "-m", "repro.distributed.service",
            "--serve", "127.0.0.1:0", "--shards", str(shards),
            "--auth-token", AUTH_TOKEN,
        ],
        stdout=subprocess.PIPE,
        env=env,
        text=True,
    )
    try:
        banner = server.stdout.readline()
        if "listening on " not in banner:
            raise RuntimeError(
                f"server failed to start (banner: {banner!r}, "
                f"exit={server.poll()})"
            )
        address = banner.strip().rsplit("listening on ", 1)[1]
        # Drain any further server stdout on a daemon thread so a chatty
        # server (or a worker inheriting the piped fd) can never fill the
        # pipe buffer and deadlock the benchmark mid-batch.
        threading.Thread(target=server.stdout.read, daemon=True).start()
        print(f"persistent server up at {address}")

        reports: List[Dict[str, object]] = []
        for index in range(runs):
            args = _client_args(address, quick, variant, folds)
            output = subprocess.run(args, env=env, capture_output=True, text=True)
            if output.returncode != 0:
                # Surface the client's own traceback — a bare
                # CalledProcessError would hide it from the CI log.
                print(output.stdout, file=sys.stderr)
                print(output.stderr, file=sys.stderr)
                raise RuntimeError(
                    f"client run {index + 1} failed with exit "
                    f"{output.returncode} (stderr above)"
                )
            report = json.loads(output.stdout.strip().splitlines()[-1])
            reports.append(report)
            print(
                f"  client run {index + 1}: {report['elapsed']:.2f}s, "
                f"payloads shipped={report['reloads_full']}, "
                f"register hits={report['register_hits']}"
            )
        print("drain smoke: SIGTERM while a client run is mid-batch")
        drain = drain_under_load_smoke(
            server, address, env, quick, variant, folds,
            reports[0]["result_key"],
        )
        print(
            f"  server exit={drain['server_exit']}, client "
            f"completed={drain['client_completed']} "
            f"(parity={drain['client_parity']}, "
            f"typed error={drain['client_typed_error']})"
        )
        return {
            "address": address,
            "auth": True,
            "run_seconds": [r["elapsed"] for r in reports],
            "reloads_full": [r["reloads_full"] for r in reports],
            "register_hits": [r["register_hits"] for r in reports],
            "result_keys": [r["result_key"] for r in reports],
            "drain": drain,
        }
    finally:
        server.terminate()
        try:
            server.wait(timeout=10)
        except subprocess.TimeoutExpired:
            # Never mask the real failure with TimeoutExpired, and never
            # leave the server running for the rest of a CI job.
            server.kill()
            server.wait(timeout=10)


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true", help="small workload")
    parser.add_argument("--runs", type=int, default=3, help="repeat runs per mode")
    parser.add_argument("--folds", type=int, default=2)
    parser.add_argument("--shards", type=int, default=2)
    parser.add_argument(
        "--backend",
        default="sqlite-sharded",
        choices=("sqlite", "sqlite-pooled", "sqlite-sharded"),
    )
    parser.add_argument(
        "--server", action="store_true",
        help="also run the persistent-server smoke (subprocess clients)",
    )
    parser.add_argument("--json", metavar="PATH", default=None)
    parser.add_argument(
        "--trace",
        metavar="OUT.json",
        default=None,
        help="record spans over the in-process (cold/warm) runs and write "
        "a repro-trace JSON dump to OUT.json",
    )
    parser.add_argument(
        "--trace-chrome",
        metavar="OUT.json",
        default=None,
        help="also/instead write the trace as Chrome trace_event JSON",
    )
    # Internal: one client run against a running server (see client_run).
    parser.add_argument("--client-run", action="store_true", help=argparse.SUPPRESS)
    parser.add_argument("--address", default=None, help=argparse.SUPPRESS)
    parser.add_argument("--variant", default=None, help=argparse.SUPPRESS)
    parser.add_argument("--token", default=None, help=argparse.SUPPRESS)
    args = parser.parse_args(argv)

    if args.client_run:
        # Dispatch before any dataset work: the parent always passes
        # --variant, and the client builds its own bundle exactly once.
        if not args.address or not args.variant:
            parser.error("--client-run requires --address and --variant")
        return client_run(
            args.address, args.quick, args.variant, args.folds, args.token
        )

    bundle = load_bundle(args.quick)
    variant = args.variant or bundle.variant_names[0]

    config = SessionConfig(
        backend=args.backend,
        shards=args.shards if args.backend == "sqlite-sharded" else None,
        parallelism=2 if args.backend != "sqlite" else None,
    )
    print(
        f"workload: UW-CSE[{variant}] x {args.runs} runs, folds={args.folds}, "
        f"backend={args.backend}, shards={config.shards}"
    )
    if args.trace or args.trace_chrome:
        obs_tracer().enable(process="bench")
    with obs_span("bench.mode", benchmark="session_server", mode="local"):
        local = run_local(bundle, variant, args.folds, args.runs, config)
    print(
        f"cold (new session per run): {local['cold_total']:.2f}s total "
        f"{local['cold_seconds']}"
    )
    print(
        f"warm (one shared session):  {local['warm_total']:.2f}s total "
        f"{local['warm_seconds']}"
    )
    print(f"warm-session speedup: {local['speedup']}x")

    failures: List[str] = []
    if not local["parity_ok"]:
        failures.append("local warm-vs-cold definitions/metrics diverged")

    summary: Dict[str, object] = {
        "benchmark": "session_server",
        "workload": f"uwcse[{variant}]",
        "runs": args.runs,
        "folds": args.folds,
        "backend": args.backend,
        "shards": config.shards,
        "local": local,
    }

    if args.server:
        server_report = run_server_mode(
            args.quick, variant, args.folds, max(2, args.runs), args.shards
        )
        summary["server"] = server_report
        if any(
            key != local["result_key"] for key in server_report["result_keys"]
        ):
            failures.append(
                "server-mode definitions diverged from the per-run path"
            )
        if server_report["reloads_full"][0] != 1:
            failures.append(
                "first client run should ship exactly one payload, shipped "
                f"{server_report['reloads_full'][0]}"
            )
        if any(n != 0 for n in server_report["reloads_full"][1:]):
            failures.append(
                "warm client runs shipped payloads: "
                f"{server_report['reloads_full'][1:]} (expected all 0)"
            )
        drain = server_report["drain"]
        if drain["server_exit"] != 0:
            failures.append(
                f"drained server exited {drain['server_exit']} (expected 0)"
            )
        if drain["client_completed"]:
            if not drain["client_parity"]:
                failures.append(
                    "client completing through a drain produced divergent results"
                )
        elif not drain["client_typed_error"]:
            failures.append(
                "client interrupted by the drain died without a typed error"
            )
        warm_runs = server_report["run_seconds"][1:]
        print(
            "server mode (auth on): first run "
            f"{server_report['run_seconds'][0]:.2f}s, "
            f"warm runs {warm_runs}, payload ships "
            f"{server_report['reloads_full']}"
        )

    summary["parity_ok"] = not failures
    summary["provenance"] = provenance(benchmark="session_server")
    if args.json:
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(summary, handle, indent=2)
        print(f"wrote {args.json}")
    if args.trace:
        print(f"wrote trace to {obs_tracer().dump_json(args.trace)}")
    if args.trace_chrome:
        print(f"wrote Chrome trace to {obs_tracer().dump_chrome(args.trace_chrome)}")

    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    print("parity OK: identical definitions/metrics across every mode and run")
    return 0


if __name__ == "__main__":
    sys.exit(main())
