"""Benchmark package (gives bench modules a package context for relative imports)."""
