"""Example 1.1 / Section 5: FOIL learns non-equivalent rules across schema variants.

This regenerates the paper's motivating observation rather than a numeric
table: the definitions a top-down greedy learner produces over the Original
and 4NF UW-CSE schemas differ, while Castor's agree.
"""

from repro.experiments.harness import check_schema_independence
from repro.experiments.tables import aleph_foil_spec, castor_spec

from .conftest import run_once


def _independence_report(bundle, spec):
    return check_schema_independence(bundle, spec, variants=["original", "4nf"])


def test_example11_foil_vs_castor(benchmark, uwcse_bundle):
    def run_both():
        foil_report = _independence_report(
            uwcse_bundle, aleph_foil_spec(clause_length=6, name="Aleph-FOIL")
        )
        castor_report = _independence_report(uwcse_bundle, castor_spec())
        return foil_report, castor_report

    foil_report, castor_report = run_once(benchmark, run_both)
    print("\nExample 1.1 — output agreement between Original and 4NF schemas:")
    print(f"  Aleph-FOIL schema independent: {foil_report.is_schema_independent}")
    print(f"  Castor     schema independent: {castor_report.is_schema_independent}")
    for variant, definition in castor_report.definitions.items():
        first = definition.clauses[0] if len(definition) else "(empty)"
        print(f"  Castor[{variant}]: {first}")
