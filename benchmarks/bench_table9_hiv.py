"""Table 9: HIV — precision/recall/time per learner over Initial / 4NF-1 / 4NF-2."""

from repro.experiments.harness import run_schema_sweep
from repro.experiments.reporting import format_paper_table
from repro.experiments.tables import aleph_foil_spec, aleph_progol_spec, castor_spec

from .conftest import run_once

VARIANTS = ["initial", "4nf1", "4nf2"]


def _sweep(bundle, specs):
    return run_schema_sweep(bundle, specs, variants=VARIANTS, folds=1, seed=0)


def test_table9_hiv2k4k_castor(benchmark, hiv_bundle):
    results = run_once(benchmark, _sweep, hiv_bundle, [castor_spec()])
    print("\n" + format_paper_table(results, VARIANTS, "Table 9 (Castor) — HIV-2K4K stand-in"))


def test_table9_hiv2k4k_aleph_foil(benchmark, hiv_bundle):
    results = run_once(
        benchmark, _sweep, hiv_bundle, [aleph_foil_spec(clause_length=10, name="Aleph-FOIL")]
    )
    print("\n" + format_paper_table(results, VARIANTS, "Table 9 (Aleph-FOIL) — HIV-2K4K stand-in"))


def test_table9_hiv2k4k_aleph_progol(benchmark, hiv_bundle):
    results = run_once(
        benchmark, _sweep, hiv_bundle, [aleph_progol_spec(clause_length=10, name="Aleph-Progol")]
    )
    print(
        "\n" + format_paper_table(results, VARIANTS, "Table 9 (Aleph-Progol) — HIV-2K4K stand-in")
    )


def test_table9_hivlarge_castor(benchmark, hiv_large_bundle):
    results = run_once(benchmark, _sweep, hiv_large_bundle, [castor_spec()])
    print("\n" + format_paper_table(results, VARIANTS, "Table 9 (Castor) — HIV-Large stand-in"))
