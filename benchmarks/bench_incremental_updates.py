"""Delta-maintained saturation/coverage vs cold rebuild under an update stream.

Measures what the update API (``Delta`` + ``session.update`` +
``engine.apply_delta``) buys when the database changes *between* learning
runs — the streaming / continually-updated-EDB pattern:

* **delta-maintain** — one warm engine + saturation store survive the whole
  stream; each round replays the delta, drops exactly the saturations whose
  footprint the delta touches, rebuilds those lazily, and patches cached
  coverage bits in place;
* **cold-rebuild** — the old world: every round rebuilds the instance, the
  store, every saturation, and every coverage bit from scratch.

Each round mutates ~1% of the tuples (half fresh inserts joined onto
existing constants, half retractions of live rows) of a quick UW-CSE
instance, then evaluates a fixed candidate-clause set over every example.

Parity is the hard gate: after every round the warm store's contents and
the warm engine's coverage bitsets must be **identical** to the cold
rebuild's, or the exit status is non-zero.  Run standalone::

    PYTHONPATH=src python benchmarks/bench_incremental_updates.py
        [--quick] [--rounds N] [--churn FRACTION] [--json PATH]
"""

from __future__ import annotations

import argparse
import json
import os
import random
import sys
import time
from typing import Dict, List, Optional, Sequence

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
SRC = os.path.join(REPO_ROOT, "src")
if SRC not in sys.path:
    sys.path.insert(0, SRC)

from repro.database import Delta  # noqa: E402
from repro.database.sqlite_backend import SaturationStore  # noqa: E402
from repro.datasets import uwcse  # noqa: E402
from repro.learning.bottom_clause import (  # noqa: E402
    BottomClauseBuilder,
    BottomClauseConfig,
)
from repro.learning.coverage import SubsumptionCoverageEngine  # noqa: E402
from repro.obs import provenance, span as obs_span, tracer as obs_tracer  # noqa: E402


def load_workload(quick: bool):
    # Larger than the other quick benchmarks on purpose: targeted
    # invalidation only has structure to exploit when an example's
    # footprint is a small slice of the database — on a toy instance every
    # delta touches every footprint and both modes rebuild everything.
    config = (
        uwcse.UwCseConfig(num_students=120, num_professors=30, num_courses=40)
        if quick
        else uwcse.UwCseConfig(num_students=240, num_professors=60, num_courses=80)
    )
    bundle = uwcse.load(config, seed=5)
    instance = bundle.instance(bundle.variant_names[0]).with_backend("sqlite")
    examples = bundle.examples.all_examples()
    builder = BottomClauseBuilder(instance, ENGINE_CONFIG)
    clauses = [builder.build(e) for e in bundle.examples.positives[:6]]
    clauses = [c for c in clauses if c.body]
    if not clauses:
        raise RuntimeError("workload produced no usable candidate clauses")
    return bundle, instance, examples, clauses


#: The repo's standard quick saturation config (same as the test suite and
#: the session benchmarks): depth 2 with a literal cap keeps bodies — and
#: therefore footprints — local to the example instead of transitively
#: swallowing the whole (tiny, hub-dense) synthetic instance.
ENGINE_CONFIG = BottomClauseConfig(max_depth=2, max_total_literals=20)


def make_engine(instance, store: SaturationStore) -> SubsumptionCoverageEngine:
    return SubsumptionCoverageEngine(
        instance,
        ENGINE_CONFIG,
        compiled=True,
        saturation_store=store,
    )


def coverage_bits(engine, clauses, examples) -> List[frozenset]:
    return [
        frozenset(engine.covered_examples(clause, examples)) for clause in clauses
    ]


#: The stream models *student* publication activity — new papers by
#: students show up, recently added papers get retracted.  Students are
#: the natural churn for the ``advisedBy`` target (the learned signal IS
#: student/advisor co-authorship).  Mutating professor rows instead
#: touches entities named by a dozen examples each, and mutating
#: categorical relations (inPhase, courseLevel) touches hub constants like
#: ``phase_pre_quals`` that occur in EVERY footprint — the conservative
#: invalidation would then (correctly, but uninterestingly) rebuild
#: everything each round.
STREAM_RELATION = "publication"
#: How many example footprints a streamed-over student may appear in.
#: Heavily co-published students sit inside their co-authors' depth-2
#: saturations, so churning them (truthfully) invalidates half the example
#: set and neither mode has structure to exploit.  The stream instead
#: follows the junior cohort — students whose publication record doesn't
#: yet reach into other people's footprints — which is exactly the regime
#: where delta maintenance is meant to win.
COHORT_MAX_FOOTPRINTS = 4


def select_cohort(instance, examples) -> List[str]:
    """Students whose footprint influence is small, worst-influence last.

    Influence is measured from a throwaway materialization: a student is
    *in* an example's footprint when they appear in its head tuple or its
    stored saturation body (``SaturationStore.contents()`` — the same data
    ``invalidate_touching`` consults), i.e. exactly when a delta naming
    them forces that example to rebuild.
    """
    probe = instance.with_backend("sqlite")
    store = SaturationStore()
    make_engine(probe, store).materialize(examples)
    membership: Dict[str, int] = {}
    for (_, head), body in store.contents().items():
        footprint = set(head)
        for _, row in body:
            footprint.update(row)
        for value in footprint:
            if isinstance(value, str):
                membership[value] = membership.get(value, 0) + 1
    students = sorted(str(row[0]) for row in instance.relation("student").rows)
    cohort = [
        s for s in students if membership.get(s, 0) <= COHORT_MAX_FOOTPRINTS
    ]
    if not cohort:
        raise RuntimeError("no low-influence students to stream over")
    return sorted(cohort, key=lambda s: (membership.get(s, 0), s))


def make_stream(
    instance, cohort: Sequence[str], rounds: int, churn: float, seed: int
) -> List[Delta]:
    """``rounds`` deltas, each touching ~``churn`` of the total tuples.

    Inserts mint a fresh solo-authored title for a cohort student;
    retractions take back titles minted in earlier rounds (a preprint
    being withdrawn).  The minted-row pool is threaded through so the
    deltas compose exactly like the real mutation sequence.
    """
    rng = random.Random(seed)
    total = instance.total_tuples()
    minted: List[tuple] = []
    deltas: List[Delta] = []
    for round_index in range(rounds):
        budget = max(2, int(total * churn))
        ops = []
        removals = min(budget // 2, len(minted))
        for _ in range(removals):
            row = minted.pop(rng.randrange(len(minted)))
            ops.append(("remove", STREAM_RELATION, (row,)))
        for i in range(budget - removals):
            row = (f"new_{round_index}_{i}", rng.choice(cohort))
            ops.append(("add", STREAM_RELATION, (row,)))
            minted.append(row)
        deltas.append(Delta(ops).coalesced())
    return deltas


def run_stream(instance, examples, clauses, deltas) -> Dict[str, object]:
    """Both modes over one stream, with per-round parity checks."""
    warm = instance.with_backend("sqlite")
    warm_store = SaturationStore()
    warm_engine = make_engine(warm, warm_store)
    # Warm-up is off the clock for BOTH modes: the stream measures steady
    # state, not the initial materialization everyone pays once.
    warm_engine.materialize(examples)
    coverage_bits(warm_engine, clauses, examples)

    maintain_seconds: List[float] = []
    cold_seconds: List[float] = []
    rows_changed: List[int] = []
    invalidated: List[int] = []
    parity_failures: List[str] = []

    for round_index, delta in enumerate(deltas):
        rows_changed.append(delta.row_count)

        start = time.perf_counter()
        warm.apply_delta(delta)
        stale = warm_engine.apply_delta(delta)
        warm_engine.materialize(examples)
        warm_bits = coverage_bits(warm_engine, clauses, examples)
        maintain_seconds.append(time.perf_counter() - start)
        invalidated.append(len(stale))

        start = time.perf_counter()
        cold = warm.with_backend("sqlite")
        cold_store = SaturationStore()
        cold_engine = make_engine(cold, cold_store)
        cold_engine.materialize(examples)
        cold_bits = coverage_bits(cold_engine, clauses, examples)
        cold_seconds.append(time.perf_counter() - start)

        if warm_store.contents() != cold_store.contents():
            parity_failures.append(
                f"round {round_index}: store contents diverged from cold rebuild"
            )
        if warm_bits != cold_bits:
            parity_failures.append(
                f"round {round_index}: coverage bitsets diverged from cold rebuild"
            )

    maintain_total, cold_total = sum(maintain_seconds), sum(cold_seconds)
    return {
        "maintain_seconds": [round(s, 4) for s in maintain_seconds],
        "cold_seconds": [round(s, 4) for s in cold_seconds],
        "maintain_total": round(maintain_total, 4),
        "cold_total": round(cold_total, 4),
        "speedup": round(cold_total / maintain_total, 3) if maintain_total else None,
        "rows_changed": rows_changed,
        "examples_invalidated": invalidated,
        "parity_failures": parity_failures,
    }


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true", help="small workload")
    parser.add_argument("--rounds", type=int, default=8, help="update rounds")
    parser.add_argument(
        "--churn", type=float, default=0.01,
        help="fraction of tuples changed per round (default 1%%)",
    )
    parser.add_argument("--seed", type=int, default=17)
    parser.add_argument("--json", metavar="PATH", default=None)
    parser.add_argument(
        "--trace",
        metavar="OUT.json",
        default=None,
        help="record spans over the update stream and write a repro-trace "
        "JSON dump to OUT.json",
    )
    parser.add_argument(
        "--trace-chrome",
        metavar="OUT.json",
        default=None,
        help="also/instead write the trace as Chrome trace_event JSON",
    )
    args = parser.parse_args(argv)
    if args.trace or args.trace_chrome:
        obs_tracer().enable(process="bench")

    bundle, instance, examples, clauses = load_workload(args.quick)
    total = instance.total_tuples()
    print(
        f"workload: UW-CSE[{bundle.variant_names[0]}], {total} tuples, "
        f"{len(examples)} examples, {len(clauses)} clauses, "
        f"{args.rounds} rounds x {args.churn:.1%} churn"
    )
    cohort = select_cohort(instance, examples)
    deltas = make_stream(instance, cohort, args.rounds, args.churn, args.seed)
    with obs_span(
        "bench.stream", benchmark="incremental_updates", rounds=args.rounds
    ):
        report = run_stream(instance, examples, clauses, deltas)
    print(
        f"delta-maintain: {report['maintain_total']:.2f}s total "
        f"{report['maintain_seconds']}"
    )
    print(
        f"cold-rebuild:   {report['cold_total']:.2f}s total "
        f"{report['cold_seconds']}"
    )
    print(
        f"rows changed per round: {report['rows_changed']}, "
        f"examples invalidated: {report['examples_invalidated']}"
    )
    print(f"delta-maintain speedup: {report['speedup']}x")

    failures: List[str] = list(report["parity_failures"])
    for failure in failures:
        print(f"PARITY FAILURE: {failure}", file=sys.stderr)

    summary: Dict[str, object] = {
        "benchmark": "incremental_updates",
        "workload": f"uwcse[{bundle.variant_names[0]}]",
        "total_tuples": total,
        "examples": len(examples),
        "clauses": len(clauses),
        "rounds": args.rounds,
        "churn": args.churn,
        **{k: v for k, v in report.items() if k != "parity_failures"},
        "parity_ok": not failures,
        "provenance": provenance(benchmark="incremental_updates"),
    }
    if args.json:
        with open(args.json, "w") as handle:
            json.dump(summary, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"wrote {args.json}")
    if args.trace:
        print(f"wrote trace to {obs_tracer().dump_json(args.trace)}")
    if args.trace_chrome:
        print(f"wrote Chrome trace to {obs_tracer().dump_chrome(args.trace_chrome)}")
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
