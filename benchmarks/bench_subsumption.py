"""θ-subsumption microbench: interned kernel vs the reference engine.

Times the two decision procedures in ``repro.logic.subsumption`` — the
interned, explicit-stack :class:`~repro.logic.subsumption.SubsumptionEngine`
and the original recursive
:class:`~repro.logic.subsumption.ReferenceSubsumptionEngine` — on the
library's actual hot-path workload: LGG candidate clauses tested against
recorded UW-CSE saturations (the same clause-vs-ground-bottom-clause shape
the coverage engine runs millions of times per learn).

Parity is the hard gate: both engines must return the same verdict on every
(candidate, saturation) pair or the exit status is non-zero.  The speed gate
requires the kernel to beat the reference by ``--min-speedup`` (default 3x,
the tentpole target).  Run standalone::

    PYTHONPATH=src python benchmarks/bench_subsumption.py [--quick] [--json PATH]
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from typing import Dict, List, Optional, Sequence, Tuple

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
SRC = os.path.join(REPO_ROOT, "src")
if SRC not in sys.path:
    sys.path.insert(0, SRC)

from repro.datasets import uwcse  # noqa: E402
from repro.learning.bottom_clause import (  # noqa: E402
    BottomClauseBuilder,
    BottomClauseConfig,
)
from repro.logic.lgg import lgg_clauses  # noqa: E402
from repro.logic.subsumption import (  # noqa: E402
    GroundClauseIndex,
    ReferenceSubsumptionEngine,
    SubsumptionEngine,
    budget_exhausted_count,
)
from repro.obs import provenance  # noqa: E402

#: Generous budget: keep both engines inside exact territory so verdicts are
#: uniquely determined (exhaustion still counts identically for both).
BUDGET = 2_000_000


def load_workload(quick: bool):
    """LGG candidates × recorded saturations from a seeded UW-CSE instance."""
    config = (
        uwcse.UwCseConfig(num_students=14, num_professors=6, num_courses=9)
        if quick
        else uwcse.UwCseConfig(num_students=25, num_professors=8, num_courses=12)
    )
    bundle = uwcse.load(config, seed=3)
    instance = bundle.instance(bundle.variant_names[0])
    builder = BottomClauseBuilder(
        instance, BottomClauseConfig(max_depth=2, max_total_literals=18)
    )
    example_cap = 10 if quick else 16
    saturations = [
        clause
        for clause in (
            builder.build_ground(e)
            for e in bundle.examples.all_examples()[:example_cap]
        )
        if clause.body
    ]
    candidate_pool = 5 if quick else 8
    candidates = []
    for i in range(min(candidate_pool, len(saturations))):
        for j in range(i + 1, min(candidate_pool, len(saturations))):
            generalized = lgg_clauses(saturations[i], saturations[j])
            if generalized is not None and generalized.body:
                candidates.append(generalized)
    if not saturations or not candidates:
        raise RuntimeError("workload produced no usable clause pairs")
    return bundle, saturations, candidates


def run_engine(
    engine, candidates, saturations, indexes
) -> Tuple[float, List[bool]]:
    """Time one full candidate×saturation probe sweep against warm indexes.

    Indexes are prebuilt (and fresh per sweep) to mirror the engine's real
    cost profile: the coverage engine builds ONE
    :class:`~repro.logic.subsumption.GroundClauseIndex` per example, caches
    it, and then probes it once per candidate clause for the rest of the
    learn — the probe loop is the hot path, index construction is amortized
    across thousands of probes.  Per-index one-time costs that the sweep
    itself triggers (clause encoding for the kernel, the legacy
    predicate/position maps for the reference engine) stay on the clock.
    """
    start = time.perf_counter()
    verdicts: List[bool] = []
    for candidate in candidates:
        for saturation, index in zip(saturations, indexes):
            verdicts.append(engine.subsumes(candidate, saturation, index))
    return time.perf_counter() - start, verdicts


def run_bench(quick: bool, repeats: int = 3) -> Dict[str, object]:
    bundle, saturations, candidates = load_workload(quick)
    kernel = SubsumptionEngine(max_backtracks=BUDGET)
    reference = ReferenceSubsumptionEngine(max_backtracks=BUDGET)

    exhausted_before = budget_exhausted_count()
    kernel_seconds: List[float] = []
    reference_seconds: List[float] = []
    index_seconds: List[float] = []
    kernel_verdicts: List[bool] = []
    reference_verdicts: List[bool] = []
    for _ in range(max(1, repeats)):
        # Fresh indexes each sweep: no engine sees the other's warm caches.
        start = time.perf_counter()
        indexes = [GroundClauseIndex(s) for s in saturations]
        index_seconds.append(time.perf_counter() - start)
        elapsed, kernel_verdicts = run_engine(
            kernel, candidates, saturations, indexes
        )
        kernel_seconds.append(elapsed)
        indexes = [GroundClauseIndex(s) for s in saturations]
        elapsed, reference_verdicts = run_engine(
            reference, candidates, saturations, indexes
        )
        reference_seconds.append(elapsed)

    kernel_best = min(kernel_seconds)
    reference_best = min(reference_seconds)
    pairs = len(candidates) * len(saturations)
    return {
        "workload": f"uwcse[{bundle.variant_names[0]}]",
        "candidates": len(candidates),
        "saturations": len(saturations),
        "pairs": pairs,
        "positive_verdicts": sum(kernel_verdicts),
        "kernel_seconds": round(kernel_best, 4),
        "reference_seconds": round(reference_best, 4),
        "index_build_seconds": round(min(index_seconds), 4),
        "speedup": round(reference_best / kernel_best, 2) if kernel_best else None,
        "kernel_pairs_per_second": round(pairs / kernel_best, 1)
        if kernel_best
        else None,
        "budget_exhaustions": budget_exhausted_count() - exhausted_before,
        "parity_ok": kernel_verdicts == reference_verdicts,
    }


# --------------------------------------------------------------------- #
# pytest entry point
# --------------------------------------------------------------------- #
def test_subsumption_kernel_speedup(benchmark):
    from .conftest import run_once

    report = run_once(benchmark, run_bench, quick=True, repeats=2)
    print(
        f"\nsubsumption kernel: {report['speedup']}x over reference "
        f"({report['kernel_seconds']}s vs {report['reference_seconds']}s, "
        f"{report['pairs']} pairs)"
    )
    assert report["parity_ok"], "kernel and reference verdicts diverged"
    # Looser than the CLI gate: a loaded CI worker must not flake the unit
    # run; the perf job's CLI invocation enforces the real 3x floor.
    assert report["speedup"] >= 1.5


# --------------------------------------------------------------------- #
# CLI entry point
# --------------------------------------------------------------------- #
def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true", help="small workload")
    parser.add_argument("--repeats", type=int, default=3, help="best-of timing runs")
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=3.0,
        help="fail unless kernel beats reference by this factor (default 3x)",
    )
    parser.add_argument("--json", metavar="PATH", default=None)
    args = parser.parse_args(argv)

    report = run_bench(args.quick, repeats=args.repeats)
    print(
        f"workload: {report['workload']}, {report['candidates']} candidates x "
        f"{report['saturations']} saturations = {report['pairs']} pairs "
        f"({report['positive_verdicts']} positive)"
    )
    print(
        f"kernel:    {report['kernel_seconds']:.3f}s "
        f"({report['kernel_pairs_per_second']:.0f} pairs/s)"
    )
    print(f"reference: {report['reference_seconds']:.3f}s")
    print(f"speedup:   {report['speedup']}x (floor {args.min_speedup}x)")

    failures: List[str] = []
    if not report["parity_ok"]:
        failures.append("kernel and reference verdicts diverged")
    if report["speedup"] is not None and report["speedup"] < args.min_speedup:
        failures.append(
            f"speedup {report['speedup']}x below the {args.min_speedup}x floor"
        )
    for failure in failures:
        print(f"GATE FAILURE: {failure}", file=sys.stderr)

    summary: Dict[str, object] = {
        "benchmark": "subsumption",
        "min_speedup": args.min_speedup,
        **report,
        "gates_ok": not failures,
        "provenance": provenance(benchmark="subsumption"),
    }
    if args.json:
        with open(args.json, "w") as handle:
            json.dump(summary, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"wrote {args.json}")
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
