"""Ablation: Castor's design choices (IND integration, coverage caching).

Compares Castor against the same search with the IND machinery disabled
(which degenerates to plain ProGolem) on the UW-CSE schema variants, and
reports the effect of coverage-test caching on the number of subsumption
calls — the design choices Section 7.5 calls out.
"""

from repro.castor.castor import CastorLearner, CastorParameters
from repro.castor.bottom_clause import CastorBottomClauseConfig
from repro.experiments.harness import run_schema_sweep
from repro.experiments.reporting import format_paper_table
from repro.experiments.tables import castor_spec, progolem_spec

from .conftest import run_once

VARIANTS = ["original", "denormalized2"]


def test_ablation_ind_integration(benchmark, uwcse_bundle):
    """Castor (IND-aware) vs ProGolem (same search, no INDs) across variants."""

    def sweep():
        return run_schema_sweep(
            uwcse_bundle, [castor_spec(), progolem_spec()], variants=VARIANTS, folds=1, seed=0
        )

    results = run_once(benchmark, sweep)
    print("\n" + format_paper_table(results, VARIANTS, "Ablation: IND integration"))


def test_ablation_coverage_cache(benchmark, uwcse_bundle):
    """Coverage-test counts with the cache enabled (Section 7.5.4)."""

    def run_learner():
        schema = uwcse_bundle.schema("original")
        instance = uwcse_bundle.instance("original")
        learner = CastorLearner(
            schema,
            CastorParameters(
                sample_size=3,
                beam_width=2,
                bottom_clause=CastorBottomClauseConfig(max_depth=3, max_distinct_variables=15),
            ),
        )
        coverage = learner.make_coverage_engine(instance)
        clause_learner = learner.make_clause_learner(instance, coverage)
        clause_learner.learn_clause(
            instance, uwcse_bundle.examples.positives, uwcse_bundle.examples.negatives
        )
        return coverage.coverage_tests_performed, coverage.cache_hits

    performed, hits = run_once(benchmark, run_learner)
    print(f"\nAblation (coverage cache): {performed} subsumption tests, {hits} cache hits")
    assert performed > 0
