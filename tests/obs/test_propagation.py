"""Cross-process trace propagation: one learner run, one trace tree.

The acceptance contract of the tracing subsystem: a single traced
``LearningSession.run`` against a live persistent server produces spans
from the client (``session.run``, ``rpc.*``), the server request loop
(``server.*``), and at least two real shard-worker processes
(``worker.*``) — all under ONE trace id, parented into one tree.
"""

from __future__ import annotations

import pytest

from repro import LearningSession
from repro.datasets import uwcse
from repro.distributed import ServiceServer
from repro.experiments.harness import LearnerSpec
from repro.learning.bottom_clause import BottomClauseConfig
from repro.obs import tracer
from repro.progolem.progolem import ProGolemLearner, ProGolemParameters


@pytest.fixture(scope="module")
def tiny_bundle():
    return uwcse.load(
        uwcse.UwCseConfig(num_students=10, num_professors=3, num_courses=5), seed=5
    )


@pytest.fixture(scope="module")
def server():
    server = ServiceServer("127.0.0.1", 0, shards=2)
    server.start_in_thread()
    yield server
    server.shutdown()


def progolem_spec() -> LearnerSpec:
    def factory(schema):
        return ProGolemLearner(
            schema,
            ProGolemParameters(
                sample_size=2,
                beam_width=2,
                max_armg_rounds=2,
                max_clauses=4,
                bottom_clause=BottomClauseConfig(max_depth=2, max_total_literals=20),
            ),
        )

    return LearnerSpec("ProGolem", factory)


def test_one_run_yields_one_trace_tree_across_processes(tiny_bundle, server):
    variant = tiny_bundle.variant_names[0]
    with LearningSession.connect(server.address, trace=True) as session:
        session.run(tiny_bundle, variant, progolem_spec(), folds=2)
        records = [r for r in tracer().records()]

    roots = [r for r in records if r.name == "session.run"]
    assert len(roots) == 1, "exactly one root span per session.run"
    root = roots[0]
    assert root.parent_id is None
    assert root.attrs["learner"] == "ProGolem"

    # EVERY span of the run — client, server, workers — shares the root's
    # trace id: one logical run, one tree.
    run_spans = [r for r in records if r.trace_id == root.trace_id]
    stray = [r for r in records if r.trace_id != root.trace_id]
    assert not stray, f"spans outside the run's trace: {[r.name for r in stray]}"

    names = {r.name for r in run_spans}
    assert any(name.startswith("rpc.") for name in names), names
    assert any(name.startswith("server.") for name in names), names
    assert any(name.startswith("learn.") for name in names), names
    assert "service.shard" in names, names

    worker_spans = [r for r in run_spans if r.process.startswith("worker-")]
    worker_processes = {r.process for r in worker_spans}
    assert len(worker_processes) >= 2, (
        f"expected spans from >= 2 shard workers, got {worker_processes}"
    )

    # Tree integrity: every non-root span's parent is another span of the
    # same trace (the server/worker spans hang off the rpc/scatter spans
    # that carried their context over the wire).
    by_id = {r.span_id for r in run_spans}
    orphans = [
        r.name for r in run_spans if r.parent_id is not None and r.parent_id not in by_id
    ]
    assert not orphans, f"spans with a missing parent: {orphans}"


def test_untraced_sessions_record_nothing(tiny_bundle, server):
    variant = tiny_bundle.variant_names[0]
    with LearningSession.connect(server.address) as session:
        session.run(tiny_bundle, variant, progolem_spec(), folds=2)
    assert tracer().records() == []


def test_session_metrics_includes_the_server_half(tiny_bundle, server):
    variant = tiny_bundle.variant_names[0]
    with LearningSession.connect(server.address) as session:
        session.run(tiny_bundle, variant, progolem_spec(), folds=2)
        metrics = session.metrics()
    assert set(metrics) == {"local", "server"}
    local = metrics["local"]
    assert {"counters", "gauges", "histograms"} <= set(local)
    remote = metrics["server"]
    assert {"snapshot", "prometheus"} <= set(remote)
    snapshot = remote["snapshot"]
    assert any(
        name.startswith("server.") for name in snapshot["counters"]
    ), snapshot["counters"]
    assert "# TYPE" in remote["prometheus"]


def test_trace_dump_from_a_live_run(tiny_bundle, server, tmp_path):
    variant = tiny_bundle.variant_names[0]
    with LearningSession.connect(server.address, trace=True) as session:
        session.run(tiny_bundle, variant, progolem_spec(), folds=2)
        json_path = session.trace_dump(str(tmp_path / "trace.json"))
        chrome_path = session.trace_dump(
            str(tmp_path / "trace_chrome.json"), chrome=True
        )
    from repro.obs.report import load_spans, phase_table

    spans = load_spans(json_path)
    assert spans, "dump holds the run's spans"
    rows = phase_table(spans)
    assert any(row["name"] == "session.run" for row in rows)
    import json as json_module

    chrome = json_module.loads(open(chrome_path).read())
    assert chrome["traceEvents"], "chrome dump holds events"
