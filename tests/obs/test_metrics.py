"""The metrics registry: thread safety, percentile edges, snapshot isolation."""

from __future__ import annotations

import threading

import pytest

from repro.obs.metrics import Counter, Gauge, Histogram, Registry


# --------------------------------------------------------------------- #
# Counters and gauges
# --------------------------------------------------------------------- #
def test_counter_basics():
    counter = Counter()
    assert counter.value == 0
    counter.inc()
    counter.inc(5)
    assert counter.value == 6


def test_counter_rejects_negative_increments():
    counter = Counter()
    with pytest.raises(ValueError):
        counter.inc(-1)


def test_concurrent_counter_increments_are_lossless():
    """8 threads x 10k increments: the total must be exact, not approximate."""
    counter = Counter()
    threads_count, per_thread = 8, 10_000

    def worker():
        for _ in range(per_thread):
            counter.inc()

    threads = [threading.Thread(target=worker) for _ in range(threads_count)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert counter.value == threads_count * per_thread


def test_gauge_goes_both_ways():
    gauge = Gauge()
    gauge.inc(3)
    gauge.dec(1)
    assert gauge.value == 2
    gauge.set(-7.5)
    assert gauge.value == -7.5


# --------------------------------------------------------------------- #
# Histogram percentiles
# --------------------------------------------------------------------- #
def test_histogram_empty_percentiles_are_none():
    histogram = Histogram()
    assert histogram.percentile(0) is None
    assert histogram.percentile(50) is None
    assert histogram.percentile(100) is None
    summary = histogram.summary()
    assert summary["count"] == 0
    assert summary["min"] is None and summary["max"] is None
    assert summary["p50"] is None and summary["p99"] is None


def test_histogram_percentile_range_is_validated():
    histogram = Histogram()
    with pytest.raises(ValueError):
        histogram.percentile(-0.1)
    with pytest.raises(ValueError):
        histogram.percentile(100.1)


def test_histogram_single_observation_is_every_percentile():
    histogram = Histogram()
    histogram.observe(3.25)
    for p in (0, 1, 50, 99, 100):
        assert histogram.percentile(p) == 3.25


def test_histogram_percentile_edges():
    histogram = Histogram()
    for value in range(1, 101):  # 1..100
        histogram.observe(value)
    assert histogram.percentile(0) == 1
    assert histogram.percentile(100) == 100
    # Nearest rank: p50 of 1..100 is the 50th ordered sample.
    assert histogram.percentile(50) == 50
    assert histogram.percentile(99) == 99
    assert histogram.count == 100
    assert histogram.sum == sum(range(1, 101))
    summary = histogram.summary()
    assert summary["min"] == 1 and summary["max"] == 100
    assert summary["p90"] == 90


def test_histogram_ring_buffer_keeps_exact_count_and_sum():
    """Beyond the sample capacity, percentiles window but count/sum stay exact."""
    from repro.obs.metrics import _HISTOGRAM_SAMPLES

    histogram = Histogram()
    total = _HISTOGRAM_SAMPLES + 500
    for value in range(total):
        histogram.observe(value)
    assert histogram.count == total
    assert histogram.sum == sum(range(total))
    # The oldest 500 samples were overwritten: the retained minimum is 500.
    assert histogram.percentile(0) == 500
    assert histogram.percentile(100) == total - 1


def test_histogram_timer_observes_elapsed_seconds():
    histogram = Histogram()
    with histogram.time():
        pass
    assert histogram.count == 1
    assert 0 <= histogram.summary()["max"] < 5.0


# --------------------------------------------------------------------- #
# Registry
# --------------------------------------------------------------------- #
def test_registry_get_or_create_is_stable_per_name_and_labels():
    registry = Registry()
    a = registry.counter("x.hits", shard="0")
    b = registry.counter("x.hits", shard="0")
    c = registry.counter("x.hits", shard="1")
    assert a is b
    assert a is not c


def test_registry_total_sums_across_label_sets():
    registry = Registry()
    registry.counter("x.hits", shard="0").inc(2)
    registry.counter("x.hits", shard="1").inc(3)
    registry.counter("y.other").inc(10)
    assert registry.total("x.hits") == 5


def test_snapshot_is_isolated_from_later_updates():
    registry = Registry()
    counter = registry.counter("x.hits")
    counter.inc(4)
    snapshot = registry.snapshot()
    counter.inc(100)
    assert snapshot["counters"]["x.hits"] == 4
    assert registry.snapshot()["counters"]["x.hits"] == 104


def test_snapshot_series_names_render_labels():
    registry = Registry()
    registry.counter("server.batches", handle="ab12", gen="1").inc()
    registry.gauge("server.inflight").set(2)
    registry.histogram("server.request_seconds", server="1").observe(0.5)
    snapshot = registry.snapshot()
    assert snapshot["counters"] == {'server.batches{gen="1",handle="ab12"}': 1}
    assert snapshot["gauges"] == {"server.inflight": 2}
    (series_name,) = snapshot["histograms"]
    assert series_name == 'server.request_seconds{server="1"}'
    assert snapshot["histograms"][series_name]["count"] == 1


def test_prometheus_text_exposition():
    registry = Registry()
    registry.counter("server.batches", handle="ab12").inc(3)
    registry.gauge("pool.size").set(4)
    registry.histogram("rpc.seconds").observe(0.25)
    text = registry.prometheus_text()
    assert "# TYPE server_batches counter" in text
    assert 'server_batches{handle="ab12"} 3' in text
    assert "# TYPE pool_size gauge" in text
    assert "pool_size 4" in text
    assert "# TYPE rpc_seconds summary" in text
    assert "rpc_seconds_count 1" in text
    assert 'rpc_seconds{quantile="0.5"} 0.25' in text


def test_reset_drops_every_series():
    registry = Registry()
    registry.counter("x.hits").inc()
    registry.reset()
    assert registry.snapshot() == {"counters": {}, "gauges": {}, "histograms": {}}


def test_concurrent_get_or_create_yields_one_series():
    """Racing threads asking for the same (name, labels) must share one
    counter — a lost increment here would silently corrupt every stat."""
    registry = Registry()
    barrier = threading.Barrier(8)

    def worker():
        barrier.wait()
        for _ in range(1000):
            registry.counter("race.hits", worker="shared").inc()

    threads = [threading.Thread(target=worker) for _ in range(8)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert registry.total("race.hits") == 8000
