"""Tracer hygiene for the observability tests.

The tracer is a process-global singleton; a test that enables it and
leaks the flag would make every later span() call in the suite allocate
and record.  Every test in this package gets a disabled, empty tracer on
both sides.
"""

from __future__ import annotations

import pytest

from repro.obs import tracer


@pytest.fixture(autouse=True)
def clean_tracer():
    tracer().disable()
    tracer().clear()
    yield
    tracer().disable()
    tracer().clear()
