"""Tracer semantics: nesting, the disabled fast path, and context plumbing."""

from __future__ import annotations

import json

from repro.obs import provenance, span, tracer
from repro.obs.report import load_spans, phase_table, render_tree
from repro.obs.trace import _NULL_SPAN, Tracer


def test_disabled_tracer_returns_the_shared_null_span():
    assert not tracer().enabled
    assert tracer().span("anything") is _NULL_SPAN
    # The null span is inert and reusable.
    with span("learn.cover", n=1) as inert:
        inert.set(covered=3)
    assert tracer().records() == []


def test_spans_nest_through_context():
    local = Tracer(process="test")
    local.enable()
    with local.span("outer") as outer:
        with local.span("inner"):
            pass
    records = {record.name: record for record in local.records()}
    assert set(records) == {"outer", "inner"}
    assert records["outer"].parent_id is None
    assert records["inner"].parent_id == records["outer"].span_id
    assert records["inner"].trace_id == records["outer"].trace_id
    assert records["inner"].process == "test"
    assert outer.trace_id == records["outer"].trace_id


def test_sibling_roots_get_distinct_trace_ids():
    local = Tracer()
    local.enable()
    with local.span("first"):
        pass
    with local.span("second"):
        pass
    first, second = local.records()
    assert first.trace_id != second.trace_id


def test_span_attrs_and_exception_marking():
    local = Tracer()
    local.enable()
    try:
        with local.span("work", items=3) as active:
            active.set(result="partial")
            raise RuntimeError("boom")
    except RuntimeError:
        pass
    (record,) = local.records()
    assert record.attrs["items"] == 3
    assert record.attrs["result"] == "partial"
    assert record.attrs["error"] == "RuntimeError"
    assert record.duration >= 0


def test_inject_activate_round_trip():
    local = Tracer()
    local.enable()
    assert local.inject() is None  # nothing active
    with local.span("root") as root:
        context = local.inject()
        assert context == {"trace_id": root.trace_id, "parent_id": root.span_id}
    # A "remote" tracer adopting the context records into the same trace,
    # even though it was never enabled — activation alone suffices.
    remote = Tracer(process="worker")
    assert not remote.enabled
    with remote.activate(context):
        with remote.span("remote.work"):
            pass
    (record,) = remote.records()
    assert record.trace_id == root.trace_id
    assert record.parent_id == root.span_id
    assert record.process == "worker"


def test_activate_rejects_malformed_context():
    remote = Tracer()
    for context in (None, {}, {"trace_id": 1, "parent_id": 2}, {"trace_id": "x"}):
        with remote.activate(context):
            assert remote.span("anything") is _NULL_SPAN


def test_drain_is_per_trace():
    local = Tracer()
    local.enable()
    with local.span("a") as span_a:
        pass
    with local.span("b"):
        pass
    drained = local.drain(span_a.trace_id)
    assert [entry["name"] for entry in drained] == ["a"]
    remaining = local.records()
    assert [record.name for record in remaining] == ["b"]


def test_extend_folds_remote_records_in():
    local = Tracer()
    remote = Tracer(process="worker")
    remote.enable()
    with remote.span("remote.work", shard=2):
        pass
    local.extend(remote.drain())
    (record,) = local.records()
    assert record.name == "remote.work"
    assert record.process == "worker"
    assert record.attrs == {"shard": 2}


def test_dump_json_and_report_round_trip(tmp_path):
    local = Tracer(process="bench")
    local.enable()
    with local.span("phase.outer"):
        with local.span("phase.inner"):
            pass
    path = str(tmp_path / "trace.json")
    local.dump_json(path)
    data = json.loads(open(path).read())
    assert data["format"] == "repro-trace" and data["version"] == 1
    spans = load_spans(path)
    assert {record.name for record in spans} == {"phase.outer", "phase.inner"}
    rows = phase_table(spans)
    assert rows[0]["count"] == 1 and rows[0]["processes"] == "bench"
    tree = render_tree(spans)
    assert "phase.outer" in tree.splitlines()[0]
    assert tree.splitlines()[1].startswith("  phase.inner")


def test_chrome_dump_shape(tmp_path):
    local = Tracer(process="bench")
    local.enable()
    with local.span("work"):
        pass
    path = str(tmp_path / "chrome.json")
    local.dump_chrome(path)
    data = json.loads(open(path).read())
    names = [event["name"] for event in data["traceEvents"]]
    assert "process_name" in names and "work" in names
    complete = [e for e in data["traceEvents"] if e["ph"] == "X"]
    assert complete and all("ts" in e and "dur" in e for e in complete)


def test_provenance_block_has_the_shared_fields():
    block = provenance(benchmark="x", shards=2)
    for key in ("python", "implementation", "platform", "machine", "pid"):
        assert key in block
    assert block["benchmark"] == "x" and block["shards"] == 2
