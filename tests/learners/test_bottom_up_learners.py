"""End-to-end tests for Progol/Aleph, Golem, ProGolem, and Castor learners."""


from repro.castor.castor import CastorLearner, CastorParameters
from repro.castor.bottom_clause import CastorBottomClauseConfig
from repro.golem.golem import GolemLearner, GolemParameters
from repro.learning.bottom_clause import BottomClauseConfig
from repro.learning.evaluation import evaluate_definition
from repro.progol.progol import AlephFoilLearner, ProgolLearner, ProgolParameters
from repro.progolem.progolem import ProGolemLearner, ProGolemParameters


class TestProgolLearners:
    def test_aleph_progol_learns_consistent_definition(
        self, tiny_schema, tiny_instance, tiny_examples
    ):
        learner = ProgolLearner(
            tiny_schema, ProgolParameters(clause_length=4, open_list_size=3)
        )
        definition = learner.learn(tiny_instance, tiny_examples)
        assert len(definition) >= 1
        evaluation = evaluate_definition(definition, tiny_instance, tiny_examples)
        assert evaluation.precision >= 0.67
        assert evaluation.recall >= 0.5

    def test_aleph_foil_is_greedy_variant(self, tiny_schema, tiny_instance, tiny_examples):
        learner = AlephFoilLearner(tiny_schema, clause_length=4)
        assert learner.parameters.open_list_size == 1
        definition = learner.learn(tiny_instance, tiny_examples)
        # The greedy emulation may or may not find a clause on this tiny
        # problem (it is schema dependent and has no lookahead); what must
        # hold is that any returned clause respects the clauselength bound and
        # the acceptance thresholds.
        assert all(clause.length <= 4 for clause in definition)
        if len(definition):
            evaluation = evaluate_definition(definition, tiny_instance, tiny_examples)
            assert evaluation.precision >= 0.67

    def test_clause_length_restricts_hypotheses(self, tiny_schema, tiny_instance, tiny_examples):
        learner = ProgolLearner(tiny_schema, ProgolParameters(clause_length=1))
        definition = learner.learn(tiny_instance, tiny_examples)
        assert all(clause.length <= 1 for clause in definition)


class TestGolem:
    def test_golem_learns_via_rlgg(self, tiny_schema, tiny_instance, tiny_examples):
        learner = GolemLearner(
            tiny_schema,
            GolemParameters(sample_size=4, bottom_clause=BottomClauseConfig(max_depth=2)),
        )
        definition = learner.learn(tiny_instance, tiny_examples)
        assert len(definition) >= 1
        evaluation = evaluate_definition(definition, tiny_instance, tiny_examples)
        assert evaluation.precision >= 0.67


class TestProGolem:
    def test_progolem_learns_consistent_definition(
        self, tiny_schema, tiny_instance, tiny_examples
    ):
        learner = ProGolemLearner(
            tiny_schema,
            ProGolemParameters(
                sample_size=4, beam_width=2, bottom_clause=BottomClauseConfig(max_depth=2)
            ),
        )
        definition = learner.learn(tiny_instance, tiny_examples)
        assert len(definition) >= 1
        evaluation = evaluate_definition(definition, tiny_instance, tiny_examples)
        assert evaluation.precision >= 0.67
        assert evaluation.recall >= 0.5


class TestCastor:
    def make_learner(self, schema, **kwargs) -> CastorLearner:
        parameters = CastorParameters(
            sample_size=4,
            beam_width=2,
            bottom_clause=CastorBottomClauseConfig(max_depth=2, max_distinct_variables=15),
            **kwargs,
        )
        return CastorLearner(schema, parameters)

    def test_castor_learns_consistent_definition(
        self, tiny_schema, tiny_instance, tiny_examples
    ):
        learner = self.make_learner(tiny_schema)
        definition = learner.learn(tiny_instance, tiny_examples)
        assert len(definition) >= 1
        evaluation = evaluate_definition(definition, tiny_instance, tiny_examples)
        assert evaluation.precision >= 0.67
        assert evaluation.recall >= 0.5

    def test_castor_output_is_safe(self, tiny_schema, tiny_instance, tiny_examples):
        learner = self.make_learner(tiny_schema)
        definition = learner.learn(tiny_instance, tiny_examples)
        assert definition.is_safe()

    def test_castor_on_mini_decomposed_and_composed(
        self,
        tiny_schema,
    ):
        # Covered in detail by tests/property/test_schema_independence.py; here
        # we only assert the learner API accepts the threads parameter.
        learner = CastorLearner(tiny_schema, CastorParameters(), threads=2)
        assert learner.threads == 2

    def test_castor_promote_inds_mode(self, tiny_schema, tiny_instance, tiny_examples):
        learner = self.make_learner(tiny_schema, promote_inds_from_data=True)
        definition = learner.learn(tiny_instance, tiny_examples)
        evaluation = evaluate_definition(definition, tiny_instance, tiny_examples)
        assert evaluation.recall > 0
