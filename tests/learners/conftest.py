"""Fixtures for end-to-end learner tests: a tiny, fully learnable problem.

The scenario is a miniature UW-CSE: ``advised(stud, prof)`` holds exactly
when the student and the professor co-authored a publication and the
professor is a faculty member.  Every learner should be able to find a
consistent definition on this data within a couple of seconds.
"""

from __future__ import annotations

import pytest

from repro.database import (
    DatabaseInstance,
    FunctionalDependency,
    RelationSchema,
    Schema,
)
from repro.learning.examples import ExampleSet


@pytest.fixture(scope="module")
def tiny_schema() -> Schema:
    relations = [
        RelationSchema("student", ["stud"]),
        RelationSchema("professor", ["prof", "position"]),
        RelationSchema("publication", ["title", "person"]),
    ]
    fds = [FunctionalDependency("professor", ["prof"], ["position"])]
    return Schema(relations, fds, [], name="tiny")


@pytest.fixture(scope="module")
def tiny_instance(tiny_schema: Schema) -> DatabaseInstance:
    instance = DatabaseInstance(tiny_schema)
    for index in range(6):
        instance.add_tuple("student", (f"s{index}",))
    for index in range(4):
        position = "faculty" if index < 3 else "emeritus"
        instance.add_tuple("professor", (f"p{index}", position))
    coauthorships = [
        ("t0", "s0", "p0"),
        ("t1", "s1", "p1"),
        ("t2", "s2", "p2"),
        ("t3", "s3", "p0"),
    ]
    for title, student, professor in coauthorships:
        instance.add_tuple("publication", (title, student))
        instance.add_tuple("publication", (title, professor))
    # Solo publications to create distractors.
    instance.add_tuple("publication", ("t4", "s4"))
    instance.add_tuple("publication", ("t5", "p3"))
    instance.add_tuple("publication", ("t6", "s5"))
    return instance


@pytest.fixture(scope="module")
def tiny_examples() -> ExampleSet:
    positives = [("s0", "p0"), ("s1", "p1"), ("s2", "p2"), ("s3", "p0")]
    negatives = [
        ("s4", "p0"), ("s5", "p1"), ("s0", "p1"), ("s1", "p0"),
        ("s2", "p3"), ("s3", "p1"), ("s4", "p2"), ("s5", "p3"),
    ]
    return ExampleSet("advised", positives, negatives)
