"""Tests for the FOIL learner and its refinement/gain machinery."""

import math

import pytest

from repro.foil.foil import FoilLearner, FoilParameters
from repro.foil.gain import coverage_score, foil_gain, information_content, laplace_accuracy, precision
from repro.foil.refinement import RefinementConfig, RefinementOperator, initial_clause
from repro.learning.evaluation import evaluate_definition


class TestGain:
    def test_information_content_decreases_with_purity(self):
        assert information_content(10, 0) < information_content(5, 5)

    def test_information_content_of_empty_coverage_is_infinite(self):
        assert math.isinf(information_content(0, 10))

    def test_gain_positive_for_purifying_refinement(self):
        assert foil_gain(10, 10, 8, 1) > 0

    def test_gain_negative_infinity_when_no_positives_remain(self):
        assert foil_gain(10, 10, 0, 5) == float("-inf")

    def test_gain_zero_for_no_change(self):
        assert foil_gain(10, 5, 10, 5) == pytest.approx(0.0)

    def test_precision_and_laplace(self):
        assert precision(3, 1) == pytest.approx(0.75)
        assert precision(0, 0) == 0.0
        assert 0.5 < laplace_accuracy(3, 1) < precision(3, 1) + 0.01

    def test_coverage_score(self):
        assert coverage_score(5, 2, 1) == 2


class TestRefinementOperator:
    def test_initial_clause_is_most_general(self):
        clause = initial_clause("advised", 2)
        assert clause.length == 0
        assert len(clause.head_variables()) == 2

    def test_candidates_are_linked_to_existing_variables(self, tiny_schema, tiny_instance):
        operator = RefinementOperator(tiny_schema, tiny_instance)
        clause = initial_clause("advised", 2)
        candidates = operator.candidate_literals(clause)
        assert candidates
        existing = set(clause.variables())
        for literal in candidates:
            assert any(v in existing for v in literal.variables())

    def test_candidate_cap_respected(self, tiny_schema, tiny_instance):
        operator = RefinementOperator(
            tiny_schema, tiny_instance, RefinementConfig(max_candidates_per_relation=5)
        )
        clause = initial_clause("advised", 2)
        by_predicate = {}
        for literal in operator.candidate_literals(clause):
            by_predicate.setdefault(literal.predicate, 0)
            by_predicate[literal.predicate] += 1
        assert all(count <= 5 for count in by_predicate.values())

    def test_constant_candidates_from_small_domains(self, tiny_schema, tiny_instance):
        operator = RefinementOperator(tiny_schema, tiny_instance)
        clause = initial_clause("advised", 2)
        constants = {
            term.value
            for literal in operator.candidate_literals(clause)
            if literal.predicate == "professor"
            for term in literal.terms
            if term.is_constant()
        }
        assert "faculty" in constants

    def test_refine_appends_one_literal(self, tiny_schema, tiny_instance):
        operator = RefinementOperator(tiny_schema, tiny_instance)
        clause = initial_clause("advised", 2)
        refined = next(iter(operator.refine(clause)))
        assert refined.length == 1


class TestFoilLearner:
    def test_learns_consistent_definition(self, tiny_schema, tiny_instance, tiny_examples):
        learner = FoilLearner(tiny_schema, FoilParameters(max_clause_length=4))
        definition = learner.learn(tiny_instance, tiny_examples)
        assert len(definition) >= 1
        evaluation = evaluate_definition(definition, tiny_instance, tiny_examples)
        assert evaluation.precision >= 0.67
        assert evaluation.recall >= 0.5

    def test_learned_clauses_are_safe(self, tiny_schema, tiny_instance, tiny_examples):
        learner = FoilLearner(tiny_schema, FoilParameters(max_clause_length=4))
        definition = learner.learn(tiny_instance, tiny_examples)
        assert definition.is_safe()

    def test_clause_length_bound_is_respected(self, tiny_schema, tiny_instance, tiny_examples):
        learner = FoilLearner(tiny_schema, FoilParameters(max_clause_length=2))
        definition = learner.learn(tiny_instance, tiny_examples)
        assert all(clause.length <= 2 for clause in definition)

    def test_empty_examples_give_empty_definition(self, tiny_schema, tiny_instance):
        from repro.learning.examples import ExampleSet

        learner = FoilLearner(tiny_schema)
        definition = learner.learn(tiny_instance, ExampleSet("advised"))
        assert len(definition) == 0
