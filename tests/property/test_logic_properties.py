"""Property-based tests (hypothesis) for the logic substrate's invariants."""

from hypothesis import given, settings, strategies as st

from repro.logic.atoms import Atom
from repro.logic.clauses import HornClause
from repro.logic.lgg import lgg_clauses
from repro.logic.minimize import minimize_clause
from repro.logic.subsumption import SubsumptionEngine
from repro.logic.terms import Constant, Variable

ENGINE = SubsumptionEngine()

predicates = st.sampled_from(["p", "q", "r"])
constants = st.integers(min_value=0, max_value=5).map(lambda i: Constant(f"c{i}"))
variables = st.integers(min_value=0, max_value=4).map(lambda i: Variable(f"x{i}"))
terms = st.one_of(constants, variables)
ground_terms = constants


def atom_strategy(term_strategy):
    return st.builds(
        lambda predicate, args: Atom(predicate, args),
        predicates,
        st.lists(term_strategy, min_size=1, max_size=2),
    )


clauses = st.builds(
    lambda head_terms, body: HornClause(Atom("t", head_terms), body),
    st.lists(terms, min_size=1, max_size=2),
    st.lists(atom_strategy(terms), min_size=0, max_size=4),
)

# Fixed head arity: the lgg of clauses whose heads have different arities is
# undefined (lgg_atoms returns None), so the lgg properties quantify over
# clauses with a two-argument head.
ground_clauses = st.builds(
    lambda head_terms, body: HornClause(Atom("t", head_terms), body),
    st.lists(ground_terms, min_size=2, max_size=2),
    st.lists(atom_strategy(ground_terms), min_size=0, max_size=4),
)


class TestSubsumptionProperties:
    @settings(max_examples=60, deadline=None)
    @given(clauses)
    def test_subsumption_is_reflexive(self, clause):
        assert ENGINE.subsumes(clause, clause)

    @settings(max_examples=60, deadline=None)
    @given(clauses, atom_strategy(terms))
    def test_removing_a_literal_generalizes(self, clause, extra):
        extended = clause.add_literal(extra)
        assert ENGINE.subsumes(clause, extended)

    @settings(max_examples=60, deadline=None)
    @given(clauses)
    def test_grounding_is_subsumed(self, clause):
        grounding = {v: Constant(f"g{i}") for i, v in enumerate(clause.variables())}
        assert ENGINE.subsumes(clause, clause.apply(grounding))


class TestMinimizationProperties:
    @settings(max_examples=40, deadline=None)
    @given(clauses)
    def test_minimization_preserves_equivalence(self, clause):
        minimized = minimize_clause(clause)
        assert len(minimized.body) <= len(clause.body)
        assert ENGINE.equivalent(minimized, clause)

    @settings(max_examples=40, deadline=None)
    @given(clauses)
    def test_minimization_is_idempotent(self, clause):
        once = minimize_clause(clause)
        twice = minimize_clause(once)
        assert len(once.body) == len(twice.body)


class TestLggProperties:
    @settings(max_examples=40, deadline=None)
    @given(ground_clauses, ground_clauses)
    def test_lgg_subsumes_both_inputs(self, first, second):
        generalized = lgg_clauses(first, second)
        assert generalized is not None
        assert ENGINE.subsumes(generalized, first)
        assert ENGINE.subsumes(generalized, second)

    @settings(max_examples=40, deadline=None)
    @given(ground_clauses)
    def test_lgg_with_itself_is_equivalent(self, clause):
        generalized = lgg_clauses(clause, clause)
        assert generalized is not None
        assert ENGINE.equivalent(generalized, clause)
