"""The paper's headline claims, checked empirically on the mini dataset.

* Castor's bottom clauses, generalizations, and final definitions are
  equivalent over a schema and its composition (Lemmas 7.5/7.7/7.8, and the
  overall schema-independence claim of Section 7).
* The equivalence is *semantic*: the learned definitions return the same
  result relation on corresponding instances (Definition 3.10).
"""


from repro.castor.castor import CastorLearner, CastorParameters
from repro.castor.bottom_clause import CastorBottomClauseConfig
from repro.transform.equivalence import definition_results


def make_castor(schema) -> CastorLearner:
    return CastorLearner(
        schema,
        CastorParameters(
            sample_size=4,
            beam_width=2,
            seed=1,
            bottom_clause=CastorBottomClauseConfig(max_depth=2, max_distinct_variables=15),
        ),
    )


class TestCastorSchemaIndependence:
    def test_castor_outputs_equivalent_results_across_composition(
        self,
        decomposed_schema,
        decomposed_instance,
        composition,
        composed_instance_mini,
        advised_examples,
    ):
        decomposed_learner = make_castor(decomposed_schema)
        composed_learner = make_castor(composition.target_schema)

        definition_decomposed = decomposed_learner.learn(
            decomposed_instance, advised_examples
        )
        definition_composed = composed_learner.learn(
            composed_instance_mini, advised_examples
        )

        results_decomposed = definition_results(definition_decomposed, decomposed_instance)
        results_composed = definition_results(definition_composed, composed_instance_mini)
        assert results_decomposed == results_composed
        assert len(definition_decomposed) == len(definition_composed)

    def test_castor_learns_the_target_on_both_schemas(
        self,
        decomposed_schema,
        decomposed_instance,
        composition,
        composed_instance_mini,
        advised_examples,
    ):
        for schema, instance in (
            (decomposed_schema, decomposed_instance),
            (composition.target_schema, composed_instance_mini),
        ):
            definition = make_castor(schema).learn(instance, advised_examples)
            assert len(definition) >= 1
            results = definition_results(definition, instance)
            assert advised_examples.positive_tuples() <= results
            assert not (advised_examples.negative_tuples() & results)
