"""Property-based tests for relation-store index invariants.

For any sequence of add/remove operations, on every backend:

* ``tuples_containing(v)`` must equal a brute-force scan over the rows;
* ``tuples_with(position, v)`` / ``tuples_matching`` must equal brute force;
* the memory and sqlite stores must hold identical row sets throughout.

This pins the hash-index bookkeeping of ``RelationInstance`` (stale index
entries after ``remove`` are the classic bug) and the SQL translation of the
SQLite backend to the same observable semantics.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.database.instance import DatabaseInstance
from repro.database.schema import RelationSchema, Schema

ARITY = 2
VALUES = st.sampled_from(["a", "b", "c", 0, 1, 2])
ROWS = st.tuples(*[VALUES] * ARITY)
# True = add, False = remove (remove of an absent row is skipped).
OPERATIONS = st.lists(st.tuples(st.booleans(), ROWS), max_size=40)


def _fresh_relations():
    relations = {}
    for backend in ("memory", "sqlite"):
        instance = DatabaseInstance(
            Schema([RelationSchema("r", ["a", "b"])], name="prop"), backend=backend
        )
        relations[backend] = instance.relation("r")
    return relations


def _apply(relation, operations):
    for is_add, row in operations:
        if is_add:
            relation.add(row)
        elif row in relation:
            relation.remove(row)


@settings(max_examples=60, deadline=None)
@given(operations=OPERATIONS)
def test_value_index_matches_brute_force_scan(operations):
    for backend, relation in _fresh_relations().items():
        _apply(relation, operations)
        rows = relation.rows
        for value in ["a", "b", "c", 0, 1, 2, "missing"]:
            expected = {row for row in rows if value in row}
            assert relation.tuples_containing(value) == expected, (backend, value)


@settings(max_examples=60, deadline=None)
@given(operations=OPERATIONS)
def test_position_value_index_matches_brute_force_scan(operations):
    for backend, relation in _fresh_relations().items():
        _apply(relation, operations)
        rows = relation.rows
        for position in range(ARITY):
            for value in ["a", "b", "c", 0, 1, 2]:
                expected = {row for row in rows if row[position] == value}
                assert relation.tuples_with(position, value) == expected, (
                    backend,
                    position,
                    value,
                )
                assert relation.tuples_matching({position: value}) == expected


@settings(max_examples=60, deadline=None)
@given(operations=OPERATIONS)
def test_backends_hold_identical_rows(operations):
    relations = _fresh_relations()
    for relation in relations.values():
        _apply(relation, operations)
    assert relations["memory"].rows == relations["sqlite"].rows
    assert len(relations["memory"]) == len(relations["sqlite"])
    assert set(iter(relations["memory"])) == set(iter(relations["sqlite"]))


@settings(max_examples=40, deadline=None)
@given(operations=OPERATIONS, bindings=st.dictionaries(st.sampled_from([0, 1]), VALUES))
def test_tuples_matching_conjunction_matches_brute_force(operations, bindings):
    for backend, relation in _fresh_relations().items():
        _apply(relation, operations)
        expected = {
            row
            for row in relation.rows
            if all(row[p] == v for p, v in bindings.items())
        }
        assert relation.tuples_matching(bindings) == expected, backend
