"""Reuse the mini composed/decomposed fixtures defined for the Castor tests."""

from tests.castor.conftest import (  # noqa: F401
    advised_examples,
    composed_instance_mini,
    composition,
    decomposed_instance,
    decomposed_schema,
)
