"""Property-based tests for (de)composition: bijectivity and definition preservation."""

from hypothesis import given, settings, strategies as st

from repro.database.instance import DatabaseInstance
from repro.database.schema import RelationSchema, Schema
from repro.logic.clauses import HornDefinition
from repro.logic.parser import parse_clause
from repro.transform.decomposition import DecomposeOperation
from repro.transform.equivalence import definition_results
from repro.transform.transformation import SchemaTransformation

# wide(a, b, c) instances where ``a`` is a key (one row per a-value), which is
# the FD situation under which the projection decomposition is lossless.
keyed_rows = st.dictionaries(
    keys=st.integers(min_value=0, max_value=6).map(lambda i: f"a{i}"),
    values=st.tuples(
        st.integers(min_value=0, max_value=3).map(lambda i: f"b{i}"),
        st.integers(min_value=0, max_value=3).map(lambda i: f"c{i}"),
    ),
    min_size=1,
    max_size=7,
)


def make_instance(rows) -> DatabaseInstance:
    schema = Schema([RelationSchema("wide", ["a", "b", "c"])], name="wide-schema")
    instance = DatabaseInstance(schema)
    for a_value, (b_value, c_value) in rows.items():
        instance.add_tuple("wide", (a_value, b_value, c_value))
    return instance


def make_transformation(instance: DatabaseInstance) -> SchemaTransformation:
    return SchemaTransformation(
        instance.schema,
        [DecomposeOperation("wide", [("left", ["a", "b"]), ("right", ["a", "c"])])],
    )


class TestDecompositionProperties:
    @settings(max_examples=50, deadline=None)
    @given(keyed_rows)
    def test_decomposition_is_invertible(self, rows):
        instance = make_instance(rows)
        transformation = make_transformation(instance)
        assert transformation.is_invertible_on(instance)

    @settings(max_examples=50, deadline=None)
    @given(keyed_rows)
    def test_decomposed_instance_satisfies_generated_inds(self, rows):
        instance = make_instance(rows)
        transformation = make_transformation(instance)
        transformed = transformation.apply(instance)
        assert transformed.satisfies_all_constraints()

    @settings(max_examples=50, deadline=None)
    @given(keyed_rows)
    def test_definition_mapping_preserves_results(self, rows):
        instance = make_instance(rows)
        transformation = make_transformation(instance)
        definition = HornDefinition("t", [parse_clause("t(x, y) :- wide(x, y, z).")])
        mapped = transformation.map_definition(definition)
        assert definition_results(definition, instance) == definition_results(
            mapped, transformation.apply(instance)
        )

    @settings(max_examples=30, deadline=None)
    @given(keyed_rows)
    def test_tuple_counts_match_projections(self, rows):
        instance = make_instance(rows)
        transformation = make_transformation(instance)
        transformed = transformation.apply(instance)
        assert len(transformed.relation("left")) <= len(instance.relation("wide"))
        assert len(transformed.relation("right")) <= len(instance.relation("wide"))
