"""Kernel-vs-reference parity for the θ-subsumption engines.

The interned, explicit-stack :class:`~repro.logic.subsumption.SubsumptionEngine`
must be an observationally identical drop-in for the original recursive
:class:`~repro.logic.subsumption.ReferenceSubsumptionEngine`: same verdicts
on random clause pairs (hypothesis) and on realistic UW-CSE saturation
workloads, and every positive verdict must come with a *valid* witness
substitution (applying it maps the general clause into the specific one).
Generous backtrack budgets keep both engines inside exact territory, where
decisions are uniquely determined.
"""

from hypothesis import given, settings, strategies as st
import pytest

from repro.datasets import uwcse
from repro.learning.bottom_clause import BottomClauseBuilder, BottomClauseConfig
from repro.logic.atoms import Atom
from repro.logic.clauses import HornClause
from repro.logic.lgg import lgg_clauses
from repro.logic.subsumption import (
    GroundClauseIndex,
    ReferenceSubsumptionEngine,
    SubsumptionEngine,
)
from repro.logic.terms import Constant, Variable

BUDGET = 2_000_000
KERNEL = SubsumptionEngine(max_backtracks=BUDGET)
REFERENCE = ReferenceSubsumptionEngine(max_backtracks=BUDGET)

predicates = st.sampled_from(["p", "q", "r"])
constants = st.integers(min_value=0, max_value=5).map(lambda i: Constant(f"c{i}"))
variables = st.integers(min_value=0, max_value=4).map(lambda i: Variable(f"x{i}"))
terms = st.one_of(constants, variables)


def atom_strategy(term_strategy):
    return st.builds(
        lambda predicate, args: Atom(predicate, args),
        predicates,
        st.lists(term_strategy, min_size=1, max_size=2),
    )


general_clauses = st.builds(
    lambda head_terms, body: HornClause(Atom("t", head_terms), body),
    st.lists(terms, min_size=1, max_size=2),
    st.lists(atom_strategy(terms), min_size=0, max_size=5),
)
specific_clauses = st.builds(
    lambda head_terms, body: HornClause(Atom("t", head_terms), body),
    st.lists(constants, min_size=1, max_size=2),
    st.lists(atom_strategy(constants), min_size=0, max_size=6),
)


def assert_witness_valid(theta, general, specific):
    """θ must map the general clause inside the specific one."""
    mapped_head = general.head.apply(theta)
    assert mapped_head == specific.head, (mapped_head, specific.head)
    specific_body = set(specific.body)
    for literal in general.body:
        mapped = literal.apply(theta)
        assert mapped in specific_body, (literal, mapped)


class TestKernelMatchesReferenceRandom:
    @settings(max_examples=300, deadline=None)
    @given(general_clauses, specific_clauses)
    def test_identical_verdicts_and_valid_witnesses(self, general, specific):
        reference_verdict = REFERENCE.subsumes(general, specific)
        witness = KERNEL.subsumption_substitution(general, specific)
        assert (witness is not None) == reference_verdict
        if witness is not None:
            assert_witness_valid(witness, general, specific)

    @settings(max_examples=120, deadline=None)
    @given(general_clauses, general_clauses)
    def test_identical_verdicts_on_non_ground_pairs(self, first, second):
        assert KERNEL.subsumes(first, second) == REFERENCE.subsumes(first, second)
        assert KERNEL.equivalent(first, second) == REFERENCE.equivalent(first, second)

    @settings(max_examples=120, deadline=None)
    @given(general_clauses)
    def test_kernel_is_reflexive(self, clause):
        witness = KERNEL.subsumption_substitution(clause, clause)
        assert witness is not None


@pytest.fixture(scope="module")
def uwcse_workload():
    """Recorded saturations + LGG candidates from a quick UW-CSE instance."""
    config = uwcse.UwCseConfig(num_students=14, num_professors=6, num_courses=9)
    bundle = uwcse.load(config, seed=3)
    instance = bundle.instance(bundle.variant_names[0])
    builder = BottomClauseBuilder(
        instance, BottomClauseConfig(max_depth=2, max_total_literals=18)
    )
    saturations = [
        clause
        for clause in (
            builder.build(e) for e in bundle.examples.all_examples()[:10]
        )
        if clause.body
    ]
    assert len(saturations) >= 4, "workload must produce usable saturations"
    candidates = []
    for i in range(min(5, len(saturations))):
        for j in range(i + 1, min(5, len(saturations))):
            generalized = lgg_clauses(saturations[i], saturations[j])
            if generalized is not None and generalized.body:
                candidates.append(generalized)
    assert candidates, "workload must produce LGG candidates"
    return saturations, candidates


class TestKernelMatchesReferenceOnUwCse:
    def test_identical_verdicts_on_saturation_pairs(self, uwcse_workload):
        saturations, candidates = uwcse_workload
        indexes = [GroundClauseIndex(s) for s in saturations]
        checked = positive = 0
        for candidate in candidates:
            for saturation, index in zip(saturations, indexes):
                reference_verdict = REFERENCE.subsumes(candidate, saturation, index)
                witness = KERNEL.subsumption_substitution(
                    candidate, saturation, index
                )
                assert (witness is not None) == reference_verdict, (
                    candidate,
                    saturation,
                )
                if witness is not None:
                    positive += 1
                    assert_witness_valid(witness, candidate, saturation)
                checked += 1
        assert checked >= 16
        # The workload must exercise BOTH verdicts or the parity is vacuous.
        assert 0 < positive < checked

    def test_shared_index_matches_fresh_index(self, uwcse_workload):
        saturations, candidates = uwcse_workload
        candidate = candidates[0]
        for saturation in saturations:
            shared = GroundClauseIndex(saturation)
            first = KERNEL.subsumes(candidate, saturation, shared)
            second = KERNEL.subsumes(candidate, saturation, shared)
            fresh = KERNEL.subsumes(candidate, saturation)
            assert first == second == fresh
