"""Tests for SchemaTransformation: instance maps τ, inverses, definition maps δτ."""

import pytest

from repro.database.instance import DatabaseInstance
from repro.database.schema import RelationSchema, Schema
from repro.logic.clauses import HornDefinition
from repro.logic.parser import parse_clause
from repro.transform.decomposition import ComposeOperation, DecomposeOperation
from repro.transform.equivalence import (
    definition_results,
    definitions_equivalent_across,
    definitions_equivalent_on,
    schema_independence_witness,
)
from repro.transform.transformation import SchemaTransformation, identity_transformation


class TestInstanceTransformation:
    def test_decomposition_projects_instance(self, composed_instance, wide_decomposition):
        transformed = wide_decomposition.apply(composed_instance)
        assert set(transformed.schema.relation_names) == {"left", "right"}
        assert transformed.relation("left").rows == {
            ("a1", "b1"),
            ("a2", "b2"),
            ("a3", "b3"),
        }

    def test_decomposition_target_schema_has_equality_inds(self, wide_decomposition):
        assert len(wide_decomposition.target_schema.equality_inds()) == 1

    def test_round_trip_identity(self, composed_instance, wide_decomposition):
        assert wide_decomposition.is_invertible_on(composed_instance)

    def test_inverse_of_inverse_round_trips(self, composed_instance, wide_decomposition):
        inverse = wide_decomposition.invert()
        decomposed = wide_decomposition.apply(composed_instance)
        recovered = inverse.apply(decomposed)
        assert recovered.same_contents(composed_instance)
        # And going forward again gives the decomposed instance.
        assert inverse.invert().apply(recovered).same_contents(decomposed)

    def test_identity_transformation(self, composed_instance, composed_schema):
        identity = identity_transformation(composed_schema)
        assert identity.apply(composed_instance).same_contents(composed_instance)

    def test_missing_relation_rejected(self, wide_decomposition, composed_schema):
        other_schema = Schema([RelationSchema("unrelated", ["x"])], name="other")
        other_instance = DatabaseInstance(other_schema)
        with pytest.raises(ValueError):
            wide_decomposition.apply(other_instance)

    def test_multi_step_transformation(self, composed_schema, composed_instance):
        transformation = SchemaTransformation(
            composed_schema,
            [
                DecomposeOperation("wide", [("l", ["a", "b"]), ("r", ["a", "c"])]),
                ComposeOperation(["l", "r"], "wide", attribute_order=["a", "b", "c"]),
            ],
        )
        round_tripped = transformation.apply(composed_instance)
        assert round_tripped.relation("wide").rows == composed_instance.relation("wide").rows


class TestDefinitionMapping:
    def test_composed_literal_expands_to_parts(self, wide_decomposition):
        definition = HornDefinition(
            "t", [parse_clause("t(x) :- wide(x, y, z).")]
        )
        mapped = wide_decomposition.map_definition(definition)
        clause = mapped.clauses[0]
        assert {atom.predicate for atom in clause.body} == {"left", "right"}
        assert clause.length == 2

    def test_mapping_preserves_results_on_instances(
        self, composed_instance, wide_decomposition
    ):
        definition = HornDefinition(
            "t", [parse_clause("t(x, y) :- wide(x, y, z).")]
        )
        mapped = wide_decomposition.map_definition(definition)
        source_results = definition_results(definition, composed_instance)
        target_results = definition_results(
            mapped, wide_decomposition.apply(composed_instance)
        )
        assert source_results == target_results

    def test_part_literal_maps_to_composed_with_fresh_variables(
        self, composed_schema, composed_instance, wide_decomposition
    ):
        # Map a definition over the decomposed schema back to the composed one.
        inverse = wide_decomposition.invert()
        definition = HornDefinition("t", [parse_clause("t(x) :- left(x, y).")])
        mapped = inverse.map_definition(definition)
        clause = mapped.clauses[0]
        assert clause.body[0].predicate == "wide"
        assert clause.body[0].arity == 3
        decomposed_instance = wide_decomposition.apply(composed_instance)
        assert definition_results(definition, decomposed_instance) == definition_results(
            mapped, composed_instance
        )

    def test_untouched_relations_pass_through(self):
        schema = Schema(
            [RelationSchema("wide", ["a", "b", "c"]), RelationSchema("other", ["a"])],
            name="mixed",
        )
        transformation = SchemaTransformation(
            schema, [DecomposeOperation("wide", [("l", ["a", "b"]), ("r", ["a", "c"])])]
        )
        definition = HornDefinition(
            "t", [parse_clause("t(x) :- wide(x, y, z), other(x).")]
        )
        mapped = transformation.map_definition(definition)
        predicates = {atom.predicate for atom in mapped.clauses[0].body}
        assert predicates == {"l", "r", "other"}


class TestEquivalenceHelpers:
    def test_definitions_equivalent_on_same_instance(self, composed_instance):
        first = HornDefinition("t", [parse_clause("t(x) :- wide(x, y, z).")])
        second = HornDefinition("t", [parse_clause("t(x) :- wide(x, q, w).")])
        assert definitions_equivalent_on(first, second, composed_instance)

    def test_definitions_not_equivalent(self, composed_instance):
        first = HornDefinition("t", [parse_clause("t(x) :- wide(x, y, z).")])
        second = HornDefinition("t", [parse_clause("t(y) :- wide(x, y, z).")])
        assert not definitions_equivalent_on(first, second, composed_instance)

    def test_definitions_equivalent_across_transformation(
        self, composed_instance, wide_decomposition
    ):
        source = HornDefinition("t", [parse_clause("t(x) :- wide(x, y, z).")])
        target = wide_decomposition.map_definition(source)
        assert definitions_equivalent_across(
            source, target, composed_instance, wide_decomposition
        )

    def test_schema_independence_witness_reports_difference(
        self, composed_instance, wide_decomposition
    ):
        source = HornDefinition("t", [parse_clause("t(x) :- wide(x, y, z).")])
        bad_target = HornDefinition("t", [parse_clause("t(y) :- left(x, y).")])
        report = schema_independence_witness(
            source, bad_target, composed_instance, wide_decomposition
        )
        assert not report["equivalent"]
        assert report["symmetric_difference"] > 0

    def test_unsafe_clauses_are_skipped_in_results(self, composed_instance):
        definition = HornDefinition("t", [parse_clause("t(x, q) :- wide(x, y, z).")])
        assert definition_results(definition, composed_instance) == set()
