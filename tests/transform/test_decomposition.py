"""Tests for decomposition/composition operations and schema rewriting."""

import pytest

from repro.database.constraints import InclusionDependency
from repro.database.instance import DatabaseInstance
from repro.database.schema import RelationSchema, Schema
from repro.transform.decomposition import (
    ComposeOperation,
    DecomposeOperation,
    apply_compose_to_schema,
    apply_decompose_to_schema,
    compose_rows,
    decompose_rows,
)


class TestDecomposeOperation:
    def test_requires_two_parts(self):
        with pytest.raises(ValueError):
            DecomposeOperation("wide", [("only", ["a"])])

    def test_validation_requires_full_attribute_cover(self, composed_schema):
        operation = DecomposeOperation("wide", [("l", ["a"]), ("r", ["a", "b"])])
        with pytest.raises(ValueError):
            operation.validate_against(composed_schema)

    def test_validation_rejects_disconnected_parts(self, composed_schema):
        operation = DecomposeOperation("wide", [("l", ["a", "b"]), ("r", ["c"])])
        with pytest.raises(ValueError):
            operation.validate_against(composed_schema)

    def test_generated_inds_are_equalities_on_shared_attributes(self):
        operation = DecomposeOperation(
            "wide", [("l", ["a", "b"]), ("r", ["a", "c"])]
        )
        inds = operation.generated_inds()
        assert len(inds) == 1
        assert inds[0].with_equality
        assert inds[0].left_attrs == ("a",)

    def test_apply_to_schema(self, composed_schema):
        operation = DecomposeOperation("wide", [("l", ["a", "b"]), ("r", ["a", "c"])])
        decomposed = apply_decompose_to_schema(composed_schema, operation)
        assert set(decomposed.relation_names) == {"l", "r"}
        # FD a -> b survives on the part containing both attributes.
        assert any(fd.relation == "l" for fd in decomposed.functional_dependencies)
        assert len(decomposed.equality_inds()) == 1

    def test_decompose_rows_projects(self, composed_instance):
        operation = DecomposeOperation("wide", [("l", ["a", "b"]), ("r", ["a", "c"])])
        rows = decompose_rows(composed_instance, operation)
        assert rows["l"] == {("a1", "b1"), ("a2", "b2"), ("a3", "b3")}
        assert rows["r"] == {("a1", "c1"), ("a2", "c2"), ("a3", "c3")}


class TestComposeOperation:
    def make_schema(self) -> Schema:
        return Schema(
            [RelationSchema("l", ["a", "b"]), RelationSchema("r", ["a", "c"])],
            [],
            [InclusionDependency("l", ["a"], "r", ["a"], with_equality=True)],
            name="pair",
        )

    def test_requires_two_relations(self):
        with pytest.raises(ValueError):
            ComposeOperation(["only"], "x")

    def test_composed_attributes_default_order(self):
        schema = self.make_schema()
        operation = ComposeOperation(["l", "r"], "wide")
        assert operation.composed_attributes(schema) == ("a", "b", "c")

    def test_validation_rejects_disconnected_members(self):
        schema = Schema(
            [RelationSchema("l", ["a"]), RelationSchema("r", ["b"])], name="disc"
        )
        operation = ComposeOperation(["l", "r"], "wide")
        with pytest.raises(ValueError):
            operation.validate_against(schema)

    def test_apply_to_schema(self):
        schema = self.make_schema()
        operation = ComposeOperation(["l", "r"], "wide")
        composed = apply_compose_to_schema(schema, operation)
        assert composed.relation_names == ["wide"]
        # The IND between the two members disappears inside the composed relation.
        assert composed.inclusion_dependencies == []

    def test_compose_rows_joins(self):
        schema = self.make_schema()
        instance = DatabaseInstance(schema)
        instance.add_tuples("l", [("1", "x"), ("2", "y")])
        instance.add_tuples("r", [("1", "p"), ("2", "q")])
        operation = ComposeOperation(["l", "r"], "wide")
        rows = compose_rows(instance, operation)
        assert rows == {("1", "x", "p"), ("2", "y", "q")}

    def test_inverse_is_decomposition_of_members(self):
        schema = self.make_schema()
        operation = ComposeOperation(["l", "r"], "wide")
        inverse = operation.inverse(schema)
        assert inverse.relation == "wide"
        assert dict(inverse.parts) == {"l": ("a", "b"), "r": ("a", "c")}
