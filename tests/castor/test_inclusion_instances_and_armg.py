"""Tests for inclusion-class instances, IND-aware ARMG, and negative reduction."""


from repro.castor.armg import IndConsistencyEnforcer, castor_armg
from repro.castor.bottom_clause import CastorBottomClauseBuilder, CastorBottomClauseConfig
from repro.castor.inclusion_instances import (
    compute_inclusion_instances,
    head_connecting_instances,
    literals_satisfy_ind,
)
from repro.castor.reduction import NegativeReducer
from repro.learning.coverage import SubsumptionCoverageEngine
from repro.logic.parser import parse_clause
from repro.progolem.armg import armg


class TestInclusionInstances:
    def test_literals_satisfy_ind(self, decomposed_schema):
        ind = decomposed_schema.equality_inds()[0]  # person[id] = inPhase[id]
        person = parse_clause("t(x) :- person(x).").body[0]
        in_phase_match = parse_clause("t(x) :- inPhase(x, prelim).").body[0]
        in_phase_other = parse_clause("t(x) :- inPhase(y, prelim).").body[0]
        assert literals_satisfy_ind(decomposed_schema, ind, person, in_phase_match)
        assert not literals_satisfy_ind(decomposed_schema, ind, person, in_phase_other)

    def test_instances_group_sibling_literals(self, decomposed_schema):
        clause = parse_clause(
            "advised(x, y) :- person(x), inPhase(x, prelim), years(x, 3), "
            "publication(t, x), publication(t, y)."
        )
        instances = compute_inclusion_instances(clause, decomposed_schema)
        sizes = sorted(len(instance) for instance in instances)
        # person/inPhase/years form one instance; each publication literal is
        # a singleton.
        assert sizes == [1, 1, 3]

    def test_two_independent_instances_of_same_class(self, decomposed_schema):
        clause = parse_clause(
            "advised(x, y) :- person(x), inPhase(x, prelim), years(x, 3), "
            "person(y), inPhase(y, faculty), years(y, 10)."
        )
        instances = compute_inclusion_instances(clause, decomposed_schema)
        assert len(instances) == 2
        assert all(len(instance) == 3 for instance in instances)

    def test_head_connecting_instances_chain(self, decomposed_schema):
        clause = parse_clause(
            "advised(x, y) :- publication(t, x), publication(t, z), person(z)."
        )
        instances = compute_inclusion_instances(clause, decomposed_schema)
        person_instance = next(
            i for i in instances if any(a.predicate == "person" for a in i.literals)
        )
        connecting = head_connecting_instances(
            person_instance, instances, set(clause.head.variables())
        )
        # person(z) connects to the head only through publication(t, z).
        assert connecting
        assert any(
            any(a.predicate == "publication" for a in inst.literals) for inst in connecting
        )

    def test_directly_connected_instance_needs_no_chain(self, decomposed_schema):
        clause = parse_clause("advised(x, y) :- publication(t, x).")
        instances = compute_inclusion_instances(clause, decomposed_schema)
        assert head_connecting_instances(
            instances[0], instances, set(clause.head.variables())
        ) == []


class TestIndConsistencyEnforcer:
    def test_orphan_literal_removed(self, decomposed_schema):
        enforcer = IndConsistencyEnforcer(decomposed_schema)
        clause = parse_clause(
            "advised(x, y) :- inPhase(x, prelim), publication(t, x), publication(t, y)."
        )
        # inPhase participates in person[id] = inPhase[id] but person(x) is
        # missing, so the literal is dropped.
        enforced = enforcer.enforce(clause)
        assert all(atom.predicate != "inPhase" for atom in enforced.body)
        assert len(enforced.body) == 2

    def test_consistent_group_is_kept(self, decomposed_schema):
        enforcer = IndConsistencyEnforcer(decomposed_schema)
        clause = parse_clause(
            "advised(x, y) :- person(x), inPhase(x, prelim), years(x, 3), publication(t, x)."
        )
        enforced = enforcer.enforce(clause)
        assert len(enforced.body) == 4

    def test_cascading_removal(self, decomposed_schema):
        enforcer = IndConsistencyEnforcer(decomposed_schema)
        # years(x,3) is witnessed by person(x); person(x) is witnessed by
        # inPhase? person needs BOTH inPhase and years.  Removing inPhase makes
        # person unsupported, which in turn makes years unsupported.
        clause = parse_clause("advised(x, y) :- person(x), years(x, 3), publication(t, y).")
        enforced = enforcer.enforce(clause)
        assert {a.predicate for a in enforced.body} == {"publication"}


class TestCastorArmg:
    def test_armg_covers_second_example(
        self, decomposed_instance, decomposed_schema, advised_examples
    ):
        coverage = SubsumptionCoverageEngine(decomposed_instance)
        coverage.builder = CastorBottomClauseBuilder(
            decomposed_instance, decomposed_schema, CastorBottomClauseConfig(max_depth=2)
        )
        seed_clause = CastorBottomClauseBuilder(
            decomposed_instance, decomposed_schema, CastorBottomClauseConfig(max_depth=2)
        ).build(advised_examples.positives[0])
        other = advised_examples.positives[1]
        generalized = castor_armg(seed_clause, other, coverage, decomposed_schema)
        assert coverage.covers(generalized, other)
        assert coverage.covers(generalized, advised_examples.positives[0])

    def test_castor_armg_preserves_ind_consistency(
        self, decomposed_instance, decomposed_schema, advised_examples
    ):
        coverage = SubsumptionCoverageEngine(decomposed_instance)
        seed_clause = CastorBottomClauseBuilder(
            decomposed_instance, decomposed_schema, CastorBottomClauseConfig(max_depth=2)
        ).build(advised_examples.positives[0])
        generalized = castor_armg(
            seed_clause, advised_examples.positives[1], coverage, decomposed_schema
        )
        enforcer = IndConsistencyEnforcer(decomposed_schema)
        assert enforcer.enforce(generalized) == generalized


class TestNegativeReducer:
    def test_reduction_drops_nonessential_instances(
        self, decomposed_instance, decomposed_schema, advised_examples
    ):
        coverage = SubsumptionCoverageEngine(decomposed_instance)
        clause = parse_clause(
            "advised(x, y) :- person(x), inPhase(x, prelim), years(x, 3), "
            "publication(t, x), publication(t, y)."
        )
        reducer = NegativeReducer(decomposed_schema, coverage)
        reduced = reducer.reduce(clause, advised_examples.negatives)
        # The publication join is what separates positives from negatives; the
        # person/inPhase/years instance is non-essential and may be dropped,
        # but the reduced clause must not cover more negatives than before.
        negatives_before = sum(
            1 for e in advised_examples.negatives if coverage.covers(clause, e, use_cache=False)
        )
        negatives_after = sum(
            1 for e in advised_examples.negatives if coverage.covers(reduced, e, use_cache=False)
        )
        assert negatives_after <= negatives_before
        assert reduced.is_safe()

    def test_reduction_keeps_safety(self, decomposed_instance, decomposed_schema, advised_examples):
        coverage = SubsumptionCoverageEngine(decomposed_instance)
        clause = parse_clause(
            "advised(x, y) :- publication(t, x), publication(t, y), person(y)."
        )
        reducer = NegativeReducer(decomposed_schema, coverage, ensure_safe=True)
        reduced = reducer.reduce(clause, advised_examples.negatives)
        assert reduced.is_safe()
        assert reduced.body

    def test_empty_clause_is_returned_unchanged(self, decomposed_instance, decomposed_schema):
        coverage = SubsumptionCoverageEngine(decomposed_instance)
        reducer = NegativeReducer(decomposed_schema, coverage)
        clause = parse_clause("advised(x, y).")
        assert reducer.reduce(clause, []) == clause
