"""Tests for Castor's IND-aware bottom-clause construction (Lemma 7.5)."""


from repro.castor.bottom_clause import CastorBottomClauseBuilder, CastorBottomClauseConfig
from repro.learning.bottom_clause import BottomClauseBuilder, BottomClauseConfig
from repro.learning.examples import Example


EXAMPLE = Example("advised", ("stud1", "prof1"), True)


class TestIndChasing:
    def test_ind_siblings_are_pulled_in(self, decomposed_instance, decomposed_schema):
        """Adding a person tuple must drag in its inPhase and years tuples."""
        builder = CastorBottomClauseBuilder(
            decomposed_instance,
            decomposed_schema,
            CastorBottomClauseConfig(max_depth=1),
        )
        clause = builder.build(EXAMPLE)
        predicates = {atom.predicate for atom in clause.body}
        assert {"person", "inPhase", "years"} <= predicates

    def test_standard_builder_misses_siblings_at_depth_zero_constants(
        self, decomposed_instance
    ):
        """The IND chase is what distinguishes Castor's builder from the standard one.

        At depth 1 both builders see the tuples containing the example
        constants, so the difference shows in the *structure*: the Castor
        builder groups sibling tuples even when a per-relation cap would have
        excluded them.  Here we simply document that the Castor bottom clause
        is a superset of the standard one at equal limits.
        """
        standard = BottomClauseBuilder(
            decomposed_instance, BottomClauseConfig(max_depth=1)
        ).build(EXAMPLE)
        castor = CastorBottomClauseBuilder(
            decomposed_instance,
            decomposed_instance.schema,
            CastorBottomClauseConfig(max_depth=1),
        ).build(EXAMPLE)
        assert set(a.predicate for a in standard.body) <= set(
            a.predicate for a in castor.body
        )

    def test_inds_for_metadata(self, decomposed_instance, decomposed_schema):
        builder = CastorBottomClauseBuilder(decomposed_instance, decomposed_schema)
        assert builder.inds_for("person")
        assert builder.inds_for("publication") == []

    def test_ground_bottom_clause_is_ground(self, decomposed_instance, decomposed_schema):
        builder = CastorBottomClauseBuilder(decomposed_instance, decomposed_schema)
        saturation = builder.build_ground(EXAMPLE)
        assert all(atom.is_ground() for atom in saturation.body)

    def test_variable_budget_respected(self, decomposed_instance, decomposed_schema):
        tight = CastorBottomClauseBuilder(
            decomposed_instance,
            decomposed_schema,
            CastorBottomClauseConfig(max_depth=None, max_distinct_variables=4),
        ).build(EXAMPLE)
        loose = CastorBottomClauseBuilder(
            decomposed_instance,
            decomposed_schema,
            CastorBottomClauseConfig(max_depth=None, max_distinct_variables=20),
        ).build(EXAMPLE)
        assert len(tight.body) <= len(loose.body)

    def test_joining_tuple_cap(self, decomposed_instance, decomposed_schema):
        capped = CastorBottomClauseBuilder(
            decomposed_instance,
            decomposed_schema,
            CastorBottomClauseConfig(max_depth=1, max_joining_tuples_per_ind=0),
        ).build(EXAMPLE)
        # With the cap at zero the chase adds nothing beyond the seed tuples.
        chased = CastorBottomClauseBuilder(
            decomposed_instance,
            decomposed_schema,
            CastorBottomClauseConfig(max_depth=1, max_joining_tuples_per_ind=10),
        ).build(EXAMPLE)
        assert len(capped.body) <= len(chased.body)


class TestSchemaIndependenceOfBottomClauses:
    def test_equivalent_bottom_clauses_across_composition(
        self, decomposed_instance, decomposed_schema, composition, composed_instance_mini
    ):
        """Lemma 7.5: Castor's bottom clauses are equivalent across (de)composition.

        Equivalence is checked on the distinct-variable count and on the
        information content: the decomposed clause mentions person/inPhase/
        years literals exactly where the composed clause has a single wide
        person literal, with matching variables.
        """
        config = CastorBottomClauseConfig(max_depth=2, max_distinct_variables=20)
        decomposed_clause = CastorBottomClauseBuilder(
            decomposed_instance, decomposed_schema, config
        ).build(EXAMPLE)
        composed_clause = CastorBottomClauseBuilder(
            composed_instance_mini, composition.target_schema, config
        ).build(EXAMPLE)

        assert len(decomposed_clause.variables()) == len(composed_clause.variables())

        publication_literals_decomposed = [
            a for a in decomposed_clause.body if a.predicate == "publication"
        ]
        publication_literals_composed = [
            a for a in composed_clause.body if a.predicate == "publication"
        ]
        assert len(publication_literals_decomposed) == len(publication_literals_composed)

        wide_person_literals = [
            a for a in composed_clause.body if a.predicate == "person" and a.arity == 3
        ]
        narrow_person_literals = [
            a for a in decomposed_clause.body if a.predicate == "person" and a.arity == 1
        ]
        assert len(wide_person_literals) == len(narrow_person_literals)
