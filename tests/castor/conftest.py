"""Fixtures for Castor component tests: a tiny composed/decomposed pair.

The base scenario is the paper's running example in miniature: a wide
relation ``person(id, phase, years)`` and its decomposition into
``person(id)``, ``inPhase(id, phase)``, ``years(id, years)`` connected by
INDs with equality, plus a ``publication(title, person)`` relation shared by
both schemas.  The target is ``advised(stud, prof)``.
"""

from __future__ import annotations

import pytest

from repro.database import (
    DatabaseInstance,
    FunctionalDependency,
    InclusionDependency,
    RelationSchema,
    Schema,
)
from repro.learning.examples import ExampleSet
from repro.transform import ComposeOperation, SchemaTransformation


@pytest.fixture
def decomposed_schema() -> Schema:
    relations = [
        RelationSchema("person", ["id"]),
        RelationSchema("inPhase", ["id", "phase"]),
        RelationSchema("years", ["id", "yrs"]),
        RelationSchema("publication", ["title", "author"]),
    ]
    fds = [
        FunctionalDependency("inPhase", ["id"], ["phase"]),
        FunctionalDependency("years", ["id"], ["yrs"]),
    ]
    inds = [
        InclusionDependency("person", ["id"], "inPhase", ["id"], with_equality=True),
        InclusionDependency("person", ["id"], "years", ["id"], with_equality=True),
    ]
    return Schema(relations, fds, inds, name="mini-decomposed")


@pytest.fixture
def decomposed_instance(decomposed_schema: Schema) -> DatabaseInstance:
    instance = DatabaseInstance(decomposed_schema)
    people = {
        "stud1": ("prelim", 3),
        "stud2": ("post_quals", 5),
        "stud3": ("prelim", 2),
        "prof1": ("faculty", 10),
        "prof2": ("faculty", 12),
    }
    for person, (phase, years) in people.items():
        instance.add_tuple("person", (person,))
        instance.add_tuple("inPhase", (person, phase))
        instance.add_tuple("years", (person, years))
    publications = [
        ("t1", "stud1"), ("t1", "prof1"),
        ("t2", "stud2"), ("t2", "prof2"),
        ("t3", "prof1"), ("t3", "prof2"),
        ("t4", "stud3"),
    ]
    instance.add_tuples("publication", publications)
    return instance


@pytest.fixture
def composition(decomposed_schema: Schema) -> SchemaTransformation:
    """Compose person/inPhase/years into a single wide person relation."""
    return SchemaTransformation(
        decomposed_schema,
        [
            ComposeOperation(
                ["person", "inPhase", "years"],
                "person",
                attribute_order=["id", "phase", "yrs"],
            )
        ],
        target_name="mini-composed",
    )


@pytest.fixture
def composed_instance_mini(decomposed_instance, composition) -> DatabaseInstance:
    return composition.apply(decomposed_instance)


@pytest.fixture
def advised_examples() -> ExampleSet:
    return ExampleSet(
        "advised",
        [("stud1", "prof1"), ("stud2", "prof2")],
        [("stud3", "prof1"), ("stud1", "prof2"), ("stud2", "prof1"), ("stud3", "prof2")],
    )
