"""Tests for clause minimization and (relative) least general generalization."""

from repro.logic.lgg import lgg_atoms, lgg_clauses, rlgg
from repro.logic.minimize import minimize_clause, minimize_definition_clauses, remove_duplicate_literals
from repro.logic.atoms import Atom
from repro.logic.parser import parse_clause
from repro.logic.subsumption import clauses_equivalent
from repro.logic.terms import Constant, Variable


class TestMinimize:
    def test_removes_duplicate_literals(self):
        clause = parse_clause("t(x) :- r(x, y), r(x, y).")
        assert remove_duplicate_literals(clause).length == 1

    def test_removes_redundant_literal(self):
        clause = parse_clause("t(x) :- r(x, y), r(x, z).")
        minimized = minimize_clause(clause)
        assert minimized.length == 1
        assert clauses_equivalent(minimized, clause)

    def test_keeps_necessary_literals(self):
        clause = parse_clause("t(x) :- r(x, y), s(y).")
        assert minimize_clause(clause).length == 2

    def test_keeps_constant_literal_distinct_from_variable_literal(self):
        clause = parse_clause("t(x) :- r(x, a), r(x, y).")
        minimized = minimize_clause(clause)
        # r(x, y) is redundant (subsumed by r(x, a) direction of matching),
        # but r(x, a) is not; the minimized clause must still be equivalent.
        assert clauses_equivalent(minimized, clause)

    def test_minimize_definition_drops_subsumed_clauses(self):
        general = parse_clause("t(x) :- r(x, y).")
        specific = parse_clause("t(x) :- r(x, y), s(y).")
        kept = minimize_definition_clauses([general, specific])
        assert kept == [general]

    def test_minimize_definition_keeps_incomparable_clauses(self):
        first = parse_clause("t(x) :- r(x, y).")
        second = parse_clause("t(x) :- s(x, y).")
        kept = minimize_definition_clauses([first, second])
        assert len(kept) == 2


class TestLgg:
    def test_lgg_of_identical_atoms_is_the_atom(self):
        class Factory:
            def variable_for(self, left, right):
                raise AssertionError("should not be called")

        atom = Atom("r", [Constant("ann"), Constant("bob")])
        assert lgg_atoms(atom, atom, Factory()) == atom

    def test_lgg_of_incompatible_atoms_is_none(self):
        from repro.logic.lgg import _VariableFactory

        assert lgg_atoms(Atom("r", ["a"]), Atom("s", ["a"]), _VariableFactory()) is None
        assert lgg_atoms(Atom("r", ["a"]), Atom("r", ["a", "b"]), _VariableFactory()) is None

    def test_lgg_generalizes_differing_constants_consistently(self):
        first = parse_clause("t(ann) :- r(ann, bob), s(bob).")
        second = parse_clause("t(carl) :- r(carl, dana), s(dana).")
        generalized = lgg_clauses(first, second)
        assert generalized is not None
        # The same constant pair (b, d) must map to the same variable in both
        # r and s literals, so the generalization keeps the join.
        from repro.logic.subsumption import SubsumptionEngine

        engine = SubsumptionEngine()
        assert engine.subsumes(generalized, first)
        assert engine.subsumes(generalized, second)
        assert clauses_equivalent(generalized, parse_clause("t(x) :- r(x, y), s(y)."))

    def test_lgg_size_is_bounded_by_product(self):
        first = parse_clause("t(ann) :- r(ann, bob), r(ann, carl).")
        second = parse_clause("t(dana) :- r(dana, eve), r(dana, fred).")
        generalized = lgg_clauses(first, second)
        assert generalized is not None
        assert generalized.length <= first.length * second.length

    def test_lgg_respects_max_body_literals(self):
        first = parse_clause("t(ann) :- r(ann, bob), r(ann, carl), r(ann, dana).")
        second = parse_clause("t(eve) :- r(eve, fred), r(eve, gina), r(eve, hank).")
        generalized = lgg_clauses(first, second, max_body_literals=4)
        assert generalized is not None
        assert generalized.length <= 4

    def test_lgg_subsumes_both_inputs(self):
        from repro.logic.subsumption import SubsumptionEngine

        engine = SubsumptionEngine()
        first = parse_clause("t(ann) :- p(ann, bob), q(bob, carl).")
        second = parse_clause("t(dana) :- p(dana, eve), q(eve, fred), q(eve, gina).")
        generalized = lgg_clauses(first, second)
        assert engine.subsumes(generalized, first)
        assert engine.subsumes(generalized, second)

    def test_rlgg_keeps_head_connected_part(self):
        first = parse_clause("t(ann) :- r(ann, bob), s(carl, dana).")
        second = parse_clause("t(eve) :- r(eve, fred), s(gina, hank).")
        generalized = rlgg(first, second)
        assert generalized is not None
        # s(c,d)/s(g,h) generalize to a literal sharing no variable with the
        # head chain, so rlgg drops it.
        assert all(atom.predicate == "r" for atom in generalized.body)

    def test_rlgg_none_for_incompatible_heads(self):
        assert rlgg(parse_clause("t(ann) :- r(ann)."), parse_clause("u(bob) :- r(bob).")) is None
