"""Tests for repro.logic.substitution."""

from repro.logic.atoms import Atom
from repro.logic.substitution import (
    apply_substitution,
    compose,
    match_atom_to_ground,
    restrict,
    unify_atoms,
    unify_term_sequences,
    unify_terms,
)
from repro.logic.terms import Constant, Variable

X, Y, Z = Variable("x"), Variable("y"), Variable("z")
A, B = Constant("a"), Constant("b")


class TestApplyAndCompose:
    def test_apply_to_variable_and_constant(self):
        theta = {X: A}
        assert apply_substitution(X, theta) == A
        assert apply_substitution(Y, theta) == Y
        assert apply_substitution(A, theta) == A

    def test_compose_applies_second_to_first(self):
        first = {X: Y}
        second = {Y: A}
        composed = compose(first, second)
        assert composed[X] == A
        assert composed[Y] == A

    def test_restrict(self):
        theta = {X: A, Y: B}
        assert restrict(theta, [X]) == {X: A}


class TestUnification:
    def test_unify_equal_terms(self):
        assert unify_terms(A, A) == {}
        assert unify_terms(X, X) == {}

    def test_unify_variable_with_constant(self):
        assert unify_terms(X, A) == {X: A}
        assert unify_terms(A, X) == {X: A}

    def test_unify_conflicting_constants_fails(self):
        assert unify_terms(A, B) is None

    def test_unify_respects_existing_bindings(self):
        assert unify_terms(X, B, {X: A}) is None
        assert unify_terms(X, A, {X: A}) == {X: A}

    def test_unify_sequences(self):
        assert unify_term_sequences([X, Y], [A, B]) == {X: A, Y: B}
        assert unify_term_sequences([X, X], [A, B]) is None
        assert unify_term_sequences([X], [A, B]) is None

    def test_unify_atoms(self):
        assert unify_atoms(Atom("r", [X, Y]), Atom("r", [A, B])) == {X: A, Y: B}
        assert unify_atoms(Atom("r", [X]), Atom("s", [A])) is None


class TestMatching:
    def test_match_binds_pattern_variables_only(self):
        theta = match_atom_to_ground(Atom("r", [X, Y]), Atom("r", [A, B]))
        assert theta == {X: A, Y: B}

    def test_match_fails_on_constant_mismatch(self):
        assert match_atom_to_ground(Atom("r", [A]), Atom("r", [B])) is None

    def test_match_fails_on_inconsistent_repeated_variable(self):
        assert match_atom_to_ground(Atom("r", [X, X]), Atom("r", [A, B])) is None
        assert match_atom_to_ground(Atom("r", [X, X]), Atom("r", [A, A])) == {X: A}

    def test_match_respects_prior_bindings(self):
        assert match_atom_to_ground(Atom("r", [X]), Atom("r", [B]), {X: A}) is None
