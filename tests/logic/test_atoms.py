"""Tests for repro.logic.atoms."""

import pytest

from repro.logic.atoms import Atom, Literal, atoms_share_variable, collect_constants, collect_variables
from repro.logic.terms import Constant, Variable


class TestAtom:
    def test_plain_values_become_constants(self):
        atom = Atom("r", ["a", 1])
        assert atom.terms == (Constant("a"), Constant(1))

    def test_arity(self):
        assert Atom("r", [Variable("x"), Variable("y")]).arity == 2
        assert Atom("r", []).arity == 0

    def test_variables_in_order_without_duplicates(self):
        atom = Atom("r", [Variable("x"), Variable("y"), Variable("x")])
        assert atom.variables() == [Variable("x"), Variable("y")]

    def test_constants_in_order(self):
        atom = Atom("r", [Constant("a"), Variable("x"), Constant("b")])
        assert atom.constants() == [Constant("a"), Constant("b")]

    def test_is_ground(self):
        assert Atom("r", ["a", "b"]).is_ground()
        assert not Atom("r", [Variable("x"), "b"]).is_ground()

    def test_apply_substitution(self):
        atom = Atom("r", [Variable("x"), Variable("y")])
        applied = atom.apply({Variable("x"): Constant("a")})
        assert applied == Atom("r", [Constant("a"), Variable("y")])

    def test_apply_does_not_mutate(self):
        atom = Atom("r", [Variable("x")])
        atom.apply({Variable("x"): Constant("a")})
        assert atom.terms == (Variable("x"),)

    def test_equality_and_hash(self):
        assert Atom("r", ["a"]) == Atom("r", ["a"])
        assert Atom("r", ["a"]) != Atom("s", ["a"])
        assert len({Atom("r", ["a"]), Atom("r", ["a"])}) == 1

    def test_str(self):
        assert str(Atom("r", [Variable("x"), "a"])) == "r(x, a)"

    def test_empty_predicate_rejected(self):
        with pytest.raises(ValueError):
            Atom("", ["a"])

    def test_rename_predicate(self):
        assert Atom("r", ["a"]).rename_predicate("s") == Atom("s", ["a"])


class TestLiteral:
    def test_negate(self):
        literal = Literal(Atom("r", ["a"]))
        assert literal.positive
        assert not literal.negate().positive
        assert literal.negate().negate() == literal

    def test_delegates_to_atom(self):
        literal = Literal(Atom("r", [Variable("x"), "a"]))
        assert literal.predicate == "r"
        assert literal.arity == 2
        assert literal.variables() == [Variable("x")]

    def test_requires_atom(self):
        with pytest.raises(TypeError):
            Literal("not an atom")


class TestHelpers:
    def test_atoms_share_variable(self):
        a = Atom("r", [Variable("x"), "a"])
        b = Atom("s", [Variable("x")])
        c = Atom("s", [Variable("z")])
        assert atoms_share_variable(a, b)
        assert not atoms_share_variable(a, c)
        assert not atoms_share_variable(Atom("r", ["a"]), Atom("s", ["a"]))

    def test_collect_variables(self):
        atoms = [Atom("r", [Variable("x")]), Atom("s", [Variable("y"), Variable("x")])]
        assert collect_variables(atoms) == [Variable("x"), Variable("y")]

    def test_collect_constants(self):
        atoms = [Atom("r", ["a"]), Atom("s", ["b", "a"])]
        assert collect_constants(atoms) == [Constant("a"), Constant("b")]
