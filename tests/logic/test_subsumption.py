"""Tests for repro.logic.subsumption (θ-subsumption engine).

Parser convention reminder: single lowercase letters (``x``, ``y``, ``p``) are
variables; multi-letter lowercase words (``alice``, ``paper1``) are constants.
"""

from repro.logic.parser import parse_clause
from repro.logic.subsumption import (
    GroundClauseIndex,
    SubsumptionEngine,
    clauses_equivalent,
    theta_subsumes,
)


ENGINE = SubsumptionEngine()


class TestSubsumption:
    def test_clause_subsumes_itself(self):
        clause = parse_clause("t(x, y) :- r(x, z), s(z, y).")
        assert ENGINE.subsumes(clause, clause)

    def test_more_general_subsumes_specific(self):
        general = parse_clause("t(x) :- r(x, y).")
        specific = parse_clause("t(x) :- r(x, y), s(y).")
        assert ENGINE.subsumes(general, specific)
        assert not ENGINE.subsumes(specific, general)

    def test_variable_subsumes_constant(self):
        general = parse_clause("t(x) :- r(x, y).")
        specific = parse_clause("t(alice) :- r(alice, bob).")
        assert ENGINE.subsumes(general, specific)
        assert not ENGINE.subsumes(specific, general)

    def test_repeated_variable_constrains_match(self):
        general = parse_clause("t(x) :- r(x, x).")
        specific_match = parse_clause("t(alice) :- r(alice, alice).")
        specific_mismatch = parse_clause("t(alice) :- r(alice, bob).")
        assert ENGINE.subsumes(general, specific_match)
        assert not ENGINE.subsumes(general, specific_mismatch)

    def test_head_predicate_must_match(self):
        general = parse_clause("t(x) :- r(x).")
        other = parse_clause("u(alice) :- r(alice).")
        assert not ENGINE.subsumes(general, other)

    def test_different_body_predicate_blocks_subsumption(self):
        general = parse_clause("t(x) :- q(x).")
        specific = parse_clause("t(alice) :- r(alice).")
        assert not ENGINE.subsumes(general, specific)

    def test_coverage_of_ground_bottom_clause(self):
        candidate = parse_clause("advisedBy(x, y) :- publication(p, x), publication(p, y).")
        ground = parse_clause(
            "advisedBy(stud1, prof1) :- student(stud1), professor(prof1), "
            "publication(paper1, stud1), publication(paper1, prof1), publication(paper2, prof1)."
        )
        assert ENGINE.covers_example(candidate, ground)

    def test_non_covering_candidate(self):
        candidate = parse_clause("advisedBy(x, y) :- taughtBy(c, y, t), ta(c, x, t).")
        ground = parse_clause(
            "advisedBy(stud1, prof1) :- publication(paper1, stud1), publication(paper1, prof1)."
        )
        assert not ENGINE.covers_example(candidate, ground)

    def test_empty_body_subsumes_anything_with_matching_head(self):
        general = parse_clause("t(x).")
        specific = parse_clause("t(alice) :- r(alice), s(alice).")
        assert ENGINE.subsumes(general, specific)

    def test_substitution_witness_is_consistent(self):
        general = parse_clause("t(x) :- r(x, y), s(y).")
        specific = parse_clause("t(alice) :- r(alice, bob), s(bob), r(alice, carol).")
        theta = ENGINE.subsumption_substitution(general, specific)
        assert theta is not None
        applied = general.apply(theta)
        assert set(applied.body) <= set(specific.body)

    def test_backtracking_finds_consistent_assignment(self):
        # The candidate match r(alice, bob) does not extend to s; the engine
        # must backtrack and choose r(alice, carol).
        general = parse_clause("t(x) :- r(x, y), s(y).")
        specific = parse_clause("t(alice) :- r(alice, bob), r(alice, carol), s(carol).")
        assert ENGINE.subsumes(general, specific)

    def test_budget_exhaustion_is_conservative(self):
        tiny = SubsumptionEngine(max_backtracks=1)
        general = parse_clause("t(x) :- r(x, y), s(y).")
        specific = parse_clause("t(alice) :- r(alice, bob), r(alice, carol), s(carol).")
        # With an absurdly small budget the engine may miss the match, but it
        # must not crash and must return a boolean.
        assert tiny.subsumes(general, specific) in (True, False)

    def test_reusing_prebuilt_index(self):
        general = parse_clause("t(x) :- r(x, y), s(y).")
        specific = parse_clause("t(alice) :- r(alice, bob), s(bob).")
        index = GroundClauseIndex(specific)
        assert ENGINE.subsumes(general, specific, index)
        assert ENGINE.subsumes(general, specific, index)

    def test_index_candidates_filter_by_bound_positions(self):
        specific = parse_clause("t(alice) :- r(alice, bob), r(carol, dave).")
        index = GroundClauseIndex(specific)
        pattern = parse_clause("t(x) :- r(x, y).").body[0]
        from repro.logic.terms import Constant, Variable

        theta = {Variable("x"): Constant("carol")}
        candidates = index.candidates(pattern, theta)
        assert len(candidates) == 1
        assert candidates[0].terms[0] == Constant("carol")


class TestEquivalence:
    def test_variants_are_equivalent(self):
        first = parse_clause("t(x, y) :- r(x, z), r(y, z).")
        second = parse_clause("t(a, b) :- r(b, w), r(a, w).")
        assert clauses_equivalent(first, second)

    def test_clause_with_redundant_literal_is_equivalent(self):
        minimal = parse_clause("t(x) :- r(x, y).")
        redundant = parse_clause("t(x) :- r(x, y), r(x, z).")
        assert clauses_equivalent(minimal, redundant)

    def test_non_equivalent_clauses(self):
        first = parse_clause("t(x) :- r(x, y).")
        second = parse_clause("t(x) :- r(y, x).")
        assert not clauses_equivalent(first, second)

    def test_module_level_wrapper(self):
        general = parse_clause("t(x) :- r(x, y).")
        specific = parse_clause("t(alice) :- r(alice, bob).")
        assert theta_subsumes(general, specific)
