"""Regression: budget exhaustion must be observable, not silent.

Exhausting the backtrack budget conservatively reports "does not subsume";
before the ``subsumption.budget_exhausted`` counter existed that outcome was
indistinguishable from a genuine negative verdict.  These tests pin the
counter (and the warn-once) for both engines on a pathological clause pair
that a tiny budget cannot decide.
"""

import warnings

import pytest

from repro.logic.atoms import Atom
from repro.logic.clauses import HornClause
from repro.logic.subsumption import (
    ReferenceSubsumptionEngine,
    SubsumptionEngine,
    budget_exhausted_count,
)
from repro.logic.terms import Constant, Variable
from repro.obs import registry


def pathological_pair():
    """A variable-chain pattern against a 12-tuple ground cycle.

    The true verdict is positive (a 6-edge path maps into the cycle), but
    every literal after the first costs candidate trials, so a
    single-backtrack budget exhausts immediately.
    """
    variables = [Variable(f"X{i}") for i in range(7)]
    general = HornClause(
        Atom("t", [variables[0]]),
        [Atom("edge", [variables[i], variables[i + 1]]) for i in range(6)],
    )
    body = [
        Atom("edge", [Constant(f"n{i}"), Constant(f"n{(i + 1) % 12}")])
        for i in range(12)
    ]
    specific = HornClause(Atom("t", [Constant("n0")]), body)
    return general, specific


@pytest.mark.parametrize(
    "engine_class", [SubsumptionEngine, ReferenceSubsumptionEngine]
)
def test_exhaustion_increments_counter(engine_class):
    general, specific = pathological_pair()
    # Sanity: with a generous budget the pair IS decidable (positively).
    assert engine_class(max_backtracks=1_000_000).subsumes(general, specific)

    engine = engine_class(max_backtracks=1)
    before = budget_exhausted_count()
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", RuntimeWarning)
        assert engine.subsumes(general, specific) is False
    assert budget_exhausted_count() == before + 1

    # Counter reads through the registry too (one series, no labels).
    assert (
        registry().counter("subsumption.budget_exhausted").value
        == budget_exhausted_count()
    )


def test_no_count_when_budget_suffices():
    general, specific = pathological_pair()
    before = budget_exhausted_count()
    assert SubsumptionEngine(max_backtracks=1_000_000).subsumes(general, specific)
    assert budget_exhausted_count() == before
