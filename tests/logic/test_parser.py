"""Tests for the clause parser and pretty-printer."""

import pytest

from repro.logic.atoms import Atom
from repro.logic.parser import (
    ClauseParseError,
    format_clause,
    format_definition,
    parse_atom,
    parse_clause,
    parse_definition,
    parse_term,
)
from repro.logic.terms import Constant, Variable


class TestParseTerm:
    def test_single_lowercase_letter_is_variable(self):
        assert parse_term("x") == Variable("x")
        assert parse_term("v12") == Variable("v12")

    def test_uppercase_is_variable(self):
        assert parse_term("Stud") == Variable("Stud")

    def test_words_are_constants(self):
        assert parse_term("post_generals") == Constant("post_generals")
        assert parse_term("faculty") == Constant("faculty")

    def test_numbers_are_constants(self):
        assert parse_term("7") == Constant(7)
        assert parse_term("3.5") == Constant(3.5)
        assert parse_term("-2") == Constant(-2)

    def test_quoted_strings_are_constants(self):
        assert parse_term("'x'") == Constant("x")
        assert parse_term('"hello world"') == Constant("hello world")

    def test_empty_term_rejected(self):
        with pytest.raises(ClauseParseError):
            parse_term("  ")


class TestParseAtom:
    def test_simple_atom(self):
        assert parse_atom("publication(z, x)") == Atom(
            "publication", [Variable("z"), Variable("x")]
        )

    def test_atom_with_constants(self):
        atom = parse_atom("student(x, post_generals, 5)")
        assert atom.terms == (Variable("x"), Constant("post_generals"), Constant(5))

    def test_zero_arity_atom(self):
        assert parse_atom("flag()") == Atom("flag", [])

    def test_malformed_atom_rejected(self):
        with pytest.raises(ClauseParseError):
            parse_atom("not an atom")


class TestParseClause:
    def test_fact(self):
        clause = parse_clause("student(alice).")
        assert clause.length == 0
        assert clause.head == Atom("student", ["alice"])

    def test_clause_with_prolog_separator(self):
        clause = parse_clause("advisedBy(x, y) :- publication(z, x), publication(z, y).")
        assert clause.length == 2

    def test_clause_with_arrow_separator(self):
        clause = parse_clause("advisedBy(x, y) <- publication(z, x), publication(z, y)")
        assert clause.length == 2

    def test_clause_with_true_body(self):
        clause = parse_clause("collaborated(x, y) :- true.")
        assert clause.length == 0

    def test_round_trip(self):
        text = "advisedBy(x, y) :- student(x), professor(y), publication(z, x), publication(z, y)."
        clause = parse_clause(text)
        assert parse_clause(format_clause(clause)) == clause


class TestParseDefinition:
    def test_multi_clause_definition(self):
        text = """
        % comment line
        path(x, y) :- edge(x, y).
        path(x, y) :- edge(x, z), path(z, y).
        """
        definition = parse_definition(text)
        assert definition.target == "path"
        assert len(definition) == 2

    def test_explicit_target_mismatch_raises(self):
        with pytest.raises(ValueError):
            parse_definition("p(x) :- q(x).", target="other")

    def test_empty_definition_rejected(self):
        with pytest.raises(ClauseParseError):
            parse_definition("% only comments")

    def test_format_round_trip(self):
        text = "p(x) :- q(x, y), r(y).\np(x) :- s(x)."
        definition = parse_definition(text)
        assert parse_definition(format_definition(definition)) == definition
