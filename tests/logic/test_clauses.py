"""Tests for repro.logic.clauses."""

import pytest

from repro.logic.atoms import Atom
from repro.logic.clauses import HornClause, HornDefinition, clause_from_example
from repro.logic.parser import parse_clause
from repro.logic.terms import Constant, Variable

X, Y, Z, W = Variable("x"), Variable("y"), Variable("z"), Variable("w")


def make_collaborated() -> HornClause:
    return HornClause(
        Atom("collaborated", [X, Y]),
        [Atom("publication", [Z, X]), Atom("publication", [Z, Y])],
    )


class TestHornClause:
    def test_length_counts_body_literals(self):
        assert make_collaborated().length == 2
        assert HornClause(Atom("t", [X])).length == 0

    def test_variables_head_first(self):
        assert make_collaborated().variables() == [X, Y, Z]

    def test_head_and_body_variables(self):
        clause = make_collaborated()
        assert clause.head_variables() == [X, Y]
        assert set(clause.body_variables()) == {X, Y, Z}

    def test_is_safe(self):
        assert make_collaborated().is_safe()
        unsafe = HornClause(Atom("t", [X, Y]), [Atom("r", [X])])
        assert not unsafe.is_safe()

    def test_fact_with_no_head_variables_is_safe(self):
        assert HornClause(Atom("t", ["a"]), [Atom("r", ["a"])]).is_safe()

    def test_is_ground(self):
        assert HornClause(Atom("t", ["a"]), [Atom("r", ["a", "b"])]).is_ground()
        assert not make_collaborated().is_ground()

    def test_predicates(self):
        assert make_collaborated().predicates() == {"publication"}

    def test_add_and_remove_literal(self):
        clause = make_collaborated()
        extended = clause.add_literal(Atom("professor", [Y]))
        assert extended.length == 3
        assert clause.length == 2
        shrunk = extended.remove_literal_at(2)
        assert shrunk == clause

    def test_without_duplicates(self):
        clause = HornClause(Atom("t", [X]), [Atom("r", [X]), Atom("r", [X])])
        assert clause.without_duplicates().length == 1

    def test_apply_substitution(self):
        clause = make_collaborated()
        grounded = clause.apply({X: Constant("p1"), Y: Constant("p2"), Z: Constant("t1")})
        assert grounded.is_ground()

    def test_standardize_apart_renames_all_variables(self):
        clause = make_collaborated()
        renamed = clause.standardize_apart("1")
        assert set(renamed.variables()).isdisjoint(set(clause.variables()))
        assert renamed.length == clause.length

    def test_normalize_variables_gives_variant_equality(self):
        clause_a = make_collaborated()
        clause_b = HornClause(
            Atom("collaborated", [W, Y]),
            [Atom("publication", [Z, W]), Atom("publication", [Z, Y])],
        )
        assert clause_a.normalize_variables() == clause_b.normalize_variables()

    def test_equality_ignores_body_order(self):
        clause_a = make_collaborated()
        clause_b = HornClause(
            Atom("collaborated", [X, Y]),
            [Atom("publication", [Z, Y]), Atom("publication", [Z, X])],
        )
        assert clause_a == clause_b

    def test_str_round_trips_through_parser(self):
        clause = make_collaborated()
        assert parse_clause(str(clause)) == clause


class TestDepthAndConnectivity:
    def test_depth_of_flat_clause_is_one(self):
        clause = parse_clause("taLevel(x, y) :- ta(c, x, t), courseLevel(c, y).")
        assert clause.depth() == 1

    def test_depth_two_example_from_paper(self):
        clause = parse_clause(
            "commonLevel(x, y) :- ta(c1, x, t1), ta(c2, y, t2), "
            "courseLevel(c1, l), courseLevel(c2, l)."
        )
        assert clause.depth() == 2

    def test_head_connected_body_keeps_connected_literals(self):
        clause = HornClause(
            Atom("t", [X]),
            [Atom("r", [X, Y]), Atom("s", [Y, Z]), Atom("q", [W, W])],
        )
        connected = clause.head_connected_body()
        assert Atom("q", [W, W]) not in connected
        assert len(connected) == 2

    def test_is_head_connected(self):
        assert make_collaborated().is_head_connected()
        disconnected = HornClause(Atom("t", [X]), [Atom("r", [Y, Z])])
        assert not disconnected.is_head_connected()


class TestHornDefinition:
    def test_add_requires_matching_target(self):
        definition = HornDefinition("t")
        with pytest.raises(ValueError):
            definition.add(HornClause(Atom("other", [X]), [Atom("r", [X])]))

    def test_iteration_and_len(self):
        definition = HornDefinition("collaborated", [make_collaborated()])
        assert len(definition) == 1
        assert list(definition) == [make_collaborated()]

    def test_total_length_and_predicates(self):
        definition = HornDefinition("collaborated", [make_collaborated()])
        assert definition.total_length() == 2
        assert definition.predicates() == {"publication"}

    def test_is_safe(self):
        definition = HornDefinition("collaborated", [make_collaborated()])
        assert definition.is_safe()
        definition.add(HornClause(Atom("collaborated", [X, Y]), [Atom("publication", [Z, X])]))
        assert not definition.is_safe()

    def test_equality_up_to_variable_renaming(self):
        first = HornDefinition("collaborated", [make_collaborated()])
        renamed = HornDefinition(
            "collaborated",
            [
                HornClause(
                    Atom("collaborated", [W, Y]),
                    [Atom("publication", [Z, W]), Atom("publication", [Z, Y])],
                )
            ],
        )
        assert first == renamed

    def test_clause_from_example(self):
        example = Atom("advisedBy", ["s1", "p1"])
        clause = clause_from_example(example, [Atom("student", ["s1"])])
        assert clause.head == example
        assert clause.length == 1
