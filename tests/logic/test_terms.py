"""Tests for repro.logic.terms."""

import pytest

from repro.logic.terms import Constant, Variable, fresh_variable_factory, make_term


class TestVariable:
    def test_equality_by_name(self):
        assert Variable("x") == Variable("x")
        assert Variable("x") != Variable("y")

    def test_hashable_and_usable_in_sets(self):
        assert len({Variable("x"), Variable("x"), Variable("y")}) == 2

    def test_is_variable(self):
        assert Variable("x").is_variable()
        assert not Variable("x").is_constant()

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError):
            Variable("")

    def test_str_is_name(self):
        assert str(Variable("abc")) == "abc"


class TestConstant:
    def test_equality_by_value(self):
        assert Constant("a") == Constant("a")
        assert Constant(1) != Constant("1")

    def test_is_constant(self):
        assert Constant("a").is_constant()
        assert not Constant("a").is_variable()

    def test_numeric_values_supported(self):
        assert Constant(7).value == 7
        assert Constant(3.5).value == 3.5

    def test_nested_terms_rejected(self):
        with pytest.raises(TypeError):
            Constant(Variable("x"))

    def test_variable_and_constant_never_equal(self):
        assert Variable("x") != Constant("x")
        assert hash(Variable("x")) != hash(Constant("x"))


class TestHelpers:
    def test_make_term_wraps_plain_values(self):
        assert make_term("a") == Constant("a")
        assert make_term(3) == Constant(3)

    def test_make_term_passes_terms_through(self):
        variable = Variable("x")
        assert make_term(variable) is variable

    def test_fresh_variable_factory_never_repeats(self):
        fresh = fresh_variable_factory("t")
        produced = {fresh() for _ in range(50)}
        assert len(produced) == 50
        assert all(v.name.startswith("t") for v in produced)
