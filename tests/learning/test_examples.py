"""Tests for examples, splitting, and negative sampling."""

import pytest

from repro.learning.examples import Example, ExampleSet, sample_closed_world_negatives


class TestExample:
    def test_as_atom_is_ground(self):
        example = Example("advisedBy", ("s1", "p1"), True)
        atom = example.as_atom()
        assert atom.is_ground()
        assert atom.predicate == "advisedBy"

    def test_equality_includes_label(self):
        assert Example("t", ("a",), True) == Example("t", ("a",), True)
        assert Example("t", ("a",), True) != Example("t", ("a",), False)


class TestExampleSet:
    def make_set(self, positives=6, negatives=12) -> ExampleSet:
        return ExampleSet(
            "t",
            [(f"p{i}",) for i in range(positives)],
            [(f"n{i}",) for i in range(negatives)],
        )

    def test_lengths(self):
        examples = self.make_set()
        assert len(examples) == 18
        assert len(examples.positives) == 6
        assert len(examples.negatives) == 12
        assert not examples.is_empty()

    def test_tuple_views(self):
        examples = self.make_set(2, 1)
        assert examples.positive_tuples() == {("p0",), ("p1",)}
        assert examples.negative_tuples() == {("n0",)}

    def test_shuffled_is_deterministic_per_seed(self):
        examples = self.make_set()
        first = [e.values for e in examples.shuffled(seed=3).positives]
        second = [e.values for e in examples.shuffled(seed=3).positives]
        third = [e.values for e in examples.shuffled(seed=4).positives]
        assert first == second
        assert set(first) == set(e.values for e in examples.positives)
        assert first != third or len(first) <= 1

    def test_train_test_split_is_stratified_partition(self):
        examples = self.make_set()
        train, test = examples.train_test_split(test_fraction=0.3, seed=0)
        assert len(train.positives) + len(test.positives) == 6
        assert len(train.negatives) + len(test.negatives) == 12
        assert set(train.positive_tuples()).isdisjoint(test.positive_tuples())

    def test_train_test_split_rejects_bad_fraction(self):
        with pytest.raises(ValueError):
            self.make_set().train_test_split(test_fraction=0.0)

    def test_k_folds_cover_every_example_once(self):
        examples = self.make_set()
        seen_positive_test = []
        folds = list(examples.k_folds(3, seed=1))
        assert len(folds) == 3
        for train, test in folds:
            assert set(train.positive_tuples()).isdisjoint(test.positive_tuples())
            seen_positive_test.extend(test.positive_tuples())
        assert sorted(seen_positive_test) == sorted(examples.positive_tuples())

    def test_k_folds_requires_at_least_two(self):
        with pytest.raises(ValueError):
            list(self.make_set().k_folds(1))

    def test_subsample_caps_sizes(self):
        examples = self.make_set()
        small = examples.subsample(max_positives=2, max_negatives=3, seed=0)
        assert len(small.positives) == 2
        assert len(small.negatives) == 3


class TestClosedWorldNegatives:
    def test_negatives_disjoint_from_positives(self):
        positives = [("s1", "p1"), ("s2", "p2")]
        negatives = sample_closed_world_negatives(
            positives, [["s1", "s2", "s3"], ["p1", "p2", "p3"]], ratio=2.0, seed=0
        )
        assert len(negatives) == 4
        assert set(negatives).isdisjoint(set(positives))
        assert len(set(negatives)) == len(negatives)

    def test_ratio_of_two_by_default_matches_paper(self):
        positives = [(f"s{i}", "p0") for i in range(5)]
        negatives = sample_closed_world_negatives(
            positives, [[f"s{i}" for i in range(10)], [f"p{i}" for i in range(10)]], seed=1
        )
        assert len(negatives) == 10

    def test_small_domain_terminates(self):
        # Domain so small that the requested ratio cannot be met: the sampler
        # must terminate and return what exists.
        positives = [("a", "b")]
        negatives = sample_closed_world_negatives(
            positives, [["a"], ["b"]], ratio=5.0, seed=0
        )
        assert negatives == []
