"""Batched-vs-sequential parity for reduction and ARMG prefix probes.

Routing negative-reduction and blocking-atom probes through
:class:`~repro.learning.coverage.BatchCoverageEngine` (and widening the
section search with ``probe_width``) is a *scheduling* change: the probe
answers come from the same engine over the same saturations, so the reduced
and generalized clauses must be literal-for-literal identical for every
combination of batched/sequential and probe width.
"""

import pytest

from repro.castor.bottom_clause import (
    CastorBottomClauseBuilder,
    CastorBottomClauseConfig,
)
from repro.castor.reduction import NegativeReducer
from repro.learning.coverage import BatchCoverageEngine, SubsumptionCoverageEngine
from repro.progolem.armg import armg, find_blocking_atom


@pytest.fixture(scope="module")
def workload(uwcse_bundle):
    """UW-CSE instance + bottom clauses of the first few positives."""
    variant = uwcse_bundle.variant_names[0]
    instance = uwcse_bundle.instance(variant)
    schema = instance.schema
    coverage = SubsumptionCoverageEngine(instance)
    coverage.builder = CastorBottomClauseBuilder(
        instance,
        schema,
        CastorBottomClauseConfig(max_depth=2, max_total_literals=20),
    )
    builder = CastorBottomClauseBuilder(
        instance,
        schema,
        CastorBottomClauseConfig(max_depth=2, max_total_literals=20),
    )
    clauses = [builder.build(e) for e in uwcse_bundle.examples.positives[:4]]
    clauses = [c for c in clauses if len(c.body) >= 3]
    assert clauses, "workload produced no usable bottom clauses"
    return instance, schema, coverage, clauses, uwcse_bundle.examples


class TestReducerBatchedParity:
    def test_batched_matches_sequential(self, workload):
        _, schema, coverage, clauses, examples = workload
        negatives = examples.negatives
        for clause in clauses:
            sequential = NegativeReducer(schema, coverage, batched=False).reduce(
                clause, negatives
            )
            batched = NegativeReducer(schema, coverage, batched=True).reduce(
                clause, negatives
            )
            assert batched == sequential, clause

    def test_probe_width_invariance(self, workload):
        """Wider sections probe MORE points per round, never different answers."""
        _, schema, coverage, clauses, examples = workload
        negatives = examples.negatives
        for clause in clauses:
            reduced = {
                width: NegativeReducer(
                    schema, coverage, batched=True, probe_width=width
                ).reduce(clause, negatives)
                for width in (1, 2, 5)
            }
            assert reduced[1] == reduced[2] == reduced[5], clause

    def test_explicit_batch_engine_is_used(self, workload):
        _, schema, coverage, clauses, examples = workload
        batch = BatchCoverageEngine(coverage, parallelism=3)
        reducer = NegativeReducer(schema, coverage, batch=batch)
        assert reducer.batch is batch
        # probe_width defaults to the batch's clause-level fan-out.
        assert reducer.probe_width == 3
        reduced = reducer.reduce(clauses[0], examples.negatives)
        baseline = NegativeReducer(schema, coverage, batched=False).reduce(
            clauses[0], examples.negatives
        )
        assert reduced == baseline


class TestArmgBatchedParity:
    def test_batch_matches_direct_probes(self, workload):
        _, _, coverage, clauses, examples = workload
        batch = BatchCoverageEngine(coverage)
        others = examples.positives[1:4]
        for clause in clauses:
            for example in others:
                direct = armg(clause, example, coverage)
                batched = armg(clause, example, coverage, batch=batch)
                assert batched == direct, (clause, example)

    def test_find_blocking_atom_width_invariance(self, workload):
        _, _, coverage, clauses, examples = workload
        batch = BatchCoverageEngine(coverage)
        for clause in clauses:
            for example in examples.all_examples()[:6]:
                baseline = find_blocking_atom(clause, example, coverage)
                for width in (1, 3, 7):
                    got = find_blocking_atom(
                        clause, example, coverage, batch=batch, probe_width=width
                    )
                    assert got == baseline, (clause, example, width)

    def test_blocking_atom_semantics(self, workload):
        """The reported index is the LEAST failing prefix boundary."""
        _, _, coverage, clauses, examples = workload
        batch = BatchCoverageEngine(coverage)
        checked = 0
        for clause in clauses:
            for example in examples.negatives[:4]:
                index = find_blocking_atom(
                    clause, example, coverage, batch=batch, probe_width=3
                )
                if index is None:
                    continue
                saturation = coverage.saturation(example)
                saturation_index = coverage.saturation_index(example)
                from repro.logic.clauses import HornClause

                failing = HornClause(clause.head, clause.body[: index + 1])
                assert not coverage.subsumption.covers_example(
                    failing, saturation, saturation_index
                )
                if index > 0:
                    passing = HornClause(clause.head, clause.body[:index])
                    assert coverage.subsumption.covers_example(
                        passing, saturation, saturation_index
                    )
                checked += 1
        assert checked, "workload never produced a blocking atom"
