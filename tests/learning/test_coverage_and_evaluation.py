"""Tests for coverage engines, metrics, and cross-validation."""

import pytest

from repro.database.instance import DatabaseInstance
from repro.database.schema import RelationSchema, Schema
from repro.learning.bottom_clause import BottomClauseConfig
from repro.learning.coverage import QueryCoverageEngine, SubsumptionCoverageEngine
from repro.learning.evaluation import (
    CrossValidationReport,
    EvaluationResult,
    cross_validate,
    evaluate_definition,
)
from repro.learning.examples import Example, ExampleSet
from repro.logic.clauses import HornDefinition
from repro.logic.parser import parse_clause


@pytest.fixture
def coauthor_instance(backend: str) -> DatabaseInstance:
    """The Example 1.1-style co-authorship instance, on every backend."""
    schema = Schema(
        [
            RelationSchema("publication", ["title", "person"]),
            RelationSchema("professor", ["person"]),
        ],
        name="coauthors",
    )
    instance = DatabaseInstance(schema, backend=backend)
    instance.add_tuples(
        "publication",
        [
            ("t1", "s1"), ("t1", "p1"),
            ("t2", "s2"), ("t2", "p2"),
            ("t3", "p1"), ("t3", "p2"),
            ("t4", "s3"),
        ],
    )
    instance.add_tuples("professor", [("p1",), ("p2",)])
    return instance


ADVISED_CLAUSE = parse_clause(
    "advisedBy(x, y) :- publication(t, x), publication(t, y), professor(y)."
)


def example_set() -> ExampleSet:
    return ExampleSet(
        "advisedBy",
        [("s1", "p1"), ("s2", "p2")],
        [("s3", "p1"), ("s1", "p2"), ("s2", "p1")],
    )


class TestQueryCoverageEngine:
    def test_covers_positive_examples(self, coauthor_instance):
        engine = QueryCoverageEngine(coauthor_instance)
        assert engine.covers(ADVISED_CLAUSE, Example("advisedBy", ("s1", "p1"), True))
        assert not engine.covers(ADVISED_CLAUSE, Example("advisedBy", ("s3", "p1"), False))

    def test_evaluate_counts(self, coauthor_instance):
        engine = QueryCoverageEngine(coauthor_instance)
        examples = example_set()
        result = engine.evaluate(ADVISED_CLAUSE, examples.positives, examples.negatives)
        assert result.positives_covered == 2
        assert result.negatives_covered == 0
        assert result.precision() == 1.0
        assert result.coverage_score() == 2


class TestSubsumptionCoverageEngine:
    def test_agrees_with_query_engine_on_positives(self, coauthor_instance):
        engine = SubsumptionCoverageEngine(
            coauthor_instance, BottomClauseConfig(max_depth=2)
        )
        assert engine.covers(ADVISED_CLAUSE, Example("advisedBy", ("s1", "p1"), True))
        assert not engine.covers(ADVISED_CLAUSE, Example("advisedBy", ("s3", "p1"), False))

    def test_coverage_cache_hits(self, coauthor_instance):
        engine = SubsumptionCoverageEngine(coauthor_instance)
        example = Example("advisedBy", ("s1", "p1"), True)
        engine.covers(ADVISED_CLAUSE, example)
        performed = engine.coverage_tests_performed
        engine.covers(ADVISED_CLAUSE, example)
        assert engine.coverage_tests_performed == performed
        assert engine.cache_hits >= 1

    def test_saturations_are_cached(self, coauthor_instance):
        engine = SubsumptionCoverageEngine(coauthor_instance)
        example = Example("advisedBy", ("s1", "p1"), True)
        assert engine.saturation(example) is engine.saturation(example)
        assert engine.saturation_index(example) is engine.saturation_index(example)

    def test_parallel_and_sequential_agree(self, coauthor_instance):
        examples = example_set()
        sequential = SubsumptionCoverageEngine(coauthor_instance, threads=1)
        parallel = SubsumptionCoverageEngine(coauthor_instance, threads=4)
        all_examples = examples.all_examples()
        assert [e.values for e in sequential.covered_examples(ADVISED_CLAUSE, all_examples)] == [
            e.values for e in parallel.covered_examples(ADVISED_CLAUSE, all_examples)
        ]

    def test_mark_generalization_covers_seeds_cache(self, coauthor_instance):
        engine = SubsumptionCoverageEngine(coauthor_instance)
        example = Example("advisedBy", ("s1", "p1"), True)
        general = parse_clause("advisedBy(x, y) :- publication(t, x).")
        engine.mark_generalization_covers(general, [example])
        performed = engine.coverage_tests_performed
        assert engine.covers(general, example)
        assert engine.coverage_tests_performed == performed


class TestEvaluation:
    def test_evaluate_definition_metrics(self, coauthor_instance):
        definition = HornDefinition("advisedBy", [ADVISED_CLAUSE])
        result = evaluate_definition(definition, coauthor_instance, example_set())
        assert result.precision == 1.0
        assert result.recall == 1.0
        assert result.f1 == 1.0

    def test_empty_definition_scores_zero(self, coauthor_instance):
        result = evaluate_definition(
            HornDefinition("advisedBy"), coauthor_instance, example_set()
        )
        assert result.precision == 0.0
        assert result.recall == 0.0
        assert result.f1 == 0.0

    def test_partial_coverage(self, coauthor_instance):
        overly_general = HornDefinition(
            "advisedBy", [parse_clause("advisedBy(x, y) :- publication(t, x), professor(y).")]
        )
        result = evaluate_definition(overly_general, coauthor_instance, example_set())
        assert result.recall == 1.0
        assert result.precision < 1.0

    def test_evaluation_result_counts(self):
        result = EvaluationResult(true_positives=3, false_positives=1, false_negatives=2)
        assert result.precision == pytest.approx(0.75)
        assert result.recall == pytest.approx(0.6)
        assert 0 < result.f1 < 1


class _ConstantLearner:
    """A fake learner returning a fixed definition, for cross_validate tests."""

    def __init__(self, definition: HornDefinition):
        self.definition = definition

    def learn(self, instance, examples) -> HornDefinition:
        return self.definition


class TestCrossValidation:
    def test_cross_validate_averages_folds(self, coauthor_instance):
        definition = HornDefinition("advisedBy", [ADVISED_CLAUSE])
        report = cross_validate(
            lambda: _ConstantLearner(definition),
            coauthor_instance,
            example_set(),
            folds=2,
            seed=0,
        )
        assert isinstance(report, CrossValidationReport)
        assert report.precision == 1.0
        assert report.recall == 1.0
        assert len(report.outcomes) == 2
        assert report.mean_learn_seconds >= 0.0
