"""Batched candidate scoring: order, determinism, and compiled-path parity.

The batch API's contract is that results come back in input order and are
identical for every ``parallelism`` value and every backend — parallelism
may only change wall-clock time, never which examples a clause covers.
"""

import pytest

from repro.castor.bottom_clause import CastorBottomClauseBuilder, CastorBottomClauseConfig
from repro.database.sqlite_backend import SaturationStore
from repro.learning.coverage import (
    BatchCoverageEngine,
    CoverageBatch,
    QueryCoverageEngine,
    SubsumptionCoverageEngine,
    make_coverage_engine,
)
from repro.learning.examples import Example


@pytest.fixture(scope="module")
def workload(uwcse_bundle):
    """Candidate clauses + examples shared by the batch tests."""
    variant = uwcse_bundle.variant_names[0]
    instance = uwcse_bundle.instance(variant)
    builder = CastorBottomClauseBuilder(
        instance,
        config=CastorBottomClauseConfig(
            max_depth=2, max_distinct_variables=10, max_total_literals=20
        ),
    )
    clauses = [builder.build(e) for e in uwcse_bundle.examples.positives[:6]]
    clauses = [c for c in clauses if c.body]
    assert clauses, "workload produced no candidate clauses"
    return instance, clauses, uwcse_bundle.examples


def _value_sets(per_clause_lists):
    return [frozenset(e.values for e in covered) for covered in per_clause_lists]


class TestBatchDeterminism:
    def test_results_in_input_order_and_parallelism_invariant(self, workload):
        """Batched scoring is input-ordered and identical for p=1 vs p=4."""
        instance, clauses, examples = workload
        all_examples = examples.all_examples()
        for backend in ("memory", "sqlite", "sqlite-pooled"):
            converted = instance.with_backend(backend)
            engine = QueryCoverageEngine(converted)
            sequential = [
                frozenset(e.values for e in engine.covered_examples(c, all_examples))
                for c in clauses
            ]
            per_parallelism = {}
            for parallelism in (1, 4):
                batch = BatchCoverageEngine(
                    QueryCoverageEngine(converted), parallelism=parallelism
                )
                got = _value_sets(batch.covered_examples_batch(clauses, all_examples))
                assert got == sequential, (backend, parallelism)
                per_parallelism[parallelism] = got
            assert per_parallelism[1] == per_parallelism[4], backend

    def test_evaluate_batch_matches_per_clause_evaluate(self, workload):
        instance, clauses, examples = workload
        engine = QueryCoverageEngine(instance.with_backend("sqlite"))
        batch = BatchCoverageEngine(engine, parallelism=2)
        results = batch.evaluate_batch(clauses, examples.positives, examples.negatives)
        assert len(results) == len(clauses)
        for clause, result in zip(clauses, results):
            single = engine.evaluate(clause, examples.positives, examples.negatives)
            assert result.positives_covered == single.positives_covered
            assert result.negatives_covered == single.negatives_covered

    def test_subsumption_batch_parallelism_invariant(self, workload):
        instance, clauses, examples = workload
        all_examples = examples.all_examples()
        outcomes = {}
        for parallelism in (1, 4):
            engine = SubsumptionCoverageEngine(instance, compiled=True)
            batch = BatchCoverageEngine(engine, parallelism=parallelism)
            outcomes[parallelism] = _value_sets(
                batch.covered_examples_batch(clauses, all_examples)
            )
        assert outcomes[1] == outcomes[4]

    def test_coverage_batch_run(self, workload):
        instance, clauses, examples = workload
        batch = CoverageBatch(clauses, examples.positives, examples.negatives)
        assert len(batch) == len(clauses)
        engine = BatchCoverageEngine(QueryCoverageEngine(instance), parallelism=2)
        via_run = engine.run(batch)
        via_evaluate = engine.evaluate_batch(
            clauses, examples.positives, examples.negatives
        )
        assert [(r.positives_covered, r.negatives_covered) for r in via_run] == [
            (r.positives_covered, r.negatives_covered) for r in via_evaluate
        ]

    def test_duplicate_clauses_get_duplicate_results(self, workload):
        instance, clauses, examples = workload
        all_examples = examples.all_examples()
        batch = BatchCoverageEngine(
            QueryCoverageEngine(instance.with_backend("sqlite-pooled")), parallelism=3
        )
        doubled = [clauses[0], clauses[0], clauses[0]]
        results = _value_sets(batch.covered_examples_batch(doubled, all_examples))
        assert results[0] == results[1] == results[2]


class TestCompiledSubsumptionParity:
    def test_compiled_agrees_with_python_engine(self, workload):
        instance, clauses, examples = workload
        all_examples = examples.all_examples()
        python_engine = make_coverage_engine(instance, strategy="subsumption-python")
        compiled_engine = make_coverage_engine(instance, strategy="subsumption-compiled")
        for clause in clauses:
            python_covered = {
                e.values for e in python_engine.covered_examples(clause, all_examples)
            }
            compiled_covered = {
                e.values for e in compiled_engine.covered_examples(clause, all_examples)
            }
            assert python_covered == compiled_covered
        # One store query per *distinct* clause: a repeated clause is served
        # wholly from the coverage cache without touching SQL.
        assert compiled_engine.compiled_statements >= len(set(clauses))

    def test_compiled_default_follows_backend(self, workload):
        instance, _, _ = workload
        assert not SubsumptionCoverageEngine(instance).compiled_enabled  # memory
        assert SubsumptionCoverageEngine(
            instance.with_backend("sqlite")
        ).compiled_enabled
        assert SubsumptionCoverageEngine(
            instance.with_backend("sqlite-pooled")
        ).compiled_enabled

    def test_shared_store_deduplicates_examples(self, workload):
        instance, clauses, examples = workload
        all_examples = examples.all_examples()
        store = SaturationStore()
        first = SubsumptionCoverageEngine(
            instance, compiled=True, saturation_store=store
        )
        first.covered_examples(clauses[0], all_examples)
        size_after_first = len(store)
        assert size_after_first == len(set(all_examples))
        second = SubsumptionCoverageEngine(
            instance, compiled=True, saturation_store=store
        )
        covered = second.covered_examples(clauses[0], all_examples)
        assert len(store) == size_after_first  # re-added examples deduplicate
        assert {e.values for e in covered} == {
            e.values for e in first.covered_examples(clauses[0], all_examples)
        }

    def test_unstorable_examples_fall_back_to_python(self, simple_instance):
        """Examples the store rejects are still answered (via the Python path)."""
        engine = SubsumptionCoverageEngine(simple_instance, compiled=True)
        examples = [
            Example("r1", ("a1", "b1"), True),
            Example("r1", (("tuple", "value"), "b1"), False),  # unstorable head
            Example("r1", ("a2", "b2"), True),
            Example("r1", ("a3", "b3"), True),
        ]
        from repro.logic.parser import parse_clause

        clause = parse_clause("r1(x, y) :- r1(x, y).")
        covered = engine.covered_examples(clause, examples)
        assert [e.values for e in covered] == [
            ("a1", "b1"),
            ("a2", "b2"),
            ("a3", "b3"),
        ]
        assert examples[1] in engine._compiled_failed

    def test_make_coverage_engine_strategies(self, workload):
        instance, _, _ = workload
        assert make_coverage_engine(instance, strategy="subsumption-compiled").compiled_enabled
        assert not make_coverage_engine(instance, strategy="subsumption-python").compiled_enabled
        with pytest.raises(ValueError):
            make_coverage_engine(instance, strategy="subsumption-sql")
