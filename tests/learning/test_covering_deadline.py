"""Regression tests for the covering loop's ``max_seconds`` soft deadline.

A timed-out run must return the clauses accepted so far — never raise, and
never discard already-accepted clauses.  The deadline also has to actually
reach the covering loop from the learner-level parameter objects.
"""

import time

from repro.foil.foil import FoilLearner, FoilParameters
from repro.learning.covering import CoveringLearner, CoveringParameters
from repro.learning.examples import Example, ExampleSet
from repro.logic.parser import parse_clause
from repro.progolem.progolem import ProGolemParameters


class _SlowClauseLearner:
    """Learns one fixed clause per call, burning wall-clock time each round."""

    def __init__(self, clause, delay_seconds):
        self.clause = clause
        self.delay_seconds = delay_seconds
        self.calls = 0

    def learn_clause(self, instance, uncovered_positives, negatives):
        self.calls += 1
        time.sleep(self.delay_seconds)
        return self.clause


def _example_set():
    examples = ExampleSet("q")
    examples.positives = [Example("q", (f"a{i}",), True) for i in range(6)]
    examples.negatives = []
    return examples


def _covering(clause_learner, covered_per_round, max_seconds):
    # Each accepted clause "covers" a fixed chunk of the uncovered positives,
    # so the loop would need several rounds to finish without a deadline.
    def coverage_fn(clause, uncovered):
        return list(uncovered[:covered_per_round])

    return CoveringLearner(
        clause_learner,
        coverage_fn=coverage_fn,
        precision_fn=lambda clause, pos, neg: 1.0,
        parameters=CoveringParameters(
            min_positives=1, max_seconds=max_seconds, parallelism=2
        ),
    )


class TestCoveringDeadline:
    def test_timed_out_run_returns_accepted_clauses(self, simple_instance):
        clause = parse_clause("q(x) :- r1(x, y).")
        learner = _SlowClauseLearner(clause, delay_seconds=0.05)
        covering = _covering(learner, covered_per_round=2, max_seconds=0.01)
        definition = covering.learn(simple_instance, _example_set())
        # The first round always runs (the deadline is checked at the top of
        # each iteration); the timeout then stops the loop with the clauses
        # accepted so far instead of raising or discarding them.
        assert learner.calls == 1
        assert len(definition) == 1
        assert list(definition) == [clause]

    def test_zero_deadline_returns_empty_definition(self, simple_instance):
        clause = parse_clause("q(x) :- r1(x, y).")
        learner = _SlowClauseLearner(clause, delay_seconds=0.0)
        covering = _covering(learner, covered_per_round=2, max_seconds=0.0)
        definition = covering.learn(simple_instance, _example_set())
        assert learner.calls == 0
        assert len(definition) == 0

    def test_no_deadline_runs_to_completion(self, simple_instance):
        clause = parse_clause("q(x) :- r1(x, y).")
        learner = _SlowClauseLearner(clause, delay_seconds=0.0)
        covering = _covering(learner, covered_per_round=2, max_seconds=None)
        covering.learn(simple_instance, _example_set())
        assert learner.calls == 3  # 6 positives / 2 covered per round

    def test_learner_parameters_thread_max_seconds(self):
        assert FoilParameters(max_seconds=1.5).max_seconds == 1.5
        assert ProGolemParameters(max_seconds=2.0).max_seconds == 2.0
        assert FoilParameters().max_seconds is None

    def test_foil_with_zero_deadline_does_not_raise(self, uwcse_bundle):
        variant = uwcse_bundle.variant_names[0]
        schema = uwcse_bundle.schema(variant)
        instance = uwcse_bundle.instance(variant)
        learner = FoilLearner(schema, FoilParameters(max_seconds=0.0))
        definition = learner.learn(instance, uwcse_bundle.examples)
        assert len(definition) == 0
