"""Incremental updates: Delta semantics, transactions, and delta-maintained
saturation/coverage state vs a cold rebuild.

The contract under test (docs/updates.md):

* a :class:`Delta` replayed onto warm engines/stores leaves them in a state
  **indistinguishable** from throwing everything away and rebuilding from
  the post-update data — ``SaturationStore.contents()`` and coverage
  bitsets are compared exactly;
* invalidation is *targeted*: a delta only drops saturations whose
  footprint (head values + body constants) intersects the delta's touched
  values, so warm state for untouched examples survives;
* ``DatabaseInstance.transaction()`` coalesces mutations into one delta
  (one change notification), and replay semantics are set-based: adds are
  idempotent, removes of absent rows are no-ops.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.database import Delta, as_delta
from repro.database.instance import DatabaseInstance
from repro.database.schema import RelationSchema, Schema
from repro.database.sqlite_backend import SaturationStore
from repro.distributed.wire import JsonWireCodec
from repro.learning.bottom_clause import BottomClauseConfig
from repro.learning.coverage import SubsumptionCoverageEngine
from repro.learning.examples import Example
from repro.logic.parser import parse_clause


def tiny_schema() -> Schema:
    return Schema(
        [RelationSchema("r", ["a", "b"]), RelationSchema("s", ["a", "c"])],
        name="delta-tests",
    )


# --------------------------------------------------------------------- #
# Delta: the value type
# --------------------------------------------------------------------- #
class TestDelta:
    def test_normalization_and_accessors(self):
        delta = Delta([("add", "r", [("x", 1)]), ("remove", "s", [["y", 2]])])
        assert delta.ops == (
            ("add", "r", (("x", 1),)),
            ("remove", "s", (("y", 2),)),
        )
        assert delta.row_count == 2
        assert delta.touched_relations() == frozenset({"r", "s"})
        assert delta.touched_values() == frozenset({"x", 1, "y", 2})
        assert bool(delta) and not delta.is_empty
        assert not Delta()
        assert Delta([("add", "r", [])]).is_empty  # empty-row ops are dropped

    def test_invalid_ops_rejected(self):
        with pytest.raises(ValueError):
            Delta([("upsert", "r", [("x",)])])
        with pytest.raises(ValueError):
            Delta([("add", "", [("x",)])])
        with pytest.raises(ValueError):
            as_delta(42)

    def test_classmethods_then_and_coalesced(self):
        delta = Delta.add("r", [("x",), ("x",), ("y",)]).then(
            Delta.add("r", [("z",)])
        ) + Delta.remove("r", [("x",)])
        coalesced = delta.coalesced()
        # Adjacent same-op/same-relation runs merge, duplicate rows dedup.
        assert coalesced.ops == (
            ("add", "r", (("x",), ("y",), ("z",))),
            ("remove", "r", (("x",),)),
        )

    def test_as_delta_accepts_legacy_shapes(self):
        assert as_delta(("add", "r", (("x",),))).ops == (("add", "r", (("x",),)),)
        assert as_delta([("add", "r", (("x",),)), ("remove", "r", (("y",),))]).row_count == 2
        delta = Delta.add("r", [("x",)])
        assert as_delta(delta) is delta

    def test_equality_hash_pickle(self):
        import pickle  # repro: noqa[REP001] -- Deltas cross the trusted coordinator<->worker seam in pickle frames; this asserts they survive the round-trip

        a = Delta.add("r", [("x", 1)])
        b = Delta([("add", "r", (("x", 1),))])
        assert a == b and hash(a) == hash(b)
        assert pickle.loads(pickle.dumps(a)) == a

    def test_wire_roundtrip(self):
        codec = JsonWireCodec()
        delta = Delta([("add", "r", [("x", 1, 2.5, True)]), ("remove", "s", [("y",)])])
        kind, payload = codec.decode(
            codec.encode(("apply_delta", ("h", "old", "new", delta)))
        )
        assert kind == "apply_delta"
        assert payload[3] == delta


# --------------------------------------------------------------------- #
# Transactions on DatabaseInstance
# --------------------------------------------------------------------- #
class TestTransaction:
    def _instance(self, backend="memory"):
        return DatabaseInstance(tiny_schema(), backend=backend)

    def test_transaction_coalesces_into_one_delta(self):
        instance = self._instance()
        seen = []
        instance.subscribe_deltas(seen.append)
        with instance.transaction():
            instance.add_tuple("r", ("x", 1))
            instance.add_tuples("r", [("y", 2), ("y", 2)])
            instance.remove_tuple("r", ("x", 1))
        assert len(seen) == 1
        assert seen[0] == Delta(
            [("add", "r", (("x", 1), ("y", 2))), ("remove", "r", (("x", 1),))]
        )
        # Standalone mutations notify per-op.
        instance.add_tuple("s", ("x", "c"))
        assert seen[1] == Delta.add("s", [("x", "c")])

    def test_nested_transactions_fire_once_at_the_outermost(self):
        instance = self._instance()
        seen = []
        instance.subscribe_deltas(seen.append)
        with instance.transaction():
            instance.add_tuple("r", ("x", 1))
            with instance.transaction():
                instance.add_tuple("r", ("y", 2))
            assert seen == []
        assert len(seen) == 1 and seen[0].row_count == 2

    def test_partial_transaction_still_commits(self):
        """transaction() is a coalescing scope, NOT rollback: on exception
        the already-applied mutations stay and their delta still fires —
        anything else would silently diverge caches from the data."""
        instance = self._instance()
        seen = []
        instance.subscribe_deltas(seen.append)
        with pytest.raises(RuntimeError):
            with instance.transaction():
                instance.add_tuple("r", ("x", 1))
                raise RuntimeError("boom")
        assert ("x", 1) in instance.relation("r")
        assert seen == [Delta.add("r", [("x", 1)])]

    def test_apply_delta_replays_with_set_semantics(self):
        instance = self._instance()
        instance.add_tuple("r", ("x", 1))
        delta = Delta(
            [
                ("add", "r", (("x", 1), ("y", 2))),  # ("x", 1) already present
                ("remove", "r", (("ghost", 9),)),  # absent: ignored
            ]
        )
        instance.apply_delta(delta)
        assert instance.relation("r").rows == {("x", 1), ("y", 2)}
        with pytest.raises(TypeError):
            instance.apply_delta([("add", "r", (("x", 1),))])

    def test_remove_tuple_missing_ok(self):
        instance = self._instance()
        with pytest.raises(KeyError):
            instance.remove_tuple("r", ("nope", 0))
        instance.remove_tuple("r", ("nope", 0), missing_ok=True)

    def test_unsubscribe(self):
        instance = self._instance()
        seen = []
        unsubscribe = instance.subscribe_deltas(seen.append)
        instance.add_tuple("r", ("x", 1))
        unsubscribe()
        instance.add_tuple("r", ("y", 2))
        assert len(seen) == 1

    def test_direct_mutation_on_managed_instance_warns_once(self):
        from repro.database import backend as backend_module

        instance = self._instance()
        instance.mark_managed()
        backend_module._WARNED = {
            m for m in backend_module._WARNED if "prepared instance" not in m
        }
        with pytest.warns(RuntimeWarning, match="transaction"):
            instance.add_tuple("r", ("x", 1))
        # Transactional mutations are the blessed path: no warning.
        with instance.transaction():
            instance.add_tuple("r", ("y", 2))


# --------------------------------------------------------------------- #
# Targeted invalidation: warm state survives unrelated deltas
# --------------------------------------------------------------------- #
class TestWarmStoreSurvival:
    def _engine(self, instance, store):
        return SubsumptionCoverageEngine(
            instance,
            BottomClauseConfig(max_depth=2),
            compiled=True,
            saturation_store=store,
        )

    def test_delta_keeps_untouched_examples_warm(self):
        """Regression (the PR's acceptance property): a delta to relation r
        touching only example e1's footprint must NOT evict e2's stored
        saturation — before this API a mutation invalidated wholesale."""
        instance = DatabaseInstance(tiny_schema(), backend="sqlite")
        instance.add_tuples("r", [("x1", "b1")])
        instance.add_tuples("s", [("x2", "c2")])
        e1 = Example("q", ("x1",), True)
        e2 = Example("q", ("x2",), True)

        store = SaturationStore()
        engine = self._engine(instance, store)
        engine.materialize([e1, e2])
        warm_id_e2 = store.existing_id("q", e2.values)
        assert warm_id_e2 is not None

        delta = Delta.add("r", [("x1", "b9")])
        instance.apply_delta(delta)
        invalidated = engine.apply_delta(delta)
        assert invalidated == {e1}
        # e2's materialization survived untouched — same stored row id.
        assert store.existing_id("q", e2.values) == warm_id_e2
        assert store.existing_id("q", e1.values) is None

        # Rebuilding only the dropped example converges on the cold state.
        engine.materialize([e1, e2])
        cold_store = SaturationStore()
        cold = self._engine(instance, cold_store)
        cold.materialize([e1, e2])
        assert store.contents() == cold_store.contents()

    def test_unrelated_delta_invalidates_nothing(self):
        instance = DatabaseInstance(tiny_schema(), backend="sqlite")
        instance.add_tuples("r", [("x1", "b1")])
        e1 = Example("q", ("x1",), True)
        store = SaturationStore()
        engine = self._engine(instance, store)
        engine.materialize([e1])
        warm_id = store.existing_id("q", e1.values)

        delta = Delta.add("s", [("z8", "z9")])
        instance.apply_delta(delta)
        assert engine.apply_delta(delta) == set()
        assert store.existing_id("q", e1.values) == warm_id


# --------------------------------------------------------------------- #
# Property: delta maintenance == cold rebuild (the parity invariant)
# --------------------------------------------------------------------- #
VALUES = st.sampled_from(["u", "v", "w", 0, 1])
ROW_R = st.tuples(VALUES, VALUES)
ROW_S = st.tuples(VALUES, VALUES)
RELATION_ROWS = {"r": ROW_R, "s": ROW_S}
OPS = st.lists(
    st.tuples(
        st.sampled_from(["add", "remove"]),
        st.sampled_from(["r", "s"]),
        st.lists(ROW_R, min_size=1, max_size=3),
    ),
    max_size=6,
)
EXAMPLES = [Example("q", (value,), True) for value in ["u", "v", "w", 0, 1]]
CLAUSES = [
    parse_clause("q(x) :- r(x, y)."),
    parse_clause("q(x) :- r(x, y), s(x, z)."),
    parse_clause("q(x) :- s(x, z)."),
]


def _coverage_bits(engine):
    return [
        frozenset(engine.covered_examples(clause, EXAMPLES)) for clause in CLAUSES
    ]


@pytest.mark.parametrize("backend", ["memory", "sqlite"])
@settings(max_examples=25, deadline=None)
@given(
    initial_r=st.lists(ROW_R, max_size=5),
    initial_s=st.lists(ROW_S, max_size=5),
    rounds=st.lists(OPS, min_size=1, max_size=3),
)
def test_delta_maintenance_matches_cold_rebuild(backend, initial_r, initial_s, rounds):
    """Random insert/retract interleavings applied as deltas leave store
    contents and coverage bitsets byte-identical to a cold rebuild."""
    warm = DatabaseInstance(tiny_schema(), backend=backend)
    with warm.transaction():
        warm.add_tuples("r", initial_r)
        warm.add_tuples("s", initial_s)
    warm_store = SaturationStore()
    warm_engine = SubsumptionCoverageEngine(
        warm,
        BottomClauseConfig(max_depth=2),
        compiled=True,
        saturation_store=warm_store,
    )
    warm_engine.materialize(EXAMPLES)
    _coverage_bits(warm_engine)  # populate coverage caches, then patch them

    for ops in rounds:
        delta = Delta(ops).coalesced()
        warm.apply_delta(delta)
        warm_engine.apply_delta(delta)
        warm_engine.materialize(EXAMPLES)

        cold = DatabaseInstance(tiny_schema(), backend=backend)
        with cold.transaction():
            for name in ("r", "s"):
                cold.add_tuples(name, sorted(warm.relation(name).rows, key=repr))
        cold_store = SaturationStore()
        cold_engine = SubsumptionCoverageEngine(
            cold,
            BottomClauseConfig(max_depth=2),
            compiled=True,
            saturation_store=cold_store,
        )
        cold_engine.materialize(EXAMPLES)

        assert warm.relation("r").rows == cold.relation("r").rows
        assert warm_store.contents() == cold_store.contents()
        assert _coverage_bits(warm_engine) == _coverage_bits(cold_engine)
