"""Saturation prefetch: capability gating, failure fallback, result parity.

The prefetcher only moves :meth:`materialize` onto a worker thread — it must
never change what gets learned, must refuse to run on backends that cannot
tolerate concurrent reads (single-connection SQLite), and must fall back to
a synchronous materialization when the background thread fails.
"""

import threading

import pytest

from repro.database import DatabaseInstance, RelationSchema, Schema
from repro.learning.coverage import SubsumptionCoverageEngine
from repro.learning.examples import ExampleSet
from repro.learning.prefetch import SaturationPrefetcher, backend_supports_prefetch
from repro.progolem.progolem import (
    ProGolemClauseLearner,
    ProGolemLearner,
    ProGolemParameters,
)


@pytest.fixture(scope="module")
def advised_problem():
    """The miniature UW-CSE problem every learner solves in seconds."""
    schema = Schema(
        [
            RelationSchema("student", ["stud"]),
            RelationSchema("professor", ["prof", "position"]),
            RelationSchema("publication", ["title", "person"]),
        ],
        [],
        [],
        name="tiny",
    )
    instance = DatabaseInstance(schema)
    for index in range(6):
        instance.add_tuple("student", (f"s{index}",))
    for index in range(4):
        position = "faculty" if index < 3 else "emeritus"
        instance.add_tuple("professor", (f"p{index}", position))
    for title, student, professor in [
        ("t0", "s0", "p0"),
        ("t1", "s1", "p1"),
        ("t2", "s2", "p2"),
        ("t3", "s3", "p0"),
    ]:
        instance.add_tuple("publication", (title, student))
        instance.add_tuple("publication", (title, professor))
    instance.add_tuple("publication", ("t4", "s4"))
    instance.add_tuple("publication", ("t5", "p3"))
    examples = ExampleSet(
        "advised",
        [("s0", "p0"), ("s1", "p1"), ("s2", "p2"), ("s3", "p0")],
        [
            ("s4", "p0"), ("s5", "p1"), ("s0", "p1"), ("s1", "p0"),
            ("s2", "p3"), ("s3", "p1"), ("s4", "p2"), ("s5", "p3"),
        ],
    )
    return schema, instance, examples


class TestCapabilityGating:
    def test_backend_flags(self, advised_problem):
        _, instance, _ = advised_problem
        assert backend_supports_prefetch(instance)  # memory
        assert not backend_supports_prefetch(instance.with_backend("sqlite"))
        assert backend_supports_prefetch(instance.with_backend("sqlite-pooled"))

    def test_prefetch_never_forced_onto_unsafe_backend(self, advised_problem):
        schema, instance, _ = advised_problem
        sqlite_instance = instance.with_backend("sqlite")

        def learner_with(prefetch):
            parameters = ProGolemParameters(prefetch=prefetch)
            coverage = SubsumptionCoverageEngine(sqlite_instance)
            return ProGolemClauseLearner(schema, parameters, coverage)

        # Auto (None) and even an explicit True must not override the
        # backend's capability flag; False always wins.
        assert not learner_with(None)._prefetch_enabled(sqlite_instance)
        assert not learner_with(True)._prefetch_enabled(sqlite_instance)
        assert not learner_with(False)._prefetch_enabled(sqlite_instance)

    def test_prefetch_auto_on_safe_backend(self, advised_problem):
        schema, instance, _ = advised_problem
        coverage = SubsumptionCoverageEngine(instance)
        learner = ProGolemClauseLearner(schema, ProGolemParameters(), coverage)
        assert learner._prefetch_enabled(instance)
        off = ProGolemClauseLearner(
            schema, ProGolemParameters(prefetch=False), coverage
        )
        assert not off._prefetch_enabled(instance)


class TestSaturationPrefetcher:
    def test_background_materialization_fills_caches(self, advised_problem):
        _, instance, examples = advised_problem
        coverage = SubsumptionCoverageEngine(instance)
        generation = examples.all_examples()
        prefetcher = SaturationPrefetcher(coverage, generation).start()
        prefetcher.wait()
        assert prefetcher.error is None
        for example in generation:
            assert example in coverage._saturation_cache

    def test_wait_retries_synchronously_after_background_failure(
        self, advised_problem
    ):
        _, instance, examples = advised_problem
        generation = examples.all_examples()

        class FlakyCoverage:
            """materialize fails on the prefetch thread, succeeds on retry."""

            def __init__(self):
                self.calls = []

            def materialize(self, batch):
                self.calls.append(threading.current_thread().name)
                if len(self.calls) == 1:
                    raise RuntimeError("simulated backend hiccup")

        coverage = FlakyCoverage()
        prefetcher = SaturationPrefetcher(coverage, generation).start()
        prefetcher.wait()  # must not raise: the retry ran inline
        assert len(coverage.calls) == 2
        assert coverage.calls[0] == "saturation-prefetch"
        assert coverage.calls[1] != "saturation-prefetch"
        assert prefetcher.error is None

    def test_persistent_failure_surfaces_to_caller(self, advised_problem):
        _, _, examples = advised_problem

        class BrokenCoverage:
            def materialize(self, batch):
                raise RuntimeError("permanently broken")

        prefetcher = SaturationPrefetcher(
            BrokenCoverage(), examples.all_examples()
        ).start()
        with pytest.raises(RuntimeError, match="permanently broken"):
            prefetcher.wait()


class TestLearnerParity:
    def test_prefetch_on_off_learn_identical_definitions(self, advised_problem):
        schema, instance, examples = advised_problem

        def learn(prefetch):
            learner = ProGolemLearner(
                schema,
                ProGolemParameters(seed=0, max_clauses=5, prefetch=prefetch),
            )
            return learner.learn(instance, examples)

        overlapped = learn(None)  # auto → on (memory backend)
        sequential = learn(False)
        assert list(overlapped) == list(sequential)
        assert list(overlapped), "the tiny problem must be learnable"
