"""Tests for standard (depth-limited) bottom-clause construction."""

import pytest

from repro.database.instance import DatabaseInstance
from repro.database.schema import RelationSchema, Schema
from repro.learning.bottom_clause import (
    BottomClauseBuilder,
    BottomClauseConfig,
    build_bottom_clause,
    build_saturation,
)
from repro.learning.examples import Example


@pytest.fixture
def department() -> DatabaseInstance:
    schema = Schema(
        [
            RelationSchema("student", ["stud"]),
            RelationSchema("inPhase", ["stud", "phase"]),
            RelationSchema("publication", ["title", "person"]),
        ],
        name="department",
    )
    instance = DatabaseInstance(schema)
    instance.add_tuple("student", ("s1",))
    instance.add_tuple("inPhase", ("s1", "post_quals"))
    instance.add_tuples("publication", [("t1", "s1"), ("t1", "p1"), ("t2", "p1")])
    return instance


class TestBottomClause:
    def test_head_uses_variables_for_example_values(self, department):
        example = Example("advisedBy", ("s1", "p1"), True)
        clause = build_bottom_clause(department, example)
        assert clause.head.predicate == "advisedBy"
        assert not clause.head.is_ground()

    def test_body_contains_tuples_mentioning_example_constants(self, department):
        example = Example("advisedBy", ("s1", "p1"), True)
        clause = build_bottom_clause(department, example, BottomClauseConfig(max_depth=1))
        predicates = {atom.predicate for atom in clause.body}
        assert predicates == {"student", "inPhase", "publication"}

    def test_constant_variable_mapping_is_consistent(self, department):
        example = Example("advisedBy", ("s1", "p1"), True)
        clause = build_bottom_clause(department, example, BottomClauseConfig(max_depth=2))
        # The variable standing for s1 in the head must be reused in student/inPhase.
        head_var_s1 = clause.head.terms[0]
        student_literals = [a for a in clause.body if a.predicate == "student"]
        assert student_literals and student_literals[0].terms[0] == head_var_s1

    def test_depth_limit_controls_expansion(self, department):
        example = Example("advisedBy", ("s1", "p1"), True)
        shallow = build_bottom_clause(department, example, BottomClauseConfig(max_depth=1))
        deep = build_bottom_clause(department, example, BottomClauseConfig(max_depth=3))
        assert len(deep.body) >= len(shallow.body)
        # Depth 1 must not contain the t2 publication (reached only through t1/p1 chain).
        shallow_titles = {
            atom.terms
            for atom in shallow.body
            if atom.predicate == "publication"
        }
        assert len(shallow_titles) <= 3

    def test_saturation_is_ground(self, department):
        example = Example("advisedBy", ("s1", "p1"), True)
        saturation = build_saturation(department, example)
        assert saturation.head.is_ground()
        assert all(atom.is_ground() for atom in saturation.body)

    def test_max_total_literals_cap(self, department):
        example = Example("advisedBy", ("s1", "p1"), True)
        clause = build_bottom_clause(
            department, example, BottomClauseConfig(max_depth=3, max_total_literals=2)
        )
        assert len(clause.body) <= 2

    def test_variable_budget_stops_expansion(self, department):
        example = Example("advisedBy", ("s1", "p1"), True)
        config = BottomClauseConfig(max_depth=None, max_distinct_variables=2)
        clause = build_bottom_clause(department, example, config)
        # The budget is checked between iterations, so the clause may exceed it
        # slightly but must stop long before exhausting the database.
        assert len(clause.variables()) >= 2

    def test_unknown_example_constant_gives_empty_body(self, department):
        example = Example("advisedBy", ("ghost", "nobody"), True)
        clause = build_bottom_clause(department, example)
        assert clause.body == ()

    def test_builder_reusable_across_examples(self, department):
        builder = BottomClauseBuilder(department)
        first = builder.build(Example("advisedBy", ("s1", "p1"), True))
        second = builder.build(Example("advisedBy", ("s1", "p1"), True))
        assert first == second
