"""Saturation construction on the backend seam: parity + batching.

The acceptance property of the saturation capability: bottom clauses are
**byte-identical** whichever lookup path produced them — compiled
set-at-a-time frontier queries (``neighbors_of_batch``) vs per-constant
Python lookups — on every backend, one example at a time or a whole
generation per call.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.castor.bottom_clause import CastorBottomClauseBuilder, CastorBottomClauseConfig
from repro.database.instance import DatabaseInstance
from repro.database.schema import RelationSchema, Schema
from repro.database.sqlite_backend import SaturationStore
from repro.learning.bottom_clause import (
    BatchSaturationEngine,
    BottomClauseBuilder,
    BottomClauseConfig,
    SaturationBatch,
    compute_theory_constants,
)
from repro.learning.coverage import SubsumptionCoverageEngine

BACKENDS = ("memory", "sqlite", "sqlite-pooled")


def clause_strings(clauses):
    return [str(clause) for clause in clauses]


@pytest.fixture(scope="module")
def uwcse_workload(uwcse_bundle):
    instance = uwcse_bundle.instance(uwcse_bundle.variant_names[0])
    return instance, uwcse_bundle.examples.positives


# --------------------------------------------------------------------- #
# The backend capability itself
# --------------------------------------------------------------------- #
def test_neighbors_of_batch_matches_per_value_lookups(uwcse_workload):
    instance, _examples = uwcse_workload
    values = sorted(
        {v for relation in instance.relations() for row in relation for v in row},
        key=str,
    )[:30] + ["no-such-value"]
    reference = None
    for backend in BACKENDS:
        converted = instance.with_backend(backend)
        assert converted.backend.supports_saturation_queries
        batch = {
            value: sorted(found)
            for value, found in converted.neighbors_of_batch(values).items()
        }
        per_value = {
            value: sorted(converted.tuples_containing(value)) for value in values
        }
        assert batch == per_value, backend
        if reference is None:
            reference = batch
        else:
            assert batch == reference, backend


# --------------------------------------------------------------------- #
# Builder parity: compiled vs python lookups, batch vs one-at-a-time
# --------------------------------------------------------------------- #
@pytest.mark.parametrize("variablize", [False, True])
def test_builder_parity_across_backends_and_lookup_paths(uwcse_workload, variablize):
    instance, examples = uwcse_workload
    config = BottomClauseConfig(max_depth=3)
    reference = None
    for backend in BACKENDS:
        converted = instance.with_backend(backend)
        for compiled in (False, True):
            builder = BottomClauseBuilder(
                converted, config, use_compiled_lookups=compiled
            )
            single = [
                builder.build(e) if variablize else builder.build_ground(e)
                for e in examples
            ]
            batched = (
                builder.build_many(examples)
                if variablize
                else builder.build_ground_many(examples)
            )
            assert clause_strings(batched) == clause_strings(single), (
                backend,
                compiled,
            )
            if reference is None:
                reference = clause_strings(single)
            else:
                assert clause_strings(single) == reference, (backend, compiled)


def test_castor_builder_parity_across_backends_and_lookup_paths(uwcse_bundle):
    instance = uwcse_bundle.instance(uwcse_bundle.variant_names[0])
    examples = uwcse_bundle.examples.positives
    schema = uwcse_bundle.schema(uwcse_bundle.variant_names[0])
    config = CastorBottomClauseConfig()
    reference = None
    for backend in BACKENDS:
        converted = instance.with_backend(backend)
        for compiled in (False, True):
            builder = CastorBottomClauseBuilder(
                converted, schema, config, use_compiled_lookups=compiled
            )
            got = clause_strings(builder.build_ground_many(examples))
            assert got == clause_strings(
                [builder.build_ground(e) for e in examples]
            ), (backend, compiled)
            if reference is None:
                reference = got
            else:
                assert got == reference, (backend, compiled)


def test_theory_constants_identical_across_backends(uwcse_workload):
    instance, _examples = uwcse_workload
    reference = None
    for backend in BACKENDS:
        converted = instance.with_backend(backend)
        constants = compute_theory_constants(converted, threshold=12)
        if reference is None:
            reference = constants
        else:
            assert constants == reference, backend


# --------------------------------------------------------------------- #
# The batch engine
# --------------------------------------------------------------------- #
def test_batch_engine_is_parallelism_invariant(uwcse_workload):
    instance, examples = uwcse_workload
    builder = BottomClauseBuilder(instance, BottomClauseConfig(max_depth=3))
    reference = clause_strings(
        BatchSaturationEngine(builder, parallelism=1).build_ground_batch(examples)
    )
    for parallelism in (2, 3):
        engine = BatchSaturationEngine(builder, parallelism=parallelism)
        assert clause_strings(engine.build_ground_batch(examples)) == reference
    batch = SaturationBatch(examples, variablize=False)
    assert clause_strings(BatchSaturationEngine(builder).run(batch)) == reference


def test_materialize_into_matches_per_example_adds(uwcse_workload):
    instance, examples = uwcse_workload
    builder = BottomClauseBuilder(instance, BottomClauseConfig(max_depth=3))
    engine = BatchSaturationEngine(builder)

    batched_store = SaturationStore()
    ids = engine.materialize_into(batched_store, examples)
    assert set(ids) == set(examples)

    manual_store = SaturationStore()
    for example in examples:
        manual_store.add_example(
            example.target, example.values, builder.build_ground(example).body
        )
    assert batched_store.contents() == manual_store.contents()
    assert len(batched_store) == len(manual_store)


def test_coverage_engine_prepare_fills_cache_in_one_batch(uwcse_workload):
    instance, examples = uwcse_workload
    lazy = SubsumptionCoverageEngine(instance, BottomClauseConfig(max_depth=3))
    prepared = SubsumptionCoverageEngine(instance, BottomClauseConfig(max_depth=3))
    prepared.prepare(examples)
    assert set(prepared._saturation_cache) >= set(examples)
    for example in examples:
        assert str(prepared.saturation(example)) == str(lazy.saturation(example))


# --------------------------------------------------------------------- #
# Property: the capability agrees with brute force on random instances
# --------------------------------------------------------------------- #
VALUES = st.sampled_from(["a", "b", "c", 0, 1, 2])
R1_ROWS = st.lists(st.tuples(VALUES, VALUES), max_size=12)
R2_ROWS = st.lists(st.tuples(VALUES, VALUES, VALUES), max_size=12)


@settings(max_examples=40, deadline=None)
@given(r1=R1_ROWS, r2=R2_ROWS, frontier=st.lists(VALUES, min_size=1, max_size=6))
def test_neighbors_of_batch_matches_brute_force(r1, r2, frontier):
    schema = Schema(
        [RelationSchema("r1", ["a", "b"]), RelationSchema("r2", ["a", "b", "c"])],
        name="prop",
    )
    for backend in ("memory", "sqlite"):
        instance = DatabaseInstance(schema, backend=backend)
        instance.add_tuples("r1", r1)
        instance.add_tuples("r2", r2)
        got = instance.neighbors_of_batch(frontier)
        assert set(got) == set(frontier)
        for value in frontier:
            expected = {
                (name, tuple(row))
                for name, relation in (("r1", instance.relation("r1")),
                                       ("r2", instance.relation("r2")))
                for row in relation.rows
                if value in row
            }
            assert set(got[value]) == expected, (backend, value)


def test_shared_store_skips_reconstruction_in_later_engines(uwcse_workload):
    """An engine handed an already-warm shared store (later folds, the
    harness presaturation pass) claims stored saturations by key instead
    of rebuilding every clause."""
    instance, examples = uwcse_workload
    sqlite_instance = instance.with_backend("sqlite")
    store = SaturationStore()
    first = SubsumptionCoverageEngine(
        sqlite_instance, BottomClauseConfig(max_depth=3), saturation_store=store
    )
    first.materialize(examples)
    assert len(store) == len(set(examples))

    second = SubsumptionCoverageEngine(
        sqlite_instance, BottomClauseConfig(max_depth=3), saturation_store=store
    )
    second.materialize(examples)
    # Claimed by store key: ids assigned, but no saturation was rebuilt.
    assert set(second._compiled_ids) == set(examples)
    assert not second._saturation_cache
    assert second._compiled_ids == first._compiled_ids


def test_rebinding_engine_builder_rewires_the_batch_saturator(uwcse_bundle):
    """engine.builder = <other builder> must switch the batched prepare()
    path too — a stale saturator would cache clauses from the old builder."""
    instance = uwcse_bundle.instance(uwcse_bundle.variant_names[0])
    schema = uwcse_bundle.schema(uwcse_bundle.variant_names[0])
    examples = uwcse_bundle.examples.positives
    engine = SubsumptionCoverageEngine(instance, BottomClauseConfig(max_depth=3))
    # Populate caches under the original builder's semantics first; the
    # rebind must drop them, not serve mixed-builder saturations.
    engine.prepare(examples)
    assert engine._saturation_cache
    castor_builder = CastorBottomClauseBuilder(
        instance, schema, CastorBottomClauseConfig(max_depth=2)
    )
    engine.builder = castor_builder
    assert engine.saturator.builder is castor_builder
    assert not engine._saturation_cache
    engine.prepare(examples)
    for example in examples:
        assert str(engine.saturation(example)) == str(
            castor_builder.build_ground(example)
        )


def test_memory_tuples_containing_uses_the_backend_value_index(uwcse_workload):
    """The instance-level lookup must answer from the memory backend's
    cross-relation index, not the per-relation scan (the O(relations)
    hazard this PR removed) — results alone cannot tell the paths apart."""
    instance, _examples = uwcse_workload
    converted = instance.with_backend("memory")
    value = next(iter(converted.relations()[0].rows))[0]
    expected = converted.tuples_containing(value)

    calls = []
    original = converted.backend.neighbors_of

    def spy(v):
        calls.append(v)
        return original(v)

    converted.backend.neighbors_of = spy
    try:
        assert converted.tuples_containing(value) == expected
    finally:
        del converted.backend.neighbors_of
    assert calls == [value]
