"""Regression tests: CoverageResult edge cases and strategy agreement.

* ``precision()``/``coverage_score()`` on degenerate results (nothing
  covered, only negatives covered) — ``precision`` must not divide by zero.
* Subsumption coverage and query coverage must agree on the Example 1.1
  co-authorship clause over the UW-CSE schema variants (``original`` and
  ``4nf``), on both storage backends: the two strategies answer the same
  question ("does the clause cover the example?") through different
  machinery (θ-subsumption of saturations vs join evaluation).
"""

import pytest

from repro.learning.bottom_clause import BottomClauseConfig
from repro.learning.coverage import (
    CoverageResult,
    QueryCoverageEngine,
    SubsumptionCoverageEngine,
)
from repro.logic.parser import parse_clause


class TestCoverageResultEdgeCases:
    def test_zero_covered_precision_is_zero(self):
        result = CoverageResult(0, 0)
        assert result.precision() == 0.0
        assert result.coverage_score() == 0
        assert result.covered_positive_examples == []

    def test_all_negative_coverage(self):
        result = CoverageResult(0, 7)
        assert result.precision() == 0.0
        assert result.coverage_score() == -7

    def test_all_positive_coverage(self):
        result = CoverageResult(5, 0)
        assert result.precision() == 1.0
        assert result.coverage_score() == 5

    def test_mixed_coverage(self):
        result = CoverageResult(3, 1)
        assert result.precision() == pytest.approx(0.75)
        assert result.coverage_score() == 2


# Example 1.1's advisedBy clause, phrased for each UW-CSE schema variant
# (professor is unary in Original, composed with hasPosition in 4NF).
EXAMPLE_11_CLAUSES = {
    "original": "advisedBy(x, y) :- publication(t, x), publication(t, y), professor(y).",
    "4nf": "advisedBy(x, y) :- publication(t, x), publication(t, y), professor(y, p).",
}


class TestSubsumptionVsQueryAgreement:
    @pytest.mark.parametrize("variant", sorted(EXAMPLE_11_CLAUSES))
    def test_strategies_agree_on_uwcse_variants(self, uwcse_bundle, variant, backend):
        clause = parse_clause(EXAMPLE_11_CLAUSES[variant])
        instance = uwcse_bundle.instance(variant).with_backend(backend)
        examples = uwcse_bundle.examples.all_examples()

        query_engine = QueryCoverageEngine(instance)
        subsumption_engine = SubsumptionCoverageEngine(
            instance,
            BottomClauseConfig(max_depth=3, max_total_literals=500),
        )

        query_covered = {
            e.values for e in query_engine.covered_examples(clause, examples)
        }
        subsumption_covered = {
            e.values for e in subsumption_engine.covered_examples(clause, examples)
        }
        assert query_covered == subsumption_covered

    def test_evaluate_agreement_on_counts(self, uwcse_bundle, backend):
        clause = parse_clause(EXAMPLE_11_CLAUSES["original"])
        instance = uwcse_bundle.instance("original").with_backend(backend)
        examples = uwcse_bundle.examples

        query_result = QueryCoverageEngine(instance).evaluate(
            clause, examples.positives, examples.negatives
        )
        subsumption_result = SubsumptionCoverageEngine(
            instance, BottomClauseConfig(max_depth=3, max_total_literals=500)
        ).evaluate(clause, examples.positives, examples.negatives)

        assert query_result.positives_covered == subsumption_result.positives_covered
        assert query_result.negatives_covered == subsumption_result.negatives_covered
        assert query_result.precision() == subsumption_result.precision()
        assert query_result.coverage_score() == subsumption_result.coverage_score()
