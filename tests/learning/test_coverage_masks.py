"""Bitset coverage vectors: masks must agree with the example-list API.

Coverage masks are *positional* — bit ``i`` of a mask is the coverage of
``examples[i]`` — so they must round-trip through
:func:`~repro.learning.coverage.mask_to_examples`, agree with
``covered_examples`` on every engine, and survive batching/parallelism
unchanged.
"""

import pytest

from repro.castor.bottom_clause import (
    CastorBottomClauseBuilder,
    CastorBottomClauseConfig,
)
from repro.learning.coverage import (
    BatchCoverageEngine,
    QueryCoverageEngine,
    SubsumptionCoverageEngine,
    examples_mask,
    mask_to_examples,
)
from repro.learning.evaluation import evaluate_definition
from repro.learning.examples import Example, ExampleSet
from repro.logic.clauses import HornDefinition
from repro.logic.parser import parse_clause


@pytest.fixture(scope="module")
def workload(uwcse_bundle):
    variant = uwcse_bundle.variant_names[0]
    instance = uwcse_bundle.instance(variant)
    builder = CastorBottomClauseBuilder(
        instance,
        instance.schema,
        CastorBottomClauseConfig(max_depth=2, max_total_literals=20),
    )
    clauses = [builder.build(e) for e in uwcse_bundle.examples.positives[:5]]
    clauses = [c for c in clauses if c.body]
    assert clauses
    return instance, clauses, uwcse_bundle.examples


class TestMaskPrimitives:
    def test_round_trip(self):
        examples = [Example("t", (f"v{i}",), True) for i in range(8)]
        covered = [examples[1], examples[3], examples[7]]
        mask = examples_mask(covered, examples)
        assert mask == (1 << 1) | (1 << 3) | (1 << 7)
        assert mask_to_examples(mask, examples) == covered

    def test_duplicate_examples_share_coverage(self):
        """A repeated example sets EVERY position it occupies."""
        example = Example("t", ("v",), True)
        other = Example("t", ("w",), True)
        examples = [example, other, example]
        mask = examples_mask([example], examples)
        assert mask == 0b101
        assert mask_to_examples(mask, examples) == [example, example]

    def test_empty_inputs(self):
        assert examples_mask([], []) == 0
        assert mask_to_examples(0, []) == []
        example = Example("t", ("v",), True)
        assert examples_mask([], [example]) == 0
        assert mask_to_examples(0b1, [example]) == [example]

    def test_masks_compose_with_int_operations(self):
        examples = [Example("t", (f"v{i}",), True) for i in range(6)]
        left = examples_mask(examples[:3], examples)
        right = examples_mask(examples[2:5], examples)
        assert mask_to_examples(left | right, examples) == examples[:5]
        assert mask_to_examples(left & right, examples) == [examples[2]]
        assert (left | right).bit_count() == 5


class TestEngineMaskParity:
    def test_subsumption_mask_matches_examples(self, workload):
        instance, clauses, examples = workload
        engine = SubsumptionCoverageEngine(instance)
        all_examples = examples.all_examples()
        for clause in clauses:
            covered = engine.covered_examples(clause, all_examples)
            mask = engine.covered_mask(clause, all_examples)
            assert mask == examples_mask(covered, all_examples)
            assert mask_to_examples(mask, all_examples) == covered

    def test_query_engine_mask_matches_examples(self, workload):
        instance, clauses, examples = workload
        all_examples = examples.all_examples()
        for backend in ("memory", "sqlite"):
            engine = QueryCoverageEngine(instance.with_backend(backend))
            for clause in clauses[:2]:
                covered = engine.covered_examples(clause, all_examples)
                assert engine.covered_mask(clause, all_examples) == examples_mask(
                    covered, all_examples
                )

    def test_batch_masks_parallelism_invariant(self, workload):
        instance, clauses, examples = workload
        all_examples = examples.all_examples()
        outcomes = {}
        for parallelism in (1, 4):
            batch = BatchCoverageEngine(
                SubsumptionCoverageEngine(instance), parallelism=parallelism
            )
            outcomes[parallelism] = batch.covered_masks_batch(clauses, all_examples)
        assert outcomes[1] == outcomes[4]
        sequential = SubsumptionCoverageEngine(instance)
        expected = [
            examples_mask(sequential.covered_examples(c, all_examples), all_examples)
            for c in clauses
        ]
        assert outcomes[1] == expected

    def test_evaluate_batch_carries_consistent_masks(self, workload):
        instance, clauses, examples = workload
        batch = BatchCoverageEngine(SubsumptionCoverageEngine(instance))
        results = batch.evaluate_batch(clauses, examples.positives, examples.negatives)
        assert len(results) == len(clauses)
        for result in results:
            assert result.positive_mask is not None
            assert result.negative_mask is not None
            assert result.positive_mask.bit_count() == result.positives_covered
            assert result.negative_mask.bit_count() == result.negatives_covered
            assert (
                mask_to_examples(result.positive_mask, examples.positives)
                == result.covered_positive_examples
            )


class TestEvaluateDefinitionBatched:
    def _definition_and_examples(self, simple_instance):
        clause = parse_clause("target(x) :- r1(x, y), r2(x, z).")
        definition = HornDefinition("target", [clause])
        examples = ExampleSet(
            "target",
            [("a1",), ("a2",)],
            [("zz",), ("a3",)],  # a3 IS derivable: false positive
        )
        return definition, examples

    def test_batched_matches_per_example_fallback(self, simple_instance):
        definition, examples = self._definition_and_examples(simple_instance)
        engine = QueryCoverageEngine(simple_instance)
        assert hasattr(engine, "covered_masks_batch")
        batched = evaluate_definition(definition, simple_instance, examples, engine)

        class NoBatchEngine:
            """Same decisions, no batch surface → per-example fallback path."""

            def covers(self, clause, example):
                return engine.covers(clause, example)

        fallback = evaluate_definition(
            definition, simple_instance, examples, NoBatchEngine()
        )
        for attribute in (
            "true_positives",
            "false_positives",
            "false_negatives",
            "precision",
            "recall",
        ):
            assert getattr(batched, attribute) == getattr(fallback, attribute)

    def test_definition_coverage_is_clause_union(self, simple_instance):
        definition, examples = self._definition_and_examples(simple_instance)
        two_clause = HornDefinition(
            "target",
            [parse_clause("target(x) :- r1(x, y)."), parse_clause("target(x) :- r2(x, z).")],
        )
        result = evaluate_definition(two_clause, simple_instance, examples)
        # Both positives derivable through either clause; a3 still a false positive.
        assert result.true_positives == 2
        assert result.false_positives == 1

    def test_empty_definition_covers_nothing(self, simple_instance):
        _, examples = self._definition_and_examples(simple_instance)
        result = evaluate_definition(
            HornDefinition("target", []), simple_instance, examples
        )
        assert result.true_positives == 0
        assert result.false_positives == 0
        assert result.precision == 0.0
        assert result.recall == 0.0
