"""LearningSession: uniform learner construction, warm reuse, lifecycle."""

from __future__ import annotations

import pytest

from repro import LearningSession, SessionConfig
from repro.castor.castor import CastorLearner
from repro.datasets import uwcse
from repro.experiments.harness import LearnerSpec, run_variant
from repro.foil.foil import FoilLearner
from repro.golem.golem import GolemLearner
from repro.learning.bottom_clause import BottomClauseConfig
from repro.progolem.progolem import ProGolemLearner, ProGolemParameters
from repro.session.session import SessionLearner


@pytest.fixture(scope="module")
def tiny_bundle():
    return uwcse.load(
        uwcse.UwCseConfig(num_students=10, num_professors=3, num_courses=5), seed=5
    )


def progolem_parameters() -> ProGolemParameters:
    return ProGolemParameters(
        sample_size=2,
        beam_width=2,
        max_armg_rounds=2,
        max_clauses=4,
        bottom_clause=BottomClauseConfig(max_depth=2, max_total_literals=20),
    )


def progolem_spec() -> LearnerSpec:
    return LearnerSpec(
        "ProGolem", lambda schema: ProGolemLearner(schema, progolem_parameters())
    )


def as_key(result):
    clauses = [str(c) for c in result.definition] if result.definition else []
    return (
        round(result.precision, 9),
        round(result.recall, 9),
        round(result.f1, 9),
        result.folds,
        clauses,
    )


# --------------------------------------------------------------------- #
# Uniform context= construction
# --------------------------------------------------------------------- #
@pytest.mark.parametrize(
    "learner_class", [CastorLearner, FoilLearner, GolemLearner, ProGolemLearner]
)
def test_every_learner_takes_context(learner_class, tiny_bundle):
    config = SessionConfig(backend="sqlite-pooled", parallelism=3)
    learner = learner_class(
        tiny_bundle.schema(tiny_bundle.variant_names[0]), context=config
    )
    assert learner.parallelism == 3
    assert learner.backend == "sqlite-pooled"


def test_session_doubles_as_context(tiny_bundle):
    with LearningSession(SessionConfig(parallelism=2)) as session:
        learner = ProGolemLearner(
            tiny_bundle.schema(tiny_bundle.variant_names[0]), context=session
        )
        assert learner.parallelism == 2


def test_session_context_pushes_local_backend(tiny_bundle):
    """context=session must not silently drop the configured backend on a
    bare constructor — learn() without session.prepare still converts."""
    with LearningSession(SessionConfig(backend="sqlite-pooled")) as session:
        learner = ProGolemLearner(
            tiny_bundle.schema(tiny_bundle.variant_names[0]), context=session
        )
        assert learner.backend == "sqlite-pooled"


def test_connect_shaped_config_warns_on_bare_context(tiny_bundle):
    schema = tiny_bundle.schema(tiny_bundle.variant_names[0])
    config = SessionConfig(service_address="127.0.0.1:7463")
    with pytest.warns(RuntimeWarning, match="evaluate locally"):
        ProGolemLearner(schema, context=config)


def test_every_registry_kind_constructs(tiny_bundle):
    """Every advertised kind — including progol/aleph-foil — takes context=."""
    schema = tiny_bundle.schema(tiny_bundle.variant_names[0])
    with LearningSession(SessionConfig(parallelism=2)) as session:
        for kind in ("castor", "foil", "golem", "progolem", "progol", "aleph-foil"):
            learner = session.learner(kind, schema)
            assert learner.parallelism == 2, kind


def test_registry_kinds_take_parameters(tiny_bundle):
    """parameters= reaches the right slot on every kind (aleph-foil's
    leading clause_length positional is the trap)."""
    from repro.progol.progol import ProgolParameters

    schema = tiny_bundle.schema(tiny_bundle.variant_names[0])
    params = ProgolParameters(clause_length=4)
    with LearningSession(SessionConfig()) as session:
        learner = session.learner("aleph-foil", schema, params)
        assert learner.parameters is params
        spec = session._as_spec("aleph-foil", params)
        assert spec.build(schema).parameters is params


def test_repeat_sweeps_stay_warm(tiny_bundle):
    """A second sweep on one session reuses the converted bundle, the
    prepared instances, and the saturation stores (no cache growth)."""
    with LearningSession(SessionConfig(backend="sqlite")) as session:
        session.sweep(
            tiny_bundle, [progolem_spec()],
            variants=tiny_bundle.variant_names[:1], folds=2,
        )
        instances_after_first = dict(session._instances)
        stores_after_first = dict(session._stores)
        session.sweep(
            tiny_bundle, [progolem_spec()],
            variants=tiny_bundle.variant_names[:1], folds=2,
        )
        assert session._instances == instances_after_first
        assert session._stores == stores_after_first


def test_session_learner_registry(tiny_bundle):
    schema = tiny_bundle.schema(tiny_bundle.variant_names[0])
    with LearningSession(SessionConfig(parallelism=2)) as session:
        learner = session.learner("progolem", schema, progolem_parameters())
        assert isinstance(learner, SessionLearner)
        assert isinstance(learner.wrapped, ProGolemLearner)
        assert learner.parallelism == 2
        with pytest.raises(ValueError, match="castor"):
            session.learner("no-such-learner", schema)


# --------------------------------------------------------------------- #
# session.run / session.learner parity with the per-run path
# --------------------------------------------------------------------- #
def test_session_run_matches_legacy_run_variant(tiny_bundle):
    variant = tiny_bundle.variant_names[0]
    legacy = run_variant(
        tiny_bundle, variant, progolem_spec(), folds=2, backend="sqlite"
    )
    with LearningSession(SessionConfig(backend="sqlite")) as session:
        through_session = session.run(tiny_bundle, variant, progolem_spec(), folds=2)
        repeat = session.run(tiny_bundle, variant, progolem_spec(), folds=2)
    assert as_key(through_session) == as_key(legacy)
    assert as_key(repeat) == as_key(legacy)


def test_session_learner_learn_matches_direct_learner(tiny_bundle):
    variant = tiny_bundle.variant_names[0]
    schema = tiny_bundle.schema(variant)
    instance = tiny_bundle.instance(variant)
    direct = ProGolemLearner(
        schema, progolem_parameters(), backend="sqlite"
    ).learn(instance, tiny_bundle.examples)
    with LearningSession(SessionConfig(backend="sqlite")) as session:
        learner = session.learner("progolem", schema, progolem_parameters())
        through_session = learner.learn(instance, tiny_bundle.examples)
    assert sorted(map(str, through_session)) == sorted(map(str, direct))


def test_repeated_runs_share_one_store_and_instance(tiny_bundle):
    variant = tiny_bundle.variant_names[0]
    with LearningSession(SessionConfig(backend="sqlite")) as session:
        prepared_first = session.prepare(tiny_bundle.instance(variant))
        store_first = session.saturation_store_for(prepared_first)
        session.run(tiny_bundle, variant, progolem_spec(), folds=2)
        prepared_second = session.prepare(tiny_bundle.instance(variant))
        store_second = session.saturation_store_for(prepared_second)
        assert prepared_first is prepared_second
        assert store_first is store_second


def test_constructed_learner_follows_the_variant_schema(tiny_bundle):
    """A pre-built learner passed to sweep/check is rebound to each
    variant's schema instead of silently learning with the wrong one."""
    variants = tiny_bundle.variant_names[:2]
    with LearningSession(SessionConfig(backend="sqlite")) as session:
        by_factory = session.sweep(
            tiny_bundle, [progolem_spec()], variants=variants, folds=2
        )
    constructed = ProGolemLearner(
        tiny_bundle.schema(variants[0]), progolem_parameters()
    )
    with LearningSession(SessionConfig(backend="sqlite")) as session:
        by_object = session.sweep(
            tiny_bundle, [constructed], variants=variants, folds=2
        )
        # Other variants learn on a per-variant clone; the caller's object
        # is never left mutated.
        assert constructed.schema is tiny_bundle.schema(variants[0])
    assert [as_key(r) for r in by_object] == [as_key(r) for r in by_factory]


def test_stores_are_keyed_per_saturation_config(tiny_bundle):
    """Same-configured learners share a warm store; learners whose builders
    construct different saturations never do (the store dedups by example,
    so sharing across configs would answer coverage from foreign clauses)."""
    variant = tiny_bundle.variant_names[0]
    schema = tiny_bundle.schema(variant)
    shallow = progolem_parameters()
    deep = ProGolemParameters(
        sample_size=2,
        beam_width=2,
        max_armg_rounds=2,
        max_clauses=4,
        bottom_clause=BottomClauseConfig(max_depth=3, max_total_literals=40),
    )
    with LearningSession(SessionConfig(backend="sqlite")) as session:
        prepared = session.prepare(tiny_bundle.instance(variant))
        store_a = session.saturation_store_for(
            prepared, ProGolemLearner(schema, shallow)
        )
        store_a_again = session.saturation_store_for(
            prepared, ProGolemLearner(schema, shallow)
        )
        store_b = session.saturation_store_for(
            prepared, ProGolemLearner(schema, deep)
        )
        assert store_a is store_a_again, "same config must share the store"
        assert store_a is not store_b, "different configs must not"


def test_multi_spec_sweep_matches_per_run_path(tiny_bundle):
    """A sweep mixing differently-configured specs produces the same
    definitions as running each spec in isolation."""
    variant = tiny_bundle.variant_names[0]
    deep_spec = LearnerSpec(
        "ProGolem-deep",
        lambda schema: ProGolemLearner(
            schema,
            ProGolemParameters(
                sample_size=2,
                beam_width=2,
                max_armg_rounds=2,
                max_clauses=4,
                bottom_clause=BottomClauseConfig(
                    max_depth=3, max_total_literals=40
                ),
            ),
        ),
    )
    isolated = [
        run_variant(tiny_bundle, variant, spec, folds=2, backend="sqlite")
        for spec in (progolem_spec(), deep_spec)
    ]
    with LearningSession(SessionConfig(backend="sqlite")) as session:
        swept = session.sweep(
            tiny_bundle, [progolem_spec(), deep_spec],
            variants=[variant], folds=2,
        )
    assert [as_key(r) for r in swept] == [as_key(r) for r in isolated]


def test_topology_knobs_reach_the_backend(tiny_bundle):
    """sharding_strategy/transport are applied, not just validated."""
    config = SessionConfig(
        backend="sqlite-sharded", shards=2,
        sharding_strategy="size-balanced", transport="socket",
    )
    with LearningSession(config) as session:
        prepared = session.prepare(tiny_bundle.instance(tiny_bundle.variant_names[0]))
        assert prepared.backend.shards == 2
        assert prepared.backend.strategy == "size-balanced"
        assert prepared.backend.transport == "socket"


@pytest.mark.parametrize("source_backend", ["memory", "sqlite", "sqlite-pooled"])
def test_data_token_moves_on_mutation(tiny_bundle, source_backend):
    """Every registered backend exposes a contents-version token."""
    instance = tiny_bundle.instance(tiny_bundle.variant_names[0]).with_backend(
        source_backend
    )
    relation = instance.schema.relations[0]
    before = instance.data_token()
    assert before is not None
    instance.add_tuples(
        relation.name, [("token-witness",) * len(relation.attributes)]
    )
    assert instance.data_token() != before


def test_source_mutations_invalidate_the_prepared_cache(tiny_bundle):
    """Mutating the source instance between runs re-converts and drops the
    stale saturation stores (legacy per-learn() conversion semantics)."""
    source = tiny_bundle.instance(tiny_bundle.variant_names[0])
    relation = source.schema.relations[0]
    with LearningSession(SessionConfig(backend="sqlite")) as session:
        first = session.prepare(source)
        store = session.saturation_store_for(first)
        assert store is not None and session._stores
        source.add_tuples(relation.name, [("mutation-witness",) * len(relation.attributes)])
        second = session.prepare(source)
        assert second is not first, "stale conversion must be replaced"
        assert ("mutation-witness",) * len(relation.attributes) in second.relation(
            relation.name
        ).rows
        assert not any(key[0] == id(first) for key in session._stores)


def test_storeless_learner_opens_no_store(tiny_bundle):
    """FOIL through a session never opens a SaturationStore connection."""
    variant = tiny_bundle.variant_names[0]
    with LearningSession(SessionConfig(backend="sqlite")) as session:
        learner = session.learner("foil", tiny_bundle.schema(variant))
        learner.learn(tiny_bundle.instance(variant), tiny_bundle.examples)
        assert session._stores == {}


def test_unhonorable_coverage_strategy_warns_once(tiny_bundle):
    import warnings

    schema = tiny_bundle.schema(tiny_bundle.variant_names[0])
    with pytest.warns(RuntimeWarning, match="always uses subsumption"):
        SessionConfig(coverage="query").apply(ProGolemLearner(schema))
    with pytest.warns(RuntimeWarning, match="always uses query"):
        SessionConfig(coverage="subsumption").apply(FoilLearner(schema))
    with warnings.catch_warnings():
        warnings.simplefilter("error")
        # Matching families are honored silently.
        SessionConfig(coverage="subsumption").apply(ProGolemLearner(schema))
        SessionConfig(coverage="query").apply(FoilLearner(schema))


def test_reuse_disabled_hands_out_no_store(tiny_bundle):
    variant = tiny_bundle.variant_names[0]
    with LearningSession(
        SessionConfig(backend="sqlite", reuse_saturation_store=False)
    ) as session:
        prepared = session.prepare(tiny_bundle.instance(variant))
        assert session.saturation_store_for(prepared) is None
        assert session.store_supplier(prepared) is None


# --------------------------------------------------------------------- #
# Harness integration rules
# --------------------------------------------------------------------- #
def test_per_call_knobs_rejected_with_explicit_session(tiny_bundle):
    variant = tiny_bundle.variant_names[0]
    with LearningSession(SessionConfig(backend="sqlite")) as session:
        with pytest.raises(ValueError, match="SessionConfig"):
            run_variant(
                tiny_bundle, variant, progolem_spec(), backend="memory",
                session=session,
            )
        with pytest.raises(ValueError, match="parallelism"):
            run_variant(
                tiny_bundle, variant, progolem_spec(), parallelism=2,
                session=session,
            )


# --------------------------------------------------------------------- #
# Lifecycle safety
# --------------------------------------------------------------------- #
def test_close_is_idempotent_and_blocks_reuse(tiny_bundle):
    session = LearningSession(SessionConfig(backend="sqlite"))
    session.prepare(tiny_bundle.instance(tiny_bundle.variant_names[0]))
    session.close()
    session.close()  # idempotent
    assert session.closed
    with pytest.raises(RuntimeError, match="closed"):
        session.prepare(tiny_bundle.instance(tiny_bundle.variant_names[0]))
    with pytest.raises(RuntimeError, match="closed"):
        with session:
            pass


def test_context_manager_closes(tiny_bundle):
    with LearningSession(SessionConfig()) as session:
        assert not session.closed
    assert session.closed


def test_close_shuts_down_bundle_converted_fleets(tiny_bundle):
    """Backends created inside a session-converted bundle (the sweep path)
    are owned by the session and closed with it."""
    session = LearningSession(SessionConfig(backend="sqlite-sharded", shards=2))
    converted = session.prepare_bundle(tiny_bundle)
    assert converted is not tiny_bundle
    instance = converted.instance(tiny_bundle.variant_names[0])
    service = instance.backend.coverage_service().start()
    assert any(pid is not None for pid in service.worker_pids())
    session.close()
    assert instance.backend._service is None


def test_close_shuts_down_owned_sharded_fleet(tiny_bundle):
    session = LearningSession(SessionConfig(backend="sqlite-sharded", shards=2))
    prepared = session.prepare(tiny_bundle.instance(tiny_bundle.variant_names[0]))
    backend = prepared.backend
    service = backend.coverage_service().start()
    pids = [pid for pid in service.worker_pids() if pid is not None]
    assert pids, "fleet should be running"
    session.close()
    assert backend._service is None


def test_evaluation_stats_counts_sharded_reloads(tiny_bundle):
    with LearningSession(SessionConfig(backend="sqlite-sharded", shards=2)) as session:
        result = session.run(
            tiny_bundle, tiny_bundle.variant_names[0], progolem_spec(), folds=2
        )
        stats = session.evaluation_stats()
        assert result is not None
        assert stats["batches_served"] > 0
