"""SessionConfig validation: incoherent combos are rejected with actionable
messages, and apply() is the single warn-once normalization path."""

from __future__ import annotations

import warnings

import pytest

from repro.database import DatabaseInstance, RelationSchema, Schema
from repro.progolem.progolem import ProGolemLearner
from repro.session import COVERAGE_STRATEGIES, SessionConfig

BACKENDS = ["memory", "sqlite", "sqlite-pooled", "sqlite-sharded"]


def schema() -> Schema:
    return Schema([RelationSchema("r", ["a", "b"])], name="s")


# --------------------------------------------------------------------- #
# Backend-matrix validation
# --------------------------------------------------------------------- #
@pytest.mark.parametrize("backend", BACKENDS)
def test_shards_requires_a_sharded_backend(backend):
    if backend == "sqlite-sharded":
        assert SessionConfig(backend=backend, shards=2).shards == 2
    else:
        with pytest.raises(ValueError, match="sqlite-sharded"):
            SessionConfig(backend=backend, shards=2)


@pytest.mark.parametrize("backend", BACKENDS)
def test_parallelism_rejected_only_on_single_connection_sqlite(backend):
    if backend == "sqlite":
        with pytest.raises(ValueError, match="sqlite-pooled"):
            SessionConfig(backend=backend, parallelism=2)
    else:
        assert SessionConfig(backend=backend, parallelism=2).parallelism == 2


@pytest.mark.parametrize("backend", BACKENDS)
def test_topology_knobs_only_on_sharded_backends(backend):
    if backend == "sqlite-sharded":
        config = SessionConfig(
            backend=backend, sharding_strategy="round-robin", transport="socket"
        )
        assert config.sharding_strategy == "round-robin"
    else:
        with pytest.raises(ValueError, match="sqlite-sharded"):
            SessionConfig(backend=backend, sharding_strategy="round-robin")
        with pytest.raises(ValueError, match="sqlite-sharded"):
            SessionConfig(backend=backend, transport="socket")


@pytest.mark.parametrize("backend", BACKENDS)
def test_unset_knobs_are_always_coherent(backend):
    # The knobless config is valid on every backend.
    assert SessionConfig(backend=backend).backend == backend


def test_unknown_backend_lists_the_registry():
    with pytest.raises(ValueError, match="memory"):
        SessionConfig(backend="voltdb")


def test_out_of_range_counts():
    with pytest.raises(ValueError, match="parallelism"):
        SessionConfig(parallelism=0)
    with pytest.raises(ValueError, match="shards"):
        SessionConfig(backend="sqlite-sharded", shards=0)


def test_unknown_coverage_strategy_lists_options():
    with pytest.raises(ValueError, match="subsumption-compiled"):
        SessionConfig(coverage="compiled")
    for strategy in COVERAGE_STRATEGIES:
        if strategy == "query":
            continue
        assert SessionConfig(coverage=strategy).coverage == strategy


def test_presaturate_needs_the_shared_store():
    with pytest.raises(ValueError, match="reuse_saturation_store"):
        SessionConfig(presaturate=True, reuse_saturation_store=False)


def test_presaturate_incoherent_with_query_coverage():
    with pytest.raises(ValueError, match="no saturations"):
        SessionConfig(presaturate=True, coverage="query")


def test_unknown_strategy_and_transport_names():
    with pytest.raises(ValueError, match="round-robin"):
        SessionConfig(backend="sqlite-sharded", sharding_strategy="modulo")
    with pytest.raises(ValueError, match="pipe"):
        SessionConfig(backend="sqlite-sharded", transport="grpc")


# --------------------------------------------------------------------- #
# Persistent-server address rules
# --------------------------------------------------------------------- #
def test_service_address_must_parse():
    with pytest.raises(ValueError, match="HOST:PORT"):
        SessionConfig(service_address="not-an-address")
    assert SessionConfig(service_address="127.0.0.1:7463").service_address


def test_service_address_conflicts_with_local_topology():
    with pytest.raises(ValueError, match="fixed when the persistent server"):
        SessionConfig(service_address="127.0.0.1:7463", shards=2)
    with pytest.raises(ValueError, match="drop backend="):
        SessionConfig(service_address="127.0.0.1:7463", backend="sqlite-sharded")


def test_remote_backend_requires_an_address():
    with pytest.raises(ValueError, match="service_address"):
        SessionConfig(backend="sqlite-remote")
    config = SessionConfig(
        backend="sqlite-remote", service_address="127.0.0.1:7463"
    )
    assert config.backend == "sqlite-remote"


# --------------------------------------------------------------------- #
# merged()
# --------------------------------------------------------------------- #
def test_merged_overrides_and_revalidates():
    base = SessionConfig(backend="sqlite-sharded", shards=2)
    bumped = base.merged(shards=4)
    assert bumped.shards == 4 and bumped.backend == "sqlite-sharded"
    assert base.shards == 2  # immutable
    with pytest.raises(ValueError, match="sqlite-sharded"):
        base.merged(backend="memory")
    assert base.merged() is base


# --------------------------------------------------------------------- #
# apply(): the single normalization path
# --------------------------------------------------------------------- #
class ConfigKnoblessLearner:
    pass


def test_apply_sets_knobs_the_learner_exposes():
    learner = ProGolemLearner(schema())
    config = SessionConfig(
        backend="sqlite-pooled", parallelism=5, coverage="subsumption-python"
    )
    assert config.apply(learner) is learner
    assert learner.parallelism == 5
    assert learner.backend == "sqlite-pooled"
    assert learner.compiled_coverage is False


def test_apply_warns_once_on_learners_without_the_knob():
    with pytest.warns(RuntimeWarning, match="ConfigKnoblessLearner.*parallelism=3"):
        SessionConfig(parallelism=3).apply(ConfigKnoblessLearner())
    with warnings.catch_warnings():
        warnings.simplefilter("error")
        SessionConfig(parallelism=3).apply(ConfigKnoblessLearner())


def test_apply_hands_out_the_saturation_store():
    from repro.database.sqlite_backend import SaturationStore

    learner = ProGolemLearner(schema())
    store = SaturationStore()
    SessionConfig().apply(learner, saturation_store=store)
    assert learner.saturation_store is store


def test_apply_configures_instance_sharding():
    instance = DatabaseInstance(schema(), backend="sqlite-sharded")
    SessionConfig(backend="sqlite-sharded", shards=3).apply(instance=instance)
    assert instance.backend.shards == 3
    instance.backend.close()


def test_apply_without_instance_sets_learner_shards():
    learner = ProGolemLearner(schema())
    SessionConfig(backend="sqlite-sharded", shards=3).apply(learner)
    assert learner.shards == 3
