"""session.update()/session.feed(): streaming updates keep session caches warm.

Before the update API, any mutation between runs moved the source's data
token and the next prepare() threw away the converted instance, its worker
fleet, and every saturation store keyed on it.  These tests pin the new
contract: updates routed through the session patch all of that in place.
"""

from __future__ import annotations

import pytest

from repro import Delta, LearningSession, SessionConfig
from repro.database.instance import DatabaseInstance
from repro.database.schema import RelationSchema, Schema
from repro.learning.bottom_clause import BottomClauseConfig
from repro.learning.coverage import SubsumptionCoverageEngine
from repro.learning.examples import Example


def tiny_schema() -> Schema:
    return Schema(
        [RelationSchema("r", ["a", "b"]), RelationSchema("s", ["a", "c"])],
        name="session-update-tests",
    )


def tiny_source() -> DatabaseInstance:
    instance = DatabaseInstance(tiny_schema())
    with instance.transaction():
        instance.add_tuples("r", [("x1", "b1")])
        instance.add_tuples("s", [("x2", "c2")])
    return instance


def test_update_keeps_the_prepared_cache_warm():
    """The headline fix: update() advances the cached data token, so the
    next prepare() is a cache hit — same converted instance, not a
    re-conversion."""
    source = tiny_source()
    with LearningSession(SessionConfig(backend="sqlite")) as session:
        prepared = session.prepare(source)
        session.update(source, Delta.add("r", [("x9", "b9")]))
        assert session.prepare(source) is prepared
        # Both the source and the conversion saw the delta.
        assert ("x9", "b9") in source.relation("r").rows
        assert ("x9", "b9") in prepared.relation("r").rows


def test_direct_mutation_still_invalidates_wholesale():
    """The legacy path keeps its semantics: bypassing update() moves the
    token and prepare() re-converts (correct, just cold)."""
    source = tiny_source()
    with LearningSession(SessionConfig(backend="sqlite")) as session:
        prepared = session.prepare(source)
        source.add_tuple("r", ("x9", "b9"))
        again = session.prepare(source)
        assert again is not prepared
        assert ("x9", "b9") in again.relation("r").rows


def test_update_patches_stores_instead_of_dropping_them():
    """A delta touching only e1's footprint leaves e2's saturation warm in
    the session-shared store — and the store object itself survives."""
    source = tiny_source()
    e1 = Example("q", ("x1",), True)
    e2 = Example("q", ("x2",), True)
    with LearningSession(SessionConfig(backend="sqlite")) as session:
        prepared = session.prepare(source)
        store = session.saturation_store_for(prepared)
        engine = SubsumptionCoverageEngine(
            prepared,
            BottomClauseConfig(max_depth=2),
            compiled=True,
            saturation_store=store,
        )
        engine.materialize([e1, e2])
        warm_e2 = store.existing_id("q", e2.values)
        assert warm_e2 is not None

        session.update(source, Delta.add("r", [("x1", "b9")]))

        assert session.saturation_store_for(prepared) is store
        assert store.existing_id("q", e2.values) == warm_e2
        assert store.existing_id("q", e1.values) is None


def test_feed_builds_one_coalesced_delta():
    source = tiny_source()
    with LearningSession(SessionConfig(backend="sqlite")) as session:
        session.prepare(source)
        delta = session.feed(
            source,
            add={"r": [("x9", "b9"), ("x9", "b9")]},
            remove={"s": [("x2", "c2")]},
        )
    assert delta == Delta(
        [("add", "r", (("x9", "b9"),)), ("remove", "s", (("x2", "c2"),))]
    )
    assert ("x9", "b9") in source.relation("r").rows
    assert ("x2", "c2") not in source.relation("s").rows


def test_update_on_unprepared_instance_just_replays():
    source = tiny_source()
    with LearningSession(SessionConfig(backend="sqlite")) as session:
        session.update(source, Delta.add("r", [("x9", "b9")]))
    assert ("x9", "b9") in source.relation("r").rows


def test_update_rejects_non_delta():
    source = tiny_source()
    with LearningSession(SessionConfig(backend="sqlite")) as session:
        with pytest.raises(TypeError, match="session.feed"):
            session.update(source, [("add", "r", (("x9", "b9"),))])


def test_prepared_instance_direct_mutation_warns():
    """prepare() marks the conversion managed: bare add/remove on it points
    (once) at the transaction/update API."""
    from repro.database import backend as backend_module

    source = tiny_source()
    with LearningSession(SessionConfig(backend="sqlite")) as session:
        prepared = session.prepare(source)
        backend_module._WARNED = {
            m for m in backend_module._WARNED if "prepared instance" not in m
        }
        with pytest.warns(RuntimeWarning, match="transaction"):
            prepared.add_tuple("r", ("warned", "row"))


def test_update_resyncs_a_live_sharded_fleet():
    """A running worker fleet replays the delta immediately: coverage served
    by the fleet reflects the update without a reload-from-scratch."""
    from repro.logic.parser import parse_clause

    source = tiny_source()
    clause = parse_clause("q(x) :- r(x, y).")
    with LearningSession(
        SessionConfig(backend="sqlite-sharded", shards=2)
    ) as session:
        prepared = session.prepare(source)
        backend = prepared.backend
        service = backend.coverage_service().start()
        candidates = [("x1",), ("x9",)]
        assert backend.covered_head_tuples_batch([clause], candidates) == [
            {("x1",)}
        ]
        session.update(source, Delta.add("r", [("x9", "b9")]))
        assert backend.covered_head_tuples_batch([clause], candidates) == [
            {("x1",), ("x9",)}
        ]
        assert service.reloads_incremental >= 1
        assert service.reloads_full <= 1
