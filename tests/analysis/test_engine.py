"""Engine mechanics: suppression parsing, application, hygiene, JSON schema."""

import json
import textwrap

from repro.analysis.engine import (
    META_RULE,
    AnalysisResult,
    Finding,
    parse_suppressions,
    run_analysis,
)
from repro.analysis.rules import WireSafetyRule


def _write(tmp_path, name, source):
    path = tmp_path / name
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(textwrap.dedent(source))
    return path


# --------------------------------------------------------------------- #
# parse_suppressions
# --------------------------------------------------------------------- #


def test_parse_suppression_with_reason():
    src = "x = 1  # repro: noqa[REP001] -- trusted seam fixture\n"
    sups = parse_suppressions(src)
    assert list(sups) == [1]
    assert sups[1].rule_ids == ("REP001",)
    assert sups[1].reason == "trusted seam fixture"


def test_parse_suppression_without_reason_keeps_none():
    sups = parse_suppressions("x = 1  # repro: noqa[REP001]\n")
    assert sups[1].reason is None


def test_parse_suppression_multiple_ids():
    sups = parse_suppressions("x = 1  # repro: noqa[REP001,REP004] -- both\n")
    assert sups[1].rule_ids == ("REP001", "REP004")


def test_suppression_in_string_literal_is_ignored():
    src = 'doc = "use # repro: noqa[REP001] -- like this"\n'
    assert parse_suppressions(src) == {}


def test_suppression_in_docstring_is_ignored():
    src = '"""Explains # repro: noqa[REP001] -- the syntax."""\nx = 1\n'
    assert parse_suppressions(src) == {}


# --------------------------------------------------------------------- #
# Suppression application + hygiene (REP000)
# --------------------------------------------------------------------- #


def test_reasoned_suppression_marks_finding_suppressed(tmp_path):
    _write(
        tmp_path,
        "mod.py",
        "import pickle  # repro: noqa[REP001] -- fixture justification\n",
    )
    result = run_analysis([str(tmp_path)], [WireSafetyRule()])
    assert result.ok
    assert len(result.suppressed) == 1
    assert result.suppressed[0].reason == "fixture justification"


def test_reasonless_suppression_does_not_suppress_and_adds_rep000(tmp_path):
    _write(tmp_path, "mod.py", "import pickle  # repro: noqa[REP001]\n")
    result = run_analysis([str(tmp_path)], [WireSafetyRule()])
    rules_fired = sorted({f.rule for f in result.unsuppressed})
    assert rules_fired == [META_RULE, "REP001"]


def test_unused_suppression_is_flagged(tmp_path):
    _write(tmp_path, "mod.py", "x = 1  # repro: noqa[REP001] -- nothing here\n")
    result = run_analysis([str(tmp_path)], [WireSafetyRule()])
    assert [f.rule for f in result.unsuppressed] == [META_RULE]
    assert "unused suppression" in result.unsuppressed[0].message


def test_unknown_rule_id_suppression_is_flagged(tmp_path):
    _write(tmp_path, "mod.py", "x = 1  # repro: noqa[REP999] -- what rule\n")
    result = run_analysis([str(tmp_path)], [WireSafetyRule()])
    assert [f.rule for f in result.unsuppressed] == [META_RULE]
    assert "unknown rule id" in result.unsuppressed[0].message


def test_hygiene_can_be_disabled_for_partial_runs(tmp_path):
    _write(tmp_path, "mod.py", "x = 1  # repro: noqa[REP001] -- partial run\n")
    result = run_analysis(
        [str(tmp_path)], [WireSafetyRule()], check_suppression_hygiene=False
    )
    assert result.ok


def test_suppression_only_covers_named_rule(tmp_path):
    _write(
        tmp_path,
        "mod.py",
        "import pickle  # repro: noqa[REP004] -- wrong rule id\n",
    )
    result = run_analysis([str(tmp_path)], [WireSafetyRule()])
    assert any(f.rule == "REP001" for f in result.unsuppressed)


# --------------------------------------------------------------------- #
# JSON output schema (v1: consumed by the CI artifact upload)
# --------------------------------------------------------------------- #


def test_json_schema(tmp_path):
    _write(tmp_path, "mod.py", "import pickle\n")
    result = run_analysis([str(tmp_path)], [WireSafetyRule()])
    payload = json.loads(result.to_json())
    assert payload["version"] == 1
    assert payload["rules"] == ["REP001"]
    assert isinstance(payload["paths"], list) and len(payload["paths"]) == 1
    assert payload["summary"] == {"total": 1, "suppressed": 0, "unsuppressed": 1}
    (finding,) = payload["findings"]
    assert set(finding) == {"rule", "path", "line", "message", "suppressed", "reason"}
    assert finding["rule"] == "REP001"
    assert finding["line"] == 1
    assert finding["suppressed"] is False


def test_render_text_has_location_and_summary_line(tmp_path):
    _write(tmp_path, "mod.py", "import pickle\n")
    result = run_analysis([str(tmp_path)], [WireSafetyRule()])
    text = result.render_text()
    assert "mod.py:1: REP001" in text
    assert "1 finding(s), 0 suppressed, 1 file(s) scanned" in text


def test_result_ok_iff_no_unsuppressed():
    clean = AnalysisResult(findings=[], paths=[], rule_ids=[])
    assert clean.ok
    dirty = AnalysisResult(
        findings=[Finding(rule="REP001", path="x.py", line=1, message="m")],
        paths=["x.py"],
        rule_ids=["REP001"],
    )
    assert not dirty.ok


# --------------------------------------------------------------------- #
# File discovery
# --------------------------------------------------------------------- #


def test_pycache_and_duplicates_are_skipped(tmp_path):
    _write(tmp_path, "pkg/mod.py", "import pickle\n")
    _write(tmp_path, "pkg/__pycache__/mod.py", "import pickle\n")
    result = run_analysis(
        [str(tmp_path), str(tmp_path / "pkg" / "mod.py")], [WireSafetyRule()]
    )
    assert len(result.paths) == 1
    assert len(result.findings) == 1


def test_syntax_error_files_are_skipped(tmp_path):
    _write(tmp_path, "broken.py", "def f(:\n")
    result = run_analysis([str(tmp_path)], [WireSafetyRule()])
    assert result.paths == []
    assert result.ok
