"""The analyzer gate on this repository itself, the CLI, and the ratchet."""

import json
import subprocess
import sys
from pathlib import Path

import pytest

from repro.analysis import default_rules, run_analysis
from repro.analysis.__main__ import main as cli_main
from repro.analysis.ratchet import (
    compare,
    load_baseline,
    module_for_path,
    parse_report,
    main as ratchet_main,
)

REPO_ROOT = Path(__file__).resolve().parents[2]

#: ISSUE budget: at most this many justified inline suppressions repo-wide.
MAX_SUPPRESSIONS = 5


# --------------------------------------------------------------------- #
# Meta: the full battery over the real tree
# --------------------------------------------------------------------- #


def test_repository_is_clean_under_full_battery():
    paths = [
        str(REPO_ROOT / "src" / "repro"),
        str(REPO_ROOT / "tests"),
        str(REPO_ROOT / "benchmarks"),
    ]
    result = run_analysis(paths, default_rules())
    assert result.unsuppressed == [], "\n" + "\n".join(
        f.render() for f in result.unsuppressed
    )
    assert len(result.suppressed) <= MAX_SUPPRESSIONS
    for finding in result.suppressed:
        assert finding.reason, f"suppression without reason: {finding.render()}"


def test_battery_covers_all_six_rules():
    assert [r.rule_id for r in default_rules()] == [
        "REP001",
        "REP002",
        "REP003",
        "REP004",
        "REP005",
        "REP006",
    ]


# --------------------------------------------------------------------- #
# CLI
# --------------------------------------------------------------------- #


def test_cli_exit_zero_and_json_report_on_clean_tree(tmp_path, capsys):
    target = tmp_path / "mod.py"
    target.write_text("x = 1\n")
    report = tmp_path / "report.json"
    code = cli_main(
        [str(target), "--format", "json", "--output", str(report)]
    )
    assert code == 0
    payload = json.loads(report.read_text())
    assert payload["version"] == 1
    assert payload["summary"]["unsuppressed"] == 0
    assert json.loads(capsys.readouterr().out)["version"] == 1


def test_cli_exit_one_on_findings(tmp_path, capsys):
    target = tmp_path / "mod.py"
    target.write_text("import pickle\n")
    assert cli_main([str(target)]) == 1
    assert "REP001" in capsys.readouterr().out


def test_cli_rule_filter_and_unknown_rule(tmp_path, capsys):
    target = tmp_path / "mod.py"
    target.write_text("import pickle\n")
    assert cli_main([str(target), "--rule", "REP006"]) == 0
    capsys.readouterr()
    with pytest.raises(SystemExit) as excinfo:
        cli_main([str(target), "--rule", "REP42"])
    assert excinfo.value.code == 2


def test_cli_list_rules(capsys):
    assert cli_main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule_id in ("REP001", "REP006"):
        assert rule_id in out


def test_cli_module_entry_point(tmp_path):
    target = tmp_path / "mod.py"
    target.write_text("import marshal\n")
    proc = subprocess.run(
        [sys.executable, "-m", "repro.analysis", str(target)],
        capture_output=True,
        text=True,
        cwd=str(REPO_ROOT),
        env={"PYTHONPATH": str(REPO_ROOT / "src"), "PATH": "/usr/bin:/bin"},
    )
    assert proc.returncode == 1
    assert "REP001" in proc.stdout


# --------------------------------------------------------------------- #
# mypy ratchet (exercised on canned reports: no mypy needed)
# --------------------------------------------------------------------- #

CANNED_REPORT = """\
src/repro/distributed/server.py:10: error: Incompatible return value  [return-value]
src/repro/distributed/client.py:20:5: error: Missing type parameters  [type-arg]
src/repro/learning/coverage.py:30: error: Argument 1 has incompatible type  [arg-type]
src/repro/learning/coverage.py:31: note: See https://example.invalid
tests/analysis/test_meta.py: note: not an error line
"""


def test_module_for_path_buckets_by_subpackage():
    assert module_for_path("src/repro/distributed/server.py") == "repro.distributed"
    assert module_for_path("src/repro/version.py") == "repro"
    assert module_for_path("src\\repro\\learning\\coverage.py") == "repro.learning"


def test_parse_report_counts_errors_only():
    counts = parse_report(CANNED_REPORT)
    assert counts == {"repro.distributed": 2, "repro.learning": 1}


def test_compare_flags_regressions_and_hints_improvements():
    regressions, improvements = compare(
        {"repro.learning": 5, "repro.obs": 1},
        {"repro.learning": 3, "repro.obs": 4},
    )
    assert len(regressions) == 1 and "repro.learning" in regressions[0]
    assert len(improvements) == 1 and "repro.obs" in improvements[0]


def test_ratchet_cli_passes_within_budget(tmp_path, capsys):
    report = tmp_path / "mypy.out"
    report.write_text(CANNED_REPORT)
    baseline = tmp_path / "baseline.json"
    baseline.write_text(
        json.dumps(
            {"modules": {"repro.distributed": 2, "repro.learning": 1}}
        )
    )
    code = ratchet_main(
        ["--from-report", str(report), "--baseline", str(baseline)]
    )
    assert code == 0
    assert "ok" in capsys.readouterr().out


def test_ratchet_cli_fails_on_regression(tmp_path, capsys):
    report = tmp_path / "mypy.out"
    report.write_text(CANNED_REPORT)
    baseline = tmp_path / "baseline.json"
    baseline.write_text(json.dumps({"modules": {"repro.distributed": 1}}))
    code = ratchet_main(
        ["--from-report", str(report), "--baseline", str(baseline)]
    )
    assert code == 1
    out = capsys.readouterr().out
    assert "FAIL" in out and "repro.learning" in out


def test_ratchet_update_writes_baseline(tmp_path):
    report = tmp_path / "mypy.out"
    report.write_text(CANNED_REPORT)
    baseline = tmp_path / "baseline.json"
    code = ratchet_main(
        [
            "--from-report",
            str(report),
            "--baseline",
            str(baseline),
            "--update",
        ]
    )
    assert code == 0
    assert load_baseline(baseline) == {
        "repro.distributed": 2,
        "repro.learning": 1,
    }
    payload = json.loads(baseline.read_text())
    assert payload["total"] == 3


def test_committed_baseline_is_well_formed():
    baseline = load_baseline(REPO_ROOT / "analysis" / "mypy_ratchet.json")
    assert baseline, "committed ratchet baseline must not be empty"
    assert all(v >= 0 for v in baseline.values())
    assert all(k == "repro" or k.startswith("repro.") for k in baseline)
