"""Per-rule good/bad fixtures: every rule must fire on its bad fixture and
stay silent on the corresponding good one."""

import textwrap

from repro.analysis.engine import run_analysis
from repro.analysis.rules import (
    CapabilityGuardRule,
    LockOrderRule,
    ObsDisciplineRule,
    TestsArePackagesRule,
    TypedWireErrorsRule,
    WireSafetyRule,
)


def _write(tmp_path, name, source):
    path = tmp_path / name
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(textwrap.dedent(source))
    return path


def _run(tmp_path, rule):
    return run_analysis(
        [str(tmp_path)], [rule], check_suppression_hygiene=False
    )


# --------------------------------------------------------------------- #
# REP001 wire-safety
# --------------------------------------------------------------------- #


def test_rep001_fires_on_pickle_import(tmp_path):
    _write(tmp_path, "mod.py", "import pickle\n")
    result = _run(tmp_path, WireSafetyRule())
    assert [f.rule for f in result.unsuppressed] == ["REP001"]


def test_rep001_fires_on_from_import_and_eval(tmp_path):
    _write(
        tmp_path,
        "mod.py",
        """\
        from marshal import dumps

        def f(expr):
            return eval(expr)
        """,
    )
    result = _run(tmp_path, WireSafetyRule())
    assert len(result.unsuppressed) == 2


def test_rep001_allowlists_the_trusted_seam(tmp_path):
    _write(tmp_path, "repro/distributed/worker.py", "import pickle\n")
    result = _run(tmp_path, WireSafetyRule())
    assert result.ok


def test_rep001_reasoned_import_noqa_excuses_same_file_calls(tmp_path):
    _write(
        tmp_path,
        "mod.py",
        """\
        import pickle  # repro: noqa[REP001] -- dumps-only fingerprint

        def fingerprint(obj):
            return pickle.dumps(obj)
        """,
    )
    result = _run(tmp_path, WireSafetyRule())
    assert result.ok
    assert len(result.suppressed) == 1


def test_rep001_unexcused_call_still_fires(tmp_path):
    _write(
        tmp_path,
        "mod.py",
        """\
        import pickle

        def load(blob):
            return pickle.loads(blob)
        """,
    )
    result = _run(tmp_path, WireSafetyRule())
    assert len(result.unsuppressed) == 2  # the import and the call


# --------------------------------------------------------------------- #
# REP002 capability-guard
# --------------------------------------------------------------------- #


def test_rep002_fires_on_unguarded_gated_call(tmp_path):
    _write(
        tmp_path,
        "mod.py",
        """\
        class Engine:
            def saturate(self, keys):
                return self.backend.neighbors_of_batch(keys)
        """,
    )
    result = _run(tmp_path, CapabilityGuardRule())
    assert [f.rule for f in result.unsuppressed] == ["REP002"]
    assert "supports_saturation_queries" in result.unsuppressed[0].message


def test_rep002_probe_before_call_is_clean(tmp_path):
    _write(
        tmp_path,
        "mod.py",
        """\
        class Engine:
            def saturate(self, keys):
                if not self.backend.supports_saturation_queries:
                    return None
                return self.backend.neighbors_of_batch(keys)
        """,
    )
    assert _run(tmp_path, CapabilityGuardRule()).ok


def test_rep002_getattr_string_probe_counts(tmp_path):
    _write(
        tmp_path,
        "mod.py",
        """\
        class Engine:
            def saturate(self, keys):
                if not getattr(self.backend, "supports_saturation_queries", False):
                    return None
                return self.backend.neighbors_of_batch(keys)
        """,
    )
    assert _run(tmp_path, CapabilityGuardRule()).ok


def test_rep002_declaring_class_is_exempt(tmp_path):
    _write(
        tmp_path,
        "mod.py",
        """\
        class ShardedBackend:
            supports_saturation_queries = True

            def neighbors(self, keys):
                return self.backend.neighbors_of_batch(keys)
        """,
    )
    assert _run(tmp_path, CapabilityGuardRule()).ok


def test_rep002_gated_constructor_needs_probe(tmp_path):
    _write(
        tmp_path,
        "mod.py",
        """\
        def start(coverage):
            return SaturationPrefetcher(coverage)
        """,
    )
    result = _run(tmp_path, CapabilityGuardRule())
    assert [f.rule for f in result.unsuppressed] == ["REP002"]


def test_rep002_guard_helper_counts_as_probe(tmp_path):
    _write(
        tmp_path,
        "mod.py",
        """\
        def start(coverage, instance):
            if not _prefetch_enabled(instance):
                return None
            return SaturationPrefetcher(coverage)
        """,
    )
    assert _run(tmp_path, CapabilityGuardRule()).ok


def test_rep002_instance_facade_calls_are_not_gated(tmp_path):
    _write(
        tmp_path,
        "mod.py",
        """\
        def saturate(instance, keys):
            return instance.neighbors_of_batch(keys)
        """,
    )
    assert _run(tmp_path, CapabilityGuardRule()).ok


# --------------------------------------------------------------------- #
# REP003 obs-discipline
# --------------------------------------------------------------------- #


def test_rep003_fires_on_adhoc_counter(tmp_path):
    _write(
        tmp_path,
        "repro/learning/mod.py",
        """\
        class Engine:
            def record(self):
                self.cache_hits += 1
        """,
    )
    result = _run(tmp_path, ObsDisciplineRule())
    assert [f.rule for f in result.unsuppressed] == ["REP003"]
    assert "cache_hits" in result.unsuppressed[0].message


def test_rep003_fires_on_time_time(tmp_path):
    _write(
        tmp_path,
        "repro/distributed/mod.py",
        """\
        import time

        def stamp():
            return time.time()
        """,
    )
    result = _run(tmp_path, ObsDisciplineRule())
    assert [f.rule for f in result.unsuppressed] == ["REP003"]


def test_rep003_registry_counter_is_clean(tmp_path):
    _write(
        tmp_path,
        "repro/learning/mod.py",
        """\
        class Engine:
            def record(self):
                self._c_cache_hits.inc()
        """,
    )
    assert _run(tmp_path, ObsDisciplineRule()).ok


def test_rep003_out_of_scope_dirs_are_ignored(tmp_path):
    _write(
        tmp_path,
        "repro/logic/mod.py",
        """\
        class Engine:
            def record(self):
                self.cache_hits += 1
        """,
    )
    assert _run(tmp_path, ObsDisciplineRule()).ok


def test_rep003_span_name_must_be_dotted(tmp_path):
    _write(
        tmp_path,
        "repro/learning/mod.py",
        """\
        def run():
            with span("saturate"):
                pass
        """,
    )
    result = _run(tmp_path, ObsDisciplineRule())
    assert [f.rule for f in result.unsuppressed] == ["REP003"]
    assert "noun.verb" in result.unsuppressed[0].message


def test_rep003_good_span_names_pass(tmp_path):
    _write(
        tmp_path,
        "repro/learning/mod.py",
        """\
        def run(kind):
            with span("learn.saturate", examples=3):
                pass
            with span(f"rpc.{kind}"):
                pass
        """,
    )
    assert _run(tmp_path, ObsDisciplineRule()).ok


def test_rep003_dynamic_span_without_literal_prefix_fires(tmp_path):
    _write(
        tmp_path,
        "repro/learning/mod.py",
        """\
        def run(kind):
            with span(f"{kind}.go"):
                pass
        """,
    )
    result = _run(tmp_path, ObsDisciplineRule())
    assert [f.rule for f in result.unsuppressed] == ["REP003"]


# --------------------------------------------------------------------- #
# REP004 lock-order
# --------------------------------------------------------------------- #


def test_rep004_detects_lock_cycle_across_files(tmp_path):
    _write(
        tmp_path,
        "a.py",
        """\
        class Store:
            def ab(self):
                with self.alpha_lock:
                    with self.beta_lock:
                        pass
        """,
    )
    _write(
        tmp_path,
        "b.py",
        """\
        class Store:
            def ba(self):
                with self.beta_lock:
                    with self.alpha_lock:
                        pass
        """,
    )
    result = _run(tmp_path, LockOrderRule())
    assert [f.rule for f in result.unsuppressed] == ["REP004"]
    assert "cycle" in result.unsuppressed[0].message


def test_rep004_consistent_order_is_clean(tmp_path):
    _write(
        tmp_path,
        "a.py",
        """\
        class Store:
            def ab(self):
                with self.alpha_lock:
                    with self.beta_lock:
                        pass

            def ab_again(self):
                with self.alpha_lock:
                    with self.beta_lock:
                        pass
        """,
    )
    assert _run(tmp_path, LockOrderRule()).ok


def test_rep004_blocking_recv_under_lock_fires(tmp_path):
    _write(
        tmp_path,
        "mod.py",
        """\
        class Client:
            def request(self, message):
                with self._lock:
                    self.transport.send(message)
                    return self.transport.recv()
        """,
    )
    result = _run(tmp_path, LockOrderRule())
    assert [f.rule for f in result.unsuppressed] == ["REP004"]
    assert ".recv()" in result.unsuppressed[0].message


def test_rep004_recv_outside_lock_is_clean(tmp_path):
    _write(
        tmp_path,
        "mod.py",
        """\
        class Client:
            def request(self, message):
                with self._lock:
                    self.transport.send(message)
                return self.transport.recv()
        """,
    )
    assert _run(tmp_path, LockOrderRule()).ok


def test_rep004_queue_get_without_timeout_under_lock_fires(tmp_path):
    _write(
        tmp_path,
        "mod.py",
        """\
        class Pump:
            def drain(self):
                with self._lock:
                    return self.queue.get()
        """,
    )
    result = _run(tmp_path, LockOrderRule())
    assert [f.rule for f in result.unsuppressed] == ["REP004"]


def test_rep004_dict_get_under_lock_is_clean(tmp_path):
    _write(
        tmp_path,
        "mod.py",
        """\
        class Registry:
            def lookup(self, client):
                with self._lock:
                    return self._queues.get(client)
        """,
    )
    assert _run(tmp_path, LockOrderRule()).ok


def test_rep004_queue_get_with_timeout_is_clean(tmp_path):
    _write(
        tmp_path,
        "mod.py",
        """\
        class Pump:
            def drain(self):
                with self._lock:
                    return self.queue.get(timeout=1.0)
        """,
    )
    assert _run(tmp_path, LockOrderRule()).ok


# --------------------------------------------------------------------- #
# REP005 typed-wire-errors
# --------------------------------------------------------------------- #


def test_rep005_handler_raising_runtimeerror_fires(tmp_path):
    _write(
        tmp_path,
        "repro/distributed/server.py",
        """\
        def handle_ping(payload):
            raise RuntimeError("not typed")
        """,
    )
    result = _run(tmp_path, TypedWireErrorsRule())
    assert [f.rule for f in result.unsuppressed] == ["REP005"]


def test_rep005_reaches_transitive_callees(tmp_path):
    _write(
        tmp_path,
        "repro/distributed/server.py",
        """\
        def handle_ping(payload):
            return _validate(payload)

        def _validate(payload):
            if payload is None:
                raise Exception("bad payload")
            return payload
        """,
    )
    result = _run(tmp_path, TypedWireErrorsRule())
    assert [f.rule for f in result.unsuppressed] == ["REP005"]
    assert "_validate" in result.unsuppressed[0].message


def test_rep005_typed_errors_and_unreachable_raises_are_clean(tmp_path):
    _write(
        tmp_path,
        "repro/distributed/server.py",
        """\
        def handle_ping(payload):
            if payload is None:
                raise WireFormatError("payload required")
            return payload

        def offline_helper():
            raise RuntimeError("not reachable from any handler")
        """,
    )
    assert _run(tmp_path, TypedWireErrorsRule()).ok


def test_rep005_other_modules_are_out_of_scope(tmp_path):
    _write(
        tmp_path,
        "repro/learning/coverage.py",
        """\
        def handle_ping(payload):
            raise RuntimeError("fine here: not a wire module")
        """,
    )
    assert _run(tmp_path, TypedWireErrorsRule()).ok


# --------------------------------------------------------------------- #
# REP006 tests-are-packages
# --------------------------------------------------------------------- #


def test_rep006_missing_init_fires(tmp_path):
    _write(tmp_path, "tests/sub/test_x.py", "def test_x():\n    pass\n")
    result = _run(tmp_path, TestsArePackagesRule())
    assert [f.rule for f in result.unsuppressed] == ["REP006"]
    assert result.unsuppressed[0].path.endswith("tests/sub/__init__.py")


def test_rep006_package_test_dir_is_clean(tmp_path):
    _write(tmp_path, "tests/sub/__init__.py", "")
    _write(tmp_path, "tests/sub/test_x.py", "def test_x():\n    pass\n")
    assert _run(tmp_path, TestsArePackagesRule()).ok


def test_rep006_non_test_dirs_are_ignored(tmp_path):
    _write(tmp_path, "pkg/mod.py", "x = 1\n")
    assert _run(tmp_path, TestsArePackagesRule()).ok
