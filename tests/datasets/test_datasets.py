"""Tests for the synthetic UW-CSE, HIV, and IMDb dataset generators."""


from repro.database.query import QueryEvaluator
from repro.datasets import hiv, imdb, uwcse
from repro.logic.parser import parse_clause


class TestUwCse:
    def test_variants_present(self, uwcse_bundle):
        assert uwcse_bundle.variant_names == [
            "original",
            "4nf",
            "denormalized1",
            "denormalized2",
        ]

    def test_relation_counts_shrink_with_composition(self, uwcse_bundle):
        sizes = [len(uwcse_bundle.schema(v)) for v in uwcse_bundle.variant_names]
        assert sizes == sorted(sizes, reverse=True)
        assert sizes[0] == 9 and sizes[-1] == 4

    def test_constraints_hold_on_every_variant(self, uwcse_bundle):
        for variant in uwcse_bundle.variant_names:
            instance = uwcse_bundle.instance(variant)
            assert instance.satisfies_all_constraints(), variant

    def test_transformations_are_invertible_on_data(self, uwcse_bundle):
        for variant in ["4nf", "denormalized1", "denormalized2"]:
            transformation = uwcse_bundle.transformation(variant)
            assert transformation.is_invertible_on(uwcse_bundle.base_instance)

    def test_examples_are_disjoint_and_ratio_close_to_two(self, uwcse_bundle):
        examples = uwcse_bundle.examples
        assert examples.positive_tuples().isdisjoint(examples.negative_tuples())
        assert len(examples.negatives) <= 2 * len(examples.positives)
        assert len(examples.positives) > 0

    def test_ground_truth_is_learnable_from_publications(self, uwcse_bundle):
        """Most advised pairs co-author a publication (the generator's signal)."""
        evaluator = QueryEvaluator(uwcse_bundle.instance("original"))
        clause = parse_clause(
            "advisedBy(x, y) :- publication(t, x), publication(t, y), professor(y)."
        )
        covered = sum(
            1
            for example in uwcse_bundle.examples.positives
            if evaluator.clause_covers_tuple(clause, example.values)
        )
        assert covered >= len(uwcse_bundle.examples.positives) * 0.6

    def test_generation_is_deterministic_per_seed(self):
        first = uwcse.generate_instance(uwcse.UwCseConfig(num_students=10), seed=3)
        second = uwcse.generate_instance(uwcse.UwCseConfig(num_students=10), seed=3)
        assert first[0].same_contents(second[0])
        assert first[1] == second[1]

    def test_statistics_table(self, uwcse_bundle):
        stats = uwcse_bundle.statistics()
        assert set(stats) == set(uwcse_bundle.variant_names)
        assert all(entry["tuples"] > 0 for entry in stats.values())


class TestHiv:
    def test_variants_present(self, hiv_bundle):
        assert hiv_bundle.variant_names == ["initial", "4nf1", "4nf2"]

    def test_constraints_hold_on_every_variant(self, hiv_bundle):
        for variant in hiv_bundle.variant_names:
            assert hiv_bundle.instance(variant).satisfies_all_constraints(), variant

    def test_4nf1_composes_bond_types(self, hiv_bundle):
        schema = hiv_bundle.schema("4nf1")
        assert schema.relation("bonds").arity == 6
        assert not schema.has_relation("btype1")

    def test_4nf2_decomposes_bonds(self, hiv_bundle):
        schema = hiv_bundle.schema("4nf2")
        assert schema.has_relation("bondSource")
        assert schema.has_relation("bondTarget")
        assert not schema.has_relation("bonds")

    def test_activity_rule_is_exact_on_initial_schema(self, hiv_bundle):
        """hivActive ⟺ a p2_1 nitrogen bonded to an oxygen (by construction)."""
        evaluator = QueryEvaluator(hiv_bundle.instance("initial"))
        clause_forward = parse_clause(
            "hivActive(c) :- compound(c, a), element_n(a), p2_1(a), bonds(b, a, o), element_o(o)."
        )
        clause_backward = parse_clause(
            "hivActive(c) :- compound(c, a), element_n(a), p2_1(a), bonds(b, o, a), element_o(o)."
        )
        derived = evaluator.evaluate_clause(clause_forward) | evaluator.evaluate_clause(
            clause_backward
        )
        positives = hiv_bundle.examples.positive_tuples()
        assert positives <= derived
        negatives = hiv_bundle.examples.negative_tuples()
        assert not (negatives & derived)

    def test_small_and_large_presets(self):
        small = hiv.load_small(seed=2)
        assert small.base_instance.total_tuples() > 0
        assert len(small.examples.positives) > 0


class TestImdb:
    def test_variants_present(self, imdb_bundle):
        assert imdb_bundle.variant_names == ["jmdb", "stanford", "denormalized"]

    def test_constraints_hold_on_every_variant(self, imdb_bundle):
        for variant in imdb_bundle.variant_names:
            assert imdb_bundle.instance(variant).satisfies_all_constraints(), variant

    def test_stanford_widens_movie(self, imdb_bundle):
        schema = imdb_bundle.schema("stanford")
        assert schema.relation("movie").arity == 8
        assert not schema.has_relation("movies2genre")
        assert schema.has_relation("genre")

    def test_denormalized_merges_links_with_entities(self, imdb_bundle):
        schema = imdb_bundle.schema("denormalized")
        assert schema.relation("movies2director").arity == 3
        assert not schema.has_relation("director")

    def test_drama_director_target_is_exact(self, imdb_bundle):
        evaluator = QueryEvaluator(imdb_bundle.instance("jmdb"))
        clause = parse_clause(
            "dramaDirector(d) :- movies2director(m, d), movies2genre(m, g), genre(g, drama)."
        )
        derived = evaluator.evaluate_clause(clause)
        assert imdb_bundle.examples.positive_tuples() == derived

    def test_transformations_invertible(self, imdb_bundle):
        for variant in ["stanford", "denormalized"]:
            transformation = imdb_bundle.transformation(variant)
            assert transformation.is_invertible_on(imdb_bundle.base_instance)
