"""Tests for repro.database.instance."""

import pytest

from repro.database.instance import DatabaseInstance, RelationInstance
from repro.database.schema import RelationSchema, Schema


class TestRelationInstance:
    """Relation-store interface tests, run against every backend via
    ``relation_factory`` (memory's ``RelationInstance`` and the SQLite
    relation must behave identically)."""

    def test_add_and_len(self, relation_factory):
        relation = relation_factory(RelationSchema("r", ["a", "b"]))
        relation.add(("x", "y"))
        relation.add(("x", "y"))  # duplicate ignored
        relation.add(("x", "z"))
        assert len(relation) == 2
        assert ("x", "y") in relation

    def test_arity_mismatch_rejected(self, relation_factory):
        relation = relation_factory(RelationSchema("r", ["a", "b"]))
        with pytest.raises(ValueError):
            relation.add(("only-one",))

    def test_remove(self, relation_factory):
        relation = relation_factory(RelationSchema("r", ["a"]), [("x",)])
        relation.remove(("x",))
        assert len(relation) == 0
        assert relation.tuples_containing("x") == set()
        with pytest.raises(KeyError):
            relation.remove(("x",))

    def test_tuples_containing_any_column(self, relation_factory):
        relation = relation_factory(
            RelationSchema("r", ["a", "b"]), [("x", "y"), ("y", "z")]
        )
        assert relation.tuples_containing("y") == {("x", "y"), ("y", "z")}

    def test_tuples_with_position(self, relation_factory):
        relation = relation_factory(
            RelationSchema("r", ["a", "b"]), [("x", "y"), ("y", "z")]
        )
        assert relation.tuples_with(0, "y") == {("y", "z")}
        assert relation.tuples_with(1, "y") == {("x", "y")}

    def test_tuples_matching_multiple_bindings(self, relation_factory):
        relation = relation_factory(
            RelationSchema("r", ["a", "b", "c"]),
            [("x", "y", "1"), ("x", "y", "2"), ("x", "z", "1")],
        )
        assert relation.tuples_matching({0: "x", 1: "y"}) == {
            ("x", "y", "1"),
            ("x", "y", "2"),
        }
        assert relation.tuples_matching({}) == relation.rows
        assert relation.tuples_matching({0: "nope"}) == set()

    def test_project_and_distinct_values(self, relation_factory):
        relation = relation_factory(
            RelationSchema("r", ["a", "b"]), [("x", "y"), ("x", "z")]
        )
        assert relation.project(["a"]) == {("x",)}
        assert relation.distinct_values("b") == {"y", "z"}

    def test_cross_backend_equality(self, relation_factory):
        rows = [("x", "y"), ("y", "z")]
        relation = relation_factory(RelationSchema("r", ["a", "b"]), rows)
        memory_twin = RelationInstance(RelationSchema("r", ["a", "b"]), rows)
        assert relation == memory_twin
        assert memory_twin == relation


class TestDatabaseInstance:
    def test_add_and_total_tuples(self, simple_schema):
        instance = DatabaseInstance(simple_schema)
        instance.add_tuple("r1", ("a1", "b1"))
        instance.add_tuples("r2", [("a1", "c1"), ("a1", "c2")])
        assert instance.total_tuples() == 3
        assert len(instance.relation("r1")) == 1

    def test_unknown_relation_raises(self, simple_schema):
        instance = DatabaseInstance(simple_schema)
        with pytest.raises(KeyError):
            instance.relation("nope")

    def test_tuples_containing_across_relations(self, simple_instance):
        found = simple_instance.tuples_containing("a1")
        relations = {name for name, _ in found}
        assert relations == {"r1", "r2"}

    def test_fd_satisfaction(self, simple_instance, simple_schema):
        fd = simple_schema.functional_dependencies[0]
        assert simple_instance.satisfies_fd(fd)
        simple_instance.add_tuple("r1", ("a1", "different"))
        assert not simple_instance.satisfies_fd(fd)

    def test_ind_satisfaction(self, simple_instance, simple_schema):
        ind = simple_schema.inclusion_dependencies[0]
        assert simple_instance.satisfies_ind(ind)
        simple_instance.add_tuple("r1", ("a_unmatched", "b9"))
        assert not simple_instance.satisfies_ind(ind)

    def test_subset_ind_only_checks_one_direction(self, simple_schema):
        schema = simple_schema.with_subset_inds_only()
        instance = DatabaseInstance(schema)
        instance.add_tuple("r1", ("a1", "b1"))
        instance.add_tuples("r2", [("a1", "c1"), ("a2", "c2")])
        ind = schema.inclusion_dependencies[0]
        assert instance.satisfies_ind(ind)
        assert not instance.ind_holds_with_equality(ind)

    def test_satisfies_all_constraints_and_violations(self, simple_instance):
        assert simple_instance.satisfies_all_constraints()
        assert simple_instance.violated_constraints() == []
        simple_instance.add_tuple("r2", ("a_extra", "c9"))
        assert not simple_instance.satisfies_all_constraints()
        assert len(simple_instance.violated_constraints()) == 1

    def test_copy_and_same_contents(self, simple_instance):
        duplicate = simple_instance.copy()
        assert duplicate.same_contents(simple_instance)
        duplicate.add_tuple("r1", ("a9", "b9"))
        assert not duplicate.same_contents(simple_instance)
