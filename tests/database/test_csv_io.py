"""Tests for CSV persistence of database instances."""

from repro.database.csv_io import load_instance, load_schema, relation_counts, save_instance


class TestCsvRoundTrip:
    def test_schema_round_trip(self, simple_instance, tmp_path):
        save_instance(simple_instance, tmp_path)
        loaded_schema = load_schema(tmp_path)
        assert set(loaded_schema.relation_names) == {"r1", "r2"}
        assert len(loaded_schema.functional_dependencies) == 1
        assert len(loaded_schema.inclusion_dependencies) == 1
        assert loaded_schema.inclusion_dependencies[0].with_equality

    def test_instance_round_trip(self, simple_instance, tmp_path):
        save_instance(simple_instance, tmp_path)
        loaded = load_instance(tmp_path)
        assert loaded.total_tuples() == simple_instance.total_tuples()
        assert loaded.relation("r1").rows == simple_instance.relation("r1").rows

    def test_relation_counts(self, simple_instance):
        counts = relation_counts(simple_instance)
        assert counts == {"r1": 3, "r2": 4}

    def test_missing_relation_file_tolerated(self, simple_instance, tmp_path):
        save_instance(simple_instance, tmp_path)
        (tmp_path / "r2.csv").unlink()
        loaded = load_instance(tmp_path)
        assert len(loaded.relation("r2")) == 0
        assert len(loaded.relation("r1")) == 3
