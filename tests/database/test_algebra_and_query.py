"""Tests for relational algebra helpers and conjunctive-query evaluation."""

import pytest

from repro.database.algebra import (
    join_is_globally_consistent,
    join_is_pairwise_consistent,
    named_rows,
    natural_join_many,
    natural_join_rows,
    project_rows,
    rows_to_tuples,
    select_rows,
)
from repro.database.instance import DatabaseInstance, RelationInstance
from repro.database.query import QueryEvaluator, evaluate_clause, evaluate_definition
from repro.database.schema import RelationSchema, Schema
from repro.logic.clauses import HornDefinition
from repro.logic.parser import parse_clause


class TestAlgebra:
    def test_named_rows(self):
        relation = RelationInstance(RelationSchema("r", ["a", "b"]), [("x", "y")])
        assert named_rows(relation) == [{"a": "x", "b": "y"}]

    def test_project_rows_deduplicates(self):
        rows = [{"a": "x", "b": "y"}, {"a": "x", "b": "z"}]
        assert project_rows(rows, ["a"]) == [{"a": "x"}]

    def test_select_rows(self):
        rows = [{"a": "x"}, {"a": "y"}]
        assert select_rows(rows, {"a": "y"}) == [{"a": "y"}]

    def test_natural_join_on_shared_attribute(self):
        left = [{"a": "1", "b": "x"}, {"a": "2", "b": "y"}]
        right = [{"a": "1", "c": "p"}, {"a": "3", "c": "q"}]
        joined = natural_join_rows(left, right)
        assert joined == [{"a": "1", "b": "x", "c": "p"}]

    def test_natural_join_many(self):
        first = [{"a": "1", "b": "x"}]
        second = [{"a": "1", "c": "y"}]
        third = [{"c": "y", "d": "z"}]
        joined = natural_join_many([first, second, third])
        assert joined == [{"a": "1", "b": "x", "c": "y", "d": "z"}]

    def test_rows_to_tuples_order(self):
        schema = RelationSchema("r", ["b", "a"])
        assert rows_to_tuples([{"a": "1", "b": "2"}], schema) == [("2", "1")]

    def test_global_and_pairwise_consistency(self):
        left = RelationInstance(RelationSchema("l", ["a", "b"]), [("1", "x"), ("2", "y")])
        right = RelationInstance(RelationSchema("r", ["a", "c"]), [("1", "p"), ("2", "q")])
        assert join_is_pairwise_consistent([left, right])
        assert join_is_globally_consistent([left, right])
        # Add a dangling tuple on the right: consistency breaks.
        right.add(("3", "z"))
        assert not join_is_pairwise_consistent([left, right])
        assert not join_is_globally_consistent([left, right])


@pytest.fixture
def family_instance() -> DatabaseInstance:
    schema = Schema(
        [
            RelationSchema("parent", ["parent", "child"]),
            RelationSchema("female", ["person"]),
        ],
        name="family",
    )
    instance = DatabaseInstance(schema)
    instance.add_tuples(
        "parent",
        [("ann", "bob"), ("ann", "carol"), ("bob", "dave"), ("carol", "eve")],
    )
    instance.add_tuples("female", [("ann",), ("carol",), ("eve",)])
    return instance


class TestQueryEvaluator:
    def test_evaluate_simple_clause(self, family_instance):
        clause = parse_clause("mother(x, y) :- parent(x, y), female(x).")
        results = evaluate_clause(family_instance, clause)
        assert results == {("ann", "bob"), ("ann", "carol"), ("carol", "eve")}

    def test_evaluate_join_clause(self, family_instance):
        clause = parse_clause("grandparent(x, z) :- parent(x, y), parent(y, z).")
        results = evaluate_clause(family_instance, clause)
        assert results == {("ann", "dave"), ("ann", "eve")}

    def test_constants_in_body(self, family_instance):
        clause = parse_clause("childOfAnn(x) :- parent(ann, x).")
        assert evaluate_clause(family_instance, clause) == {("bob",), ("carol",)}

    def test_unsafe_clause_rejected(self, family_instance):
        clause = parse_clause("weird(x, y) :- female(x).")
        with pytest.raises(ValueError):
            evaluate_clause(family_instance, clause)

    def test_unknown_predicate_yields_empty(self, family_instance):
        clause = parse_clause("q(x) :- nothere(x).")
        assert evaluate_clause(family_instance, clause) == set()

    def test_evaluate_definition_unions_clauses(self, family_instance):
        definition = HornDefinition(
            "interesting",
            [
                parse_clause("interesting(x) :- parent(x, y), female(x)."),
                parse_clause("interesting(x) :- parent(y, x), parent(x, z)."),
            ],
        )
        results = evaluate_definition(family_instance, definition)
        assert ("ann", ) in results and ("carol",) in results and ("bob",) in results

    def test_clause_covers_tuple(self, family_instance):
        evaluator = QueryEvaluator(family_instance)
        clause = parse_clause("mother(x, y) :- parent(x, y), female(x).")
        assert evaluator.clause_covers_tuple(clause, ("ann", "bob"))
        assert not evaluator.clause_covers_tuple(clause, ("bob", "dave"))
        assert not evaluator.clause_covers_tuple(clause, ("ann",))

    def test_definition_covers_tuple(self, family_instance):
        evaluator = QueryEvaluator(family_instance)
        definition = HornDefinition(
            "mother", [parse_clause("mother(x, y) :- parent(x, y), female(x).")]
        )
        assert evaluator.definition_covers_tuple(definition, ("carol", "eve"))

    def test_count_bindings_with_limit(self, family_instance):
        evaluator = QueryEvaluator(family_instance)
        clause = parse_clause("p(x, y) :- parent(x, y).")
        assert evaluator.count_bindings(clause.body) == 4
        assert evaluator.count_bindings(clause.body, limit=2) == 2

    def test_repeated_variable_in_body(self, family_instance):
        clause = parse_clause("selfparent(x) :- parent(x, x).")
        assert evaluate_clause(family_instance, clause) == set()
