"""Tests for repro.database.schema and repro.database.constraints."""

import pytest

from repro.database.constraints import (
    FunctionalDependency,
    InclusionDependency,
    compute_inclusion_classes,
    inds_are_cyclic,
)
from repro.database.schema import RelationSchema, Schema


class TestRelationSchema:
    def test_arity_and_positions(self):
        relation = RelationSchema("r", ["a", "b", "c"])
        assert relation.arity == 3
        assert relation.position_of("b") == 1
        assert relation.positions_of(["c", "a"]) == (2, 0)

    def test_unknown_attribute_raises(self):
        relation = RelationSchema("r", ["a"])
        with pytest.raises(KeyError):
            relation.position_of("zzz")

    def test_duplicate_attributes_rejected(self):
        with pytest.raises(ValueError):
            RelationSchema("r", ["a", "a"])

    def test_shared_attributes(self):
        left = RelationSchema("r", ["a", "b"])
        right = RelationSchema("s", ["b", "c"])
        assert left.shares_attributes_with(right) == ("b",)
        assert right.shares_attributes_with(RelationSchema("t", ["x"])) == ()


class TestInclusionDependency:
    def test_requires_equal_length_attribute_lists(self):
        with pytest.raises(ValueError):
            InclusionDependency("r", ["a", "b"], "s", ["a"])

    def test_other_side(self):
        ind = InclusionDependency("r", ["a"], "s", ["x"])
        assert ind.other_side("r") == ("s", ("a",), ("x",))
        assert ind.other_side("s") == ("r", ("x",), ("a",))
        with pytest.raises(ValueError):
            ind.other_side("zzz")

    def test_reversed_and_subset_form(self):
        ind = InclusionDependency("r", ["a"], "s", ["x"], with_equality=True)
        assert ind.reversed().left == "s"
        assert ind.reversed().with_equality
        assert not ind.as_subset().with_equality

    def test_involves(self):
        ind = InclusionDependency("r", ["a"], "s", ["x"])
        assert ind.involves("r") and ind.involves("s") and not ind.involves("t")


class TestInclusionClasses:
    def test_equality_inds_group_relations(self):
        inds = [
            InclusionDependency("s1", ["a"], "s2", ["a"], with_equality=True),
            InclusionDependency("s2", ["b"], "s3", ["b"], with_equality=True),
        ]
        classes = compute_inclusion_classes(["s1", "s2", "s3", "s4"], inds)
        sizes = sorted(len(c) for c in classes)
        assert sizes == [1, 3]

    def test_subset_inds_do_not_group_by_default(self):
        inds = [InclusionDependency("s1", ["a"], "s2", ["a"])]
        classes = compute_inclusion_classes(["s1", "s2"], inds)
        assert all(len(c) == 1 for c in classes)

    def test_subset_inds_group_when_enabled(self):
        inds = [InclusionDependency("s1", ["a"], "s2", ["a"])]
        classes = compute_inclusion_classes(["s1", "s2"], inds, include_subset_inds=True)
        assert any(len(c) == 2 for c in classes)

    def test_inds_for_member(self):
        ind = InclusionDependency("s1", ["a"], "s2", ["a"], with_equality=True)
        classes = compute_inclusion_classes(["s1", "s2"], [ind])
        multi = next(c for c in classes if len(c) == 2)
        assert multi.inds_for("s1") == [ind]
        assert multi.inds_for("s2") == [ind]

    def test_acyclic_inds_detected(self):
        inds = [
            InclusionDependency("s1", ["a"], "s2", ["a"], with_equality=True),
            InclusionDependency("s2", ["b"], "s3", ["b"], with_equality=True),
        ]
        assert not inds_are_cyclic(inds)

    def test_cyclic_inds_detected(self):
        # The Section 7.1 example: S1(A,B), S2(B,C), S3(C,A) joined in a cycle
        # over different attributes.
        inds = [
            InclusionDependency("s1", ["b"], "s2", ["b"], with_equality=True),
            InclusionDependency("s2", ["c"], "s3", ["c"], with_equality=True),
            InclusionDependency("s3", ["a"], "s1", ["a"], with_equality=True),
        ]
        assert inds_are_cyclic(inds)


class TestSchema:
    def test_relation_lookup(self, simple_schema):
        assert simple_schema.relation("r1").arity == 2
        assert simple_schema.has_relation("r2")
        assert "r1" in simple_schema
        with pytest.raises(KeyError):
            simple_schema.relation("nope")

    def test_duplicate_relation_rejected(self):
        with pytest.raises(ValueError):
            Schema([RelationSchema("r", ["a"]), RelationSchema("r", ["b"])])

    def test_constraint_validation(self):
        with pytest.raises(KeyError):
            Schema(
                [RelationSchema("r", ["a"])],
                [FunctionalDependency("r", ["zzz"], ["a"])],
            )

    def test_inds_involving(self, simple_schema):
        assert len(simple_schema.inds_involving("r1")) == 1
        assert len(simple_schema.inds_involving("r2")) == 1

    def test_equality_and_subset_ind_partition(self, simple_schema):
        assert len(simple_schema.equality_inds()) == 1
        assert simple_schema.subset_inds() == []

    def test_inclusion_classes_cached_and_correct(self, simple_schema):
        classes_first = simple_schema.inclusion_classes()
        classes_second = simple_schema.inclusion_classes()
        assert classes_first is classes_second
        assert simple_schema.inclusion_class_of("r1") is not None
        assert simple_schema.inclusion_class_of("r1").members == {"r1", "r2"}

    def test_with_subset_inds_only(self, simple_schema):
        weakened = simple_schema.with_subset_inds_only()
        assert weakened.equality_inds() == []
        assert len(weakened.subset_inds()) == 1
        # The original schema is unchanged.
        assert len(simple_schema.equality_inds()) == 1

    def test_with_constraints_copy(self, simple_schema):
        copy = simple_schema.with_constraints(inclusion_dependencies=[], name="bare")
        assert copy.name == "bare"
        assert copy.inclusion_dependencies == []
        assert len(copy) == len(simple_schema)
