"""Cross-backend parity: all backends must be observationally identical.

These tests materialize the same data on the memory, sqlite, and
sqlite-pooled backends and assert that query evaluation, binding counts,
and query-based coverage (sequential and batched) return identical results
— the invariant ``bench_backend_parity.py`` times at larger scale.
"""

import pytest

from repro.castor.bottom_clause import CastorBottomClauseBuilder, CastorBottomClauseConfig
from repro.database import backend_names, create_backend
from repro.database.instance import DatabaseInstance
from repro.database.query import QueryEvaluator
from repro.learning.coverage import QueryCoverageEngine, make_coverage_engine
from repro.logic.parser import parse_clause

BACKENDS = ("memory", "sqlite", "sqlite-pooled")


def _assert_all_equal(per_backend, context=""):
    """All backends must produce the reference (memory) result."""
    reference = per_backend["memory"]
    for backend, result in per_backend.items():
        assert result == reference, f"{backend} disagrees with memory {context}"


def _covered_sets(bundle, variant, clauses):
    """Per-backend, per-clause frozensets of covered example values."""
    results = {}
    examples = bundle.examples.all_examples()
    for backend in BACKENDS:
        instance = bundle.instance(variant).with_backend(backend)
        engine = QueryCoverageEngine(instance)
        results[backend] = [
            frozenset(e.values for e in engine.covered_examples(clause, examples))
            for clause in clauses
        ]
    return results


def _bottom_clauses(instance, positives, count=4):
    builder = CastorBottomClauseBuilder(
        instance,
        config=CastorBottomClauseConfig(
            max_depth=2, max_distinct_variables=10, max_total_literals=20
        ),
    )
    clauses = [builder.build(e) for e in positives[:count]]
    return [c for c in clauses if c.body]


class TestCoverageParity:
    def test_uwcse_covered_examples_identical(self, uwcse_bundle):
        variant = uwcse_bundle.variant_names[0]
        instance = uwcse_bundle.instance(variant)
        clauses = _bottom_clauses(instance, uwcse_bundle.examples.positives)
        assert clauses, "workload produced no candidate clauses"
        results = _covered_sets(uwcse_bundle, variant, clauses)
        _assert_all_equal(results, "on uwcse")

    def test_hiv_covered_examples_identical(self, hiv_bundle):
        variant = hiv_bundle.variant_names[0]
        instance = hiv_bundle.instance(variant)
        clauses = _bottom_clauses(instance, hiv_bundle.examples.positives)
        assert clauses, "workload produced no candidate clauses"
        results = _covered_sets(hiv_bundle, variant, clauses)
        _assert_all_equal(results, "on hiv")

    def test_uwcse_all_variants_agree_across_backends(self, uwcse_bundle):
        clause_by_variant = {
            "original": "advisedBy(x, y) :- publication(t, x), publication(t, y), professor(y).",
            "4nf": "advisedBy(x, y) :- publication(t, x), publication(t, y), professor(y, p).",
        }
        examples = uwcse_bundle.examples.all_examples()
        for variant, text in clause_by_variant.items():
            clause = parse_clause(text)
            per_backend = {}
            for backend in BACKENDS:
                instance = uwcse_bundle.instance(variant).with_backend(backend)
                engine = QueryCoverageEngine(instance)
                per_backend[backend] = frozenset(
                    e.values for e in engine.covered_examples(clause, examples)
                )
            _assert_all_equal(per_backend, f"on variant {variant}")


class TestEvaluatorParity:
    def test_evaluate_clause_and_counts(self, uwcse_bundle):
        variant = uwcse_bundle.variant_names[0]
        memory_instance = uwcse_bundle.instance(variant).with_backend("memory")
        clause = parse_clause(
            "advisedBy(x, y) :- publication(t, x), publication(t, y), professor(y)."
        )
        memory_eval = QueryEvaluator(memory_instance)
        for backend in BACKENDS[1:]:
            other_eval = QueryEvaluator(memory_instance.with_backend(backend))
            assert memory_eval.evaluate_clause(clause) == other_eval.evaluate_clause(
                clause
            ), backend
            assert memory_eval.count_bindings(clause.body) == other_eval.count_bindings(
                clause.body
            ), backend
            assert memory_eval.count_bindings(
                clause.body, limit=3
            ) == other_eval.count_bindings(clause.body, limit=3), backend

    def test_bindings_for_body_same_multiset(self, simple_schema):
        clause = parse_clause("q(x) :- r1(x, b), r2(x, c).")
        bindings = {}
        for backend in BACKENDS:
            instance = DatabaseInstance(simple_schema, backend=backend)
            instance.add_tuples("r1", [("a1", "b1"), ("a2", "b2")])
            instance.add_tuples("r2", [("a1", "c1"), ("a1", "c2"), ("a2", "c3")])
            evaluator = QueryEvaluator(instance)
            bindings[backend] = sorted(
                tuple(sorted((v.name, value) for v, value in binding.items()))
                for binding in evaluator.bindings_for_body(clause.body)
            )
        _assert_all_equal(bindings, "for bindings_for_body")

    def test_unknown_relation_and_arity_mismatch_are_empty(self):
        from repro.database.schema import RelationSchema, Schema

        schema = Schema([RelationSchema("r", ["a", "b"])], name="tiny")
        for backend in BACKENDS:
            instance = DatabaseInstance(schema, backend=backend)
            instance.add_tuple("r", ("x", "y"))
            evaluator = QueryEvaluator(instance)
            missing = parse_clause("q(x) :- nope(x).")
            assert not evaluator.body_is_satisfiable(missing.body)
            wrong_arity = parse_clause("q(x) :- r(x).")
            assert not evaluator.body_is_satisfiable(wrong_arity.body)


class TestBackendPlumbing:
    def test_registry_names_and_errors(self):
        assert set(BACKENDS) <= set(backend_names())
        with pytest.raises(ValueError):
            create_backend("voltdb")

    def test_with_backend_roundtrip(self, simple_instance):
        for backend in BACKENDS:
            converted = simple_instance.with_backend(backend)
            assert converted.backend_name == backend
            assert converted.same_contents(simple_instance)
            assert converted == simple_instance

    def test_make_coverage_engine_backend_knob(self, uwcse_bundle):
        instance = uwcse_bundle.instance(uwcse_bundle.variant_names[0])
        engine = make_coverage_engine(instance, strategy="query", backend="sqlite")
        assert engine.instance.backend_name == "sqlite"
        with pytest.raises(ValueError):
            make_coverage_engine(instance, strategy="magic")

    def test_bundle_with_backend(self, uwcse_bundle):
        sqlite_bundle = uwcse_bundle.with_backend("sqlite")
        variant = sqlite_bundle.variant_names[0]
        assert sqlite_bundle.instance(variant).backend_name == "sqlite"
        assert sqlite_bundle.instance(variant).same_contents(
            uwcse_bundle.instance(variant)
        )
        assert uwcse_bundle.with_backend(uwcse_bundle.backend) is uwcse_bundle


class TestPooledBackend:
    """Behavior specific to the sqlite-pooled snapshot machinery."""

    def _instance(self, simple_schema):
        instance = DatabaseInstance(simple_schema, backend="sqlite-pooled")
        instance.add_tuples("r1", [("a1", "b1"), ("a2", "b2"), ("a3", "b3")])
        instance.add_tuples("r2", [("a1", "c1"), ("a2", "c2"), ("a3", "c3")])
        return instance

    def test_batch_matches_single_calls(self, simple_schema):
        instance = self._instance(simple_schema)
        clauses = [
            parse_clause("q(x) :- r1(x, b), r2(x, c)."),
            parse_clause("q(x) :- r1(x, b)."),
            parse_clause("q(x) :- r2(x, c), r1(x, b)."),
        ]
        candidates = [("a1",), ("a2",), ("a3",), ("missing",)]
        backend = instance.backend
        singles = [backend.covered_head_tuples(c, candidates) for c in clauses]
        for parallelism in (None, 1, 3):
            batched = backend.covered_head_tuples_batch(
                clauses, candidates, parallelism=parallelism
            )
            assert batched == singles

    def test_snapshots_see_mutations(self, simple_schema):
        instance = self._instance(simple_schema)
        clause = parse_clause("q(x) :- r1(x, b).")
        candidates = [("a1",), ("a9",)]
        backend = instance.backend
        before = backend.covered_head_tuples_batch([clause] * 4, candidates, parallelism=2)
        assert before[0] == {("a1",)}
        instance.add_tuple("r1", ("a9", "b9"))
        after = backend.covered_head_tuples_batch([clause] * 4, candidates, parallelism=2)
        assert after[0] == {("a1",), ("a9",)}
        instance.relation("r1").remove(("a9", "b9"))
        final = backend.covered_head_tuples_batch([clause] * 4, candidates, parallelism=2)
        assert final[0] == {("a1",)}

    def test_pool_reuses_and_refreshes_snapshots(self, simple_schema):
        instance = self._instance(simple_schema)
        pool = instance.backend.pool
        with pool.lease():
            pass
        taken = pool.snapshots_taken
        assert taken == 1
        # No mutation since the snapshot: the idle connection is reused as-is.
        with pool.lease():
            pass
        assert pool.snapshots_taken == taken
        # A mutation stales the state token: the next lease re-copies.
        instance.add_tuple("r1", ("a9", "b9"))
        with pool.lease() as snapshot:
            rows = {row[0] for row in snapshot.execute('SELECT c0 FROM "rel_r1"')}
        assert pool.snapshots_taken == taken + 1
        assert "a9" in rows

    def test_scratch_reads_do_not_invalidate_snapshots(self, simple_schema):
        """Temp-table writes from coverage queries must not stale the pool."""
        instance = self._instance(simple_schema)
        backend = instance.backend
        pool = backend.pool
        with pool.lease():
            pass
        taken = pool.snapshots_taken
        # A single coverage call creates + drops a temp table on the primary
        # connection; that is scratch work, not a data change.
        clause = parse_clause("q(x) :- r1(x, b).")
        assert backend.covered_head_tuples(clause, [("a1",)]) == {("a1",)}
        with pool.lease():
            pass
        assert pool.snapshots_taken == taken

    def test_registry_and_default_pool_size(self):
        backend = create_backend("sqlite-pooled")
        assert backend.name == "sqlite-pooled"
        assert backend.supports_compiled_queries
        assert backend.pool_size >= 1
