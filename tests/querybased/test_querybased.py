"""Tests for the MQ/EQ oracle, the A2 learner, and the random definition generator."""


from repro.datasets import uwcse
from repro.logic.clauses import HornDefinition
from repro.logic.parser import parse_clause, parse_definition
from repro.querybased.a2 import A2Learner, A2Parameters
from repro.querybased.oracle import GroundExample, HornOracle, canonical_grounding
from repro.querybased.random_definitions import RandomDefinitionConfig, RandomDefinitionGenerator


TARGET_DEFINITION = parse_definition(
    """
    target(x, y) :- parent(x, z), parent(z, y).
    target(x, y) :- married(x, y).
    """
)


class TestOracle:
    def test_membership_of_entailed_example(self):
        oracle = HornOracle(TARGET_DEFINITION)
        example = canonical_grounding(TARGET_DEFINITION.clauses[0])
        assert oracle.membership(example)
        assert oracle.membership_queries == 1

    def test_membership_of_non_entailed_example(self):
        oracle = HornOracle(TARGET_DEFINITION)
        example = canonical_grounding(parse_clause("target(x, y) :- sibling(x, y)."))
        assert not oracle.membership(example)

    def test_equivalence_of_exact_hypothesis(self):
        oracle = HornOracle(TARGET_DEFINITION)
        assert oracle.equivalence(TARGET_DEFINITION) is None

    def test_equivalence_returns_counterexample_for_incomplete_hypothesis(self):
        oracle = HornOracle(TARGET_DEFINITION)
        partial = HornDefinition("target", [TARGET_DEFINITION.clauses[0]])
        counterexample = oracle.equivalence(partial)
        assert counterexample is not None
        assert counterexample.head.predicate == "target"

    def test_equivalence_flags_overgeneral_hypothesis(self):
        oracle = HornOracle(TARGET_DEFINITION)
        overgeneral = parse_definition("target(x, y) :- parent(x, y).")
        assert oracle.equivalence(overgeneral) is not None

    def test_canonical_grounding_is_ground(self):
        example = canonical_grounding(TARGET_DEFINITION.clauses[0])
        assert example.head.is_ground()
        assert all(atom.is_ground() for atom in example.body)

    def test_query_counters(self):
        oracle = HornOracle(TARGET_DEFINITION)
        oracle.membership(canonical_grounding(TARGET_DEFINITION.clauses[0]))
        oracle.equivalence(HornDefinition("target"))
        counts = oracle.query_counts()
        assert counts == {"equivalence_queries": 1, "membership_queries": 1}
        oracle.reset_counts()
        assert oracle.query_counts()["membership_queries"] == 0


class TestA2Learner:
    def test_learns_single_clause_definition_exactly(self):
        target = parse_definition("target(x, y) :- parent(x, z), parent(z, y).")
        oracle = HornOracle(target)
        result = A2Learner().learn(oracle, "target")
        assert result.converged
        assert oracle.equivalence(result.hypothesis) is None

    def test_learns_multi_clause_definition(self):
        oracle = HornOracle(TARGET_DEFINITION)
        result = A2Learner().learn(oracle, "target")
        assert result.converged
        assert len(result.hypothesis) == 2

    def test_query_counts_are_reported(self):
        oracle = HornOracle(TARGET_DEFINITION)
        result = A2Learner().learn(oracle, "target")
        assert result.equivalence_queries >= 2
        assert result.membership_queries > 0
        assert result.as_dict()["converged"]

    def test_minimization_drops_irrelevant_body_atoms(self):
        target = parse_definition("target(x) :- p(x, y).")
        oracle = HornOracle(target)
        learner = A2Learner()
        noisy = GroundExample(
            parse_clause("target(c0) :- p(c0, c1), q(c2, c3).").head,
            parse_clause("target(c0) :- p(c0, c1), q(c2, c3).").body,
        )
        minimized = learner._minimize(noisy, oracle)
        predicates = {atom.predicate for atom in minimized.body}
        assert predicates == {"p"}

    def test_more_decomposed_targets_need_more_membership_queries(self):
        """The Figure 3 effect in miniature: longer bodies ⇒ more MQs."""
        composed = parse_definition("target(x) :- wide(x, y, z).")
        decomposed = parse_definition("target(x) :- left(x, y), middle(x, z), right(x, w).")
        oracle_composed = HornOracle(composed)
        oracle_decomposed = HornOracle(decomposed)
        A2Learner().learn(oracle_composed, "target")
        A2Learner().learn(oracle_decomposed, "target")
        assert (
            oracle_decomposed.membership_queries >= oracle_composed.membership_queries
        )

    def test_respects_equivalence_query_budget(self):
        oracle = HornOracle(TARGET_DEFINITION)
        result = A2Learner(A2Parameters(max_equivalence_queries=1)).learn(oracle, "target")
        assert result.equivalence_queries <= 2


class TestRandomDefinitions:
    def test_generates_safe_definitions(self):
        schema = uwcse.schema_variants()[3].schema  # denormalized2
        generator = RandomDefinitionGenerator(
            schema, RandomDefinitionConfig(num_clauses=2, num_variables=5), seed=11
        )
        definition = generator.generate()
        assert len(definition) == 2
        assert definition.is_safe()

    def test_variable_budget_respected(self):
        schema = uwcse.schema_variants()[3].schema
        for budget in (4, 6, 8):
            generator = RandomDefinitionGenerator(
                schema, RandomDefinitionConfig(num_variables=budget), seed=3
            )
            clause = generator.generate().clauses[0]
            assert len(clause.variables()) <= max(budget, clause.head.arity)

    def test_deterministic_per_seed(self):
        schema = uwcse.schema_variants()[0].schema
        first = RandomDefinitionGenerator(schema, seed=5).generate()
        second = RandomDefinitionGenerator(schema, seed=5).generate()
        assert str(first) == str(second)

    def test_generate_many(self):
        schema = uwcse.schema_variants()[0].schema
        definitions = RandomDefinitionGenerator(schema, seed=1).generate_many(5)
        assert len(definitions) == 5
