"""Shard-count and parallelism invariance of the ``sqlite-sharded`` backend.

The acceptance property: coverage results are **byte-identical** for every
``shards`` x ``parallelism`` combination, and identical to the
single-process backends — sharding only moves work, never answers.
"""

from __future__ import annotations

import pickle

import pytest

from repro.distributed import SHARDING_STRATEGIES
from repro.learning.coverage import (
    BatchCoverageEngine,
    QueryCoverageEngine,
    SubsumptionCoverageEngine,
)


def result_bytes(batch_lists):
    """Canonical serialized form of a batch result, for byte-level equality."""
    return pickle.dumps(
        [tuple(e.values for e in per_clause) for per_clause in batch_lists]
    )


@pytest.fixture(scope="module")
def workload(small_uwcse):
    """Reference results plus one sharded instance per shard count."""
    _bundle, instance, examples, clauses = small_uwcse
    reference = {
        "query": result_bytes(
            BatchCoverageEngine(
                QueryCoverageEngine(instance)
            ).covered_examples_batch(clauses, examples)
        ),
        "subsumption": result_bytes(
            BatchCoverageEngine(
                SubsumptionCoverageEngine(instance)
            ).covered_examples_batch(clauses, examples)
        ),
    }
    sharded = {}
    for shards in (1, 2, 4):
        converted = instance.with_backend("sqlite-sharded")
        converted.backend.configure_sharding(shards=shards)
        sharded[shards] = converted
    yield reference, sharded, examples, clauses
    for converted in sharded.values():
        converted.backend.close()


@pytest.mark.parametrize("parallelism", [1, 4])
@pytest.mark.parametrize("shards", [1, 2, 4])
def test_query_coverage_is_shard_and_parallelism_invariant(
    workload, shards, parallelism
):
    reference, sharded, examples, clauses = workload
    engine = BatchCoverageEngine(
        QueryCoverageEngine(sharded[shards]), parallelism=parallelism
    )
    got = engine.covered_examples_batch(clauses, examples)
    assert result_bytes(got) == reference["query"]


@pytest.mark.parametrize("parallelism", [1, 4])
@pytest.mark.parametrize("shards", [1, 2, 4])
def test_subsumption_coverage_is_shard_and_parallelism_invariant(
    workload, shards, parallelism
):
    reference, sharded, examples, clauses = workload
    engine = BatchCoverageEngine(
        SubsumptionCoverageEngine(sharded[shards]), parallelism=parallelism
    )
    got = engine.covered_examples_batch(clauses, examples)
    assert result_bytes(got) == reference["subsumption"]


@pytest.mark.parametrize("strategy", SHARDING_STRATEGIES)
def test_every_sharding_strategy_gives_identical_results(workload, strategy):
    reference, sharded, examples, clauses = workload
    instance = sharded[2]
    instance.backend.configure_sharding(strategy=strategy)
    got = BatchCoverageEngine(
        SubsumptionCoverageEngine(instance)
    ).covered_examples_batch(clauses, examples)
    assert result_bytes(got) == reference["subsumption"]


def test_sharded_backend_is_registry_selectable(small_uwcse):
    """"sqlite-sharded" resolves purely through the backend registry."""
    from repro.database.backend import backend_names, create_backend

    assert "sqlite-sharded" in backend_names()
    backend = create_backend("sqlite-sharded")
    assert backend.name == "sqlite-sharded"
    assert backend.supports_compiled_queries
    backend.close()


def test_reapplying_current_sharding_config_keeps_workers_warm(small_uwcse):
    """configure_sharding with unchanged settings must not respawn the
    fleet — learners re-apply their shards= at the top of every learn()."""
    _bundle, instance, examples, clauses = small_uwcse
    converted = instance.with_backend("sqlite-sharded")
    try:
        converted.backend.configure_sharding(shards=2)
        engine = BatchCoverageEngine(SubsumptionCoverageEngine(converted))
        engine.covered_examples_batch(clauses[:2], examples)
        pids = converted.backend.coverage_service().worker_pids()
        converted.backend.configure_sharding(shards=2)  # same settings
        assert converted.backend.coverage_service().worker_pids() == pids
        converted.backend.configure_sharding(shards=1)  # changed: restart
        engine.covered_examples_batch(clauses[:2], examples)
        assert converted.backend.coverage_service().worker_pids() != pids
    finally:
        converted.backend.close()


def test_dropped_backend_releases_its_workers(small_uwcse):
    """A garbage-collected sharded instance must not leak its fleet: the
    finalizer has to be able to fire (no strong service->backend cycle)."""
    import gc
    import weakref

    _bundle, instance, examples, clauses = small_uwcse
    converted = instance.with_backend("sqlite-sharded")
    converted.backend.configure_sharding(shards=1)
    BatchCoverageEngine(QueryCoverageEngine(converted)).covered_examples_batch(
        clauses[:1], examples
    )
    service = converted.backend.coverage_service()
    assert service._started
    backend_ref = weakref.ref(converted.backend)
    del converted
    gc.collect()
    assert backend_ref() is None, "service callbacks pinned the backend"
    assert not service._started, "finalizer did not close the service"
    assert service.worker_pids() == []
