"""Sharded saturation materialization: parity, store contents, diff reloads.

The acceptance properties of the ``materialize_saturations`` request:

* bottom clauses built by the worker fleet are byte-identical to in-process
  construction for every shard count;
* a ``SaturationStore`` fed through the sharded path holds identical
  contents to one fed in-process;
* instance mutations reach live workers as **incremental diffs** when the
  diff is smaller than the payload, with a full-reload fallback otherwise.
"""

from __future__ import annotations

import pytest

from repro.castor.bottom_clause import CastorBottomClauseBuilder, CastorBottomClauseConfig
from repro.database.sqlite_backend import SaturationStore
from repro.learning.bottom_clause import BatchSaturationEngine, BottomClauseBuilder, BottomClauseConfig
from repro.learning.coverage import SubsumptionCoverageEngine


def clause_strings(clauses):
    return [str(clause) for clause in clauses]


@pytest.fixture
def sharded_instance(small_uwcse):
    _bundle, instance, _examples, _clauses = small_uwcse
    converted = instance.with_backend("sqlite-sharded")
    converted.backend.configure_sharding(shards=2, strategy="hash")
    yield converted
    converted.backend.close()


@pytest.mark.parametrize("shards", [1, 2, 4])
def test_sharded_saturation_matches_in_process(small_uwcse, shards):
    bundle, instance, _examples, _clauses = small_uwcse
    examples = bundle.examples.positives
    config = CastorBottomClauseConfig()
    reference = clause_strings(
        CastorBottomClauseBuilder(instance, config=config).build_ground_many(examples)
    )
    converted = instance.with_backend("sqlite-sharded")
    converted.backend.configure_sharding(shards=shards)
    try:
        builder = CastorBottomClauseBuilder(converted, config=config)
        engine = BatchSaturationEngine(builder)
        assert clause_strings(engine.build_ground_batch(examples)) == reference
        assert engine.sharded_batches == 1
        # Variablized bottom clauses ride the same request.
        variablized = clause_strings(engine.build_batch(examples, variablize=True))
        assert variablized == clause_strings(
            CastorBottomClauseBuilder(instance, config=config).build_many(examples)
        )
    finally:
        converted.backend.close()


def test_sharded_saturation_store_contents_identical(small_uwcse, sharded_instance):
    bundle, instance, _examples, _clauses = small_uwcse
    examples = bundle.examples.all_examples()
    config = BottomClauseConfig(max_depth=2)

    local_store = SaturationStore()
    local = SubsumptionCoverageEngine(
        instance, config, saturation_store=local_store, compiled=True
    )
    local.materialize(examples)

    sharded_store = SaturationStore()
    sharded = SubsumptionCoverageEngine(
        sharded_instance, config, saturation_store=sharded_store, compiled=True
    )
    sharded.materialize(examples)

    assert sharded.saturator.sharded_batches >= 1
    assert sharded_store.contents() == local_store.contents()
    assert len(sharded_store) == len(local_store)


def test_unknown_saturation_spec_kind_rejected_at_coordinator(sharded_instance):
    service = sharded_instance.backend.coverage_service()
    with pytest.raises(ValueError, match="no-such-builder"):
        service.materialize_saturations(("no-such-builder",), [object()])


def test_mutation_ships_as_incremental_diff(small_uwcse, sharded_instance):
    bundle, _instance, _examples, _clauses = small_uwcse
    examples = bundle.examples.positives
    builder = BottomClauseBuilder(sharded_instance, BottomClauseConfig(max_depth=2))
    engine = BatchSaturationEngine(builder)
    engine.build_ground_batch(examples)

    service = sharded_instance.backend.coverage_service()
    baseline_full = service.reloads_full
    # Join a fresh tuple onto every example's seed constant so the change is
    # visible in the rebuilt saturations.
    target = examples[0]
    sharded_instance.add_tuple(
        "publication", ("pub_diff_reload", target.values[0])
    )
    rebuilt = engine.build_ground_batch(examples)
    assert service.reloads_incremental == 1
    assert service.reloads_full == baseline_full

    reference_builder = BottomClauseBuilder(
        sharded_instance.with_backend("sqlite"), BottomClauseConfig(max_depth=2)
    )
    assert clause_strings(rebuilt) == clause_strings(
        reference_builder.build_ground_many(examples)
    )
    assert any("pub_diff_reload" in clause for clause in clause_strings(rebuilt))


def test_oversized_diff_falls_back_to_full_reload(small_uwcse, sharded_instance):
    bundle, _instance, _examples, _clauses = small_uwcse
    examples = bundle.examples.positives
    builder = BottomClauseBuilder(sharded_instance, BottomClauseConfig(max_depth=2))
    engine = BatchSaturationEngine(builder)
    engine.build_ground_batch(examples)

    service = sharded_instance.backend.coverage_service()
    # Adding then removing as many rows as the instance holds makes the diff
    # at least as large as the payload, so shipping it would be a loss.
    churn = sharded_instance.total_tuples()
    rows = [(f"churn_{i}", f"churn_person_{i}") for i in range(churn)]
    sharded_instance.add_tuples("publication", rows)
    relation = sharded_instance.relation("publication")
    for row in rows:
        relation.remove(row)
    engine.build_ground_batch(examples)
    assert service.reloads_full == 1
    assert service.reloads_incremental == 0

    # A small follow-up mutation diffs incrementally again.
    sharded_instance.add_tuple("publication", ("churn_tail", "churn_person_tail"))
    engine.build_ground_batch(examples)
    assert service.reloads_incremental == 1


def test_interrupted_diff_sync_replays_idempotently(small_uwcse, sharded_instance):
    """A sync that dies mid-fleet re-sends the same diff from the stale
    token; workers that already applied it (including removes) must
    converge, not error."""
    bundle, _instance, _examples, _clauses = small_uwcse
    examples = bundle.examples.positives
    builder = BottomClauseBuilder(sharded_instance, BottomClauseConfig(max_depth=2))
    engine = BatchSaturationEngine(builder)
    engine.build_ground_batch(examples)

    service = sharded_instance.backend.coverage_service()
    old_token = service._synced_token
    victim = next(iter(sharded_instance.relation("publication").rows))
    sharded_instance.add_tuple("publication", ("pub_replay", examples[0].values[0]))
    sharded_instance.relation("publication").remove(victim)
    engine.build_ground_batch(examples)
    assert service.reloads_incremental == 1

    # Simulate the interrupted broadcast: the token never advanced, so the
    # next batch re-sends the same add+remove diff to already-synced workers.
    service._synced_token = old_token
    rebuilt = engine.build_ground_batch(examples)
    assert service.reloads_incremental == 2

    reference = BottomClauseBuilder(
        sharded_instance.with_backend("sqlite"), BottomClauseConfig(max_depth=2)
    ).build_ground_many(examples)
    assert clause_strings(rebuilt) == clause_strings(reference)


def test_python_pinned_builder_stays_local_on_sharded_backend(sharded_instance, small_uwcse):
    """use_compiled_lookups=False is a measurement knob (the Table 13
    client baseline); the sharded route must not silently override it."""
    bundle, instance, _examples, _clauses = small_uwcse
    examples = bundle.examples.positives
    pinned = BottomClauseBuilder(
        sharded_instance, BottomClauseConfig(max_depth=2), use_compiled_lookups=False
    )
    engine = BatchSaturationEngine(pinned)
    got = engine.build_ground_batch(examples)
    assert engine.sharded_batches == 0
    reference = BottomClauseBuilder(
        instance, BottomClauseConfig(max_depth=2)
    ).build_ground_many(examples)
    assert clause_strings(got) == clause_strings(reference)
