"""Hardening the persistent server against untrusting, impolite clients.

Fuzzed frames, missing/wrong auth tokens, frozen peers, busy-handle
unregisters, eviction races, per-client quotas, and graceful drain — the
server must stay up, answer with *typed* errors, and never execute a byte
an unauthenticated socket sent it.
"""

from __future__ import annotations

import pickle
import random
import socket
import threading
import time

import pytest

from repro.database import RelationSchema, Schema
from repro.distributed import (
    InstancePayload,
    ServerError,
    ServiceClient,
    ServiceServer,
    TransportError,
    UnknownHandleError,
)
from repro.distributed.protocol import SocketTransport
from repro.distributed.wire import WIRE_VERSION, JsonWireCodec


@pytest.fixture
def make_server():
    """Factory for throwaway servers; everything is torn down afterwards."""
    started = []

    def factory(**kwargs):
        kwargs.setdefault("shards", 1)
        server = ServiceServer("127.0.0.1", 0, **kwargs)
        thread = server.start_in_thread()
        started.append((server, thread))
        return server, thread

    yield factory
    for server, thread in started:
        server.shutdown()
        thread.join(timeout=10)


def tiny_payload(marker: str = "x") -> InstancePayload:
    schema = Schema([RelationSchema("r", ["a", "b"])], name="hardening")
    return InstancePayload(schema, {"r": [(1, marker), (2, marker)]})


def addr_tuple(server: ServiceServer):
    host, port = server.address.rsplit(":", 1)
    return host, int(port)


def frame(body: bytes) -> bytes:
    return len(body).to_bytes(4, "big") + body


def wait_until(predicate, timeout: float = 10.0, message: str = "condition"):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return
        time.sleep(0.01)
    raise AssertionError(f"timed out waiting for {message}")


class _Evil:
    """Pickle payload whose deserialization would run a shell command."""

    def __init__(self, sentinel: str):
        self.sentinel = sentinel

    def __reduce__(self):
        import os

        return (os.system, (f"touch {self.sentinel}",))


# --------------------------------------------------------------------- #
# Fuzzing: hostile bytes never crash the server, never execute
# --------------------------------------------------------------------- #
def test_fuzzed_frames_never_crash_or_execute(make_server, tmp_path):
    server, thread = make_server()
    sentinel = tmp_path / "pwned"
    rng = random.Random(1234)
    valid_handshake = frame(
        b'{"v": %d, "kind": "handshake", "payload": null}' % WIRE_VERSION
    )
    attacks = [
        rng.randbytes(200),  # noise: header + garbage body
        rng.randbytes(3),  # shorter than the length header itself
        valid_handshake[: len(valid_handshake) // 2],  # truncated mid-frame
        (2**30).to_bytes(4, "big"),  # length header far past the cap
        frame(b""),  # empty body
        frame(pickle.dumps(_Evil(str(sentinel)))),  # would touch sentinel
        frame(pickle.dumps(("handshake", {"version": WIRE_VERSION}))),
        frame(b'{"v": 99, "kind": "handshake", "payload": {}}'),
        frame(b'{"v": %d, "kind": "shutdown_server", "payload": null}' % WIRE_VERSION),
        frame(b'[1, 2, 3]'),
    ]
    for attack in attacks:
        sock = socket.create_connection(addr_tuple(server), timeout=5)
        try:
            sock.sendall(attack)
            sock.settimeout(0.5)
            try:
                sock.recv(4096)  # drain any reject reply; content irrelevant
            except (socket.timeout, OSError):
                pass
        finally:
            sock.close()
    assert not sentinel.exists(), "a fuzzed frame reached pickle.loads"
    assert thread.is_alive()
    # A polite client is still served after the barrage.
    with ServiceClient(server.address) as client:
        assert client.ping()
        status = client.server_status()
    assert status["handshakes_rejected"] >= 5  # EOF-only attacks reply nothing
    assert not sentinel.exists()


def test_wrong_version_and_pickle_era_clients_get_typed_rejects(make_server):
    server, _thread = make_server()
    # A future-versioned envelope is refused by version, not by parse error.
    sock = socket.create_connection(addr_tuple(server), timeout=5)
    transport = SocketTransport(sock, codec=JsonWireCodec())
    try:
        transport.send(("handshake", {"version": 99}))
        status, (kind, message, _tb) = transport.recv()
        assert status == "error"
        assert kind == "ProtocolVersionError"
        assert "99" in message
    finally:
        transport.close()
    # A PR-5 client opening with a pickle frame gets told to upgrade.
    sock = socket.create_connection(addr_tuple(server), timeout=5)
    transport = SocketTransport(sock, codec=JsonWireCodec())
    try:
        sock.sendall(frame(pickle.dumps(("handshake", {"version": WIRE_VERSION}))))
        status, (kind, message, _tb) = transport.recv()
        assert status == "error"
        assert kind == "ProtocolVersionError"
        assert "pickle-era" in message
    finally:
        transport.close()


def test_malformed_frames_after_handshake_keep_the_connection(make_server):
    """Framing is independent of the body, so one bad frame is answered
    with a typed error and the stream keeps serving."""
    server, _thread = make_server()
    sock = socket.create_connection(addr_tuple(server), timeout=5)
    transport = SocketTransport(sock, codec=JsonWireCodec())
    try:
        transport.send(("handshake", {"version": WIRE_VERSION}))
        status, _info = transport.recv()
        assert status == "ok"
        sock.sendall(frame(b'{"not": "an envelope"}'))
        status, (kind, _message, _tb) = transport.recv()
        assert (status, kind) == ("error", "WireFormatError")
        transport.send(("ping", None))
        assert transport.recv() == ("ok", "pong")
    finally:
        transport.close()


# --------------------------------------------------------------------- #
# Auth: nothing is reachable without the token
# --------------------------------------------------------------------- #
def test_auth_token_gates_every_request_kind(make_server):
    server, thread = make_server(auth_token="sekrit")

    with pytest.raises(ServerError, match="auth token") as excinfo:
        ServiceClient(server.address)
    assert excinfo.value.kind == "AuthenticationError"
    with pytest.raises(ServerError) as excinfo:
        ServiceClient(server.address, token="wrong")
    assert excinfo.value.kind == "AuthenticationError"

    # Skipping the handshake entirely reaches no handler — not even the
    # administrative ones an attacker would aim for.
    for kind, payload in (("shutdown_server", None), ("unregister", "h")):
        sock = socket.create_connection(addr_tuple(server), timeout=5)
        transport = SocketTransport(sock, codec=JsonWireCodec())
        try:
            transport.send((kind, payload))
            status, (error_kind, _message, _tb) = transport.recv()
            assert (status, error_kind) == ("error", "AuthenticationError")
        finally:
            transport.close()
    assert thread.is_alive(), "an unauthenticated shutdown_server went through"

    with ServiceClient(server.address, token="sekrit") as client:
        assert client.ping()
        status = client.server_status()
        assert status["auth_required"] is True
        assert status["handshakes_rejected"] >= 4


# --------------------------------------------------------------------- #
# Request timeouts: a frozen server cannot hang the client forever
# --------------------------------------------------------------------- #
def test_frozen_server_surfaces_as_transport_error(make_server):
    """The peer handshakes fine, then freezes mid-request: the client's
    request_timeout turns the stall into a typed TransportError and the
    connection is retired (a late reply would desync the stream)."""
    listener = socket.socket()
    listener.bind(("127.0.0.1", 0))
    listener.listen(1)
    host, port = listener.getsockname()
    release = threading.Event()

    def frozen_peer():
        conn, _ = listener.accept()
        transport = SocketTransport(conn, codec=JsonWireCodec())
        try:
            transport.recv()  # the handshake
            transport.send(("ok", {"version": WIRE_VERSION, "pid": 0,
                                   "auth_required": False, "server": "frozen"}))
            transport.recv()  # the request we will never answer
            release.wait(timeout=30)
        except TransportError:
            pass
        finally:
            transport.close()

    peer = threading.Thread(target=frozen_peer, daemon=True)
    peer.start()
    try:
        client = ServiceClient(f"{host}:{port}", request_timeout=0.3)
        with pytest.raises(TransportError, match="timed out"):
            client.request("ping")
        # The stream is dead; later requests fail fast instead of hanging.
        with pytest.raises(TransportError, match="closed"):
            client.request("ping")
    finally:
        release.set()
        peer.join(timeout=10)
        listener.close()


# --------------------------------------------------------------------- #
# Busy handles: bounded unregister, quotas, admission control
# --------------------------------------------------------------------- #
def test_unregister_on_a_busy_handle_is_bounded_and_typed(make_server):
    server, _thread = make_server(unregister_wait=0.2)
    with ServiceClient(server.address) as client:
        client.request("register", ("busy-handle", "hash-1"))
        served = server._instances["busy-handle"]
        assert served.lock.acquire(client="in-flight-batch")
        try:
            started = time.monotonic()
            with pytest.raises(ServerError, match="busy") as excinfo:
                client.unregister("busy-handle")
            assert excinfo.value.kind == "HandleBusyError"
            assert time.monotonic() - started < 5.0, "wait must be bounded"
            assert "busy-handle" in server._instances, "a failed unregister must not orphan the handle"
        finally:
            served.lock.release()
        assert client.unregister("busy-handle") is True


def test_per_client_quota_and_queue_cap_reject_with_typed_errors(make_server):
    server, _thread = make_server(max_queue=2, client_quota=1)
    # Two connections sharing the client id "A": quotas are per *client*,
    # not per connection, or one tenant could dodge them by reconnecting.
    clients = {
        key: ServiceClient(server.address, client_name=name)
        for key, name in (
            ("setup", "setup"), ("A1", "A"), ("A2", "A"), ("B", "B"), ("C", "C")
        )
    }
    try:
        clients["setup"].request("register", ("contended", "hash-1"))
        served = server._instances["contended"]
        assert served.lock.acquire(client="holder")
        results = {}

        def queued(name):
            try:
                results[name] = clients[name].request(
                    "register", ("contended", "hash-1")
                )
            except ServerError as exc:  # pragma: no cover - failure detail
                results[name] = exc

        t1 = threading.Thread(target=lambda: queued("A1"), daemon=True)
        t1.start()
        wait_until(lambda: served.lock.queue_depth == 1, message="A1 queued")
        # Client A is over its quota of 1 queued request on this handle.
        with pytest.raises(ServerError) as excinfo:
            clients["A2"].request("register", ("contended", "hash-1"))
        assert excinfo.value.kind == "QuotaExceededError"
        t2 = threading.Thread(target=lambda: queued("B"), daemon=True)
        t2.start()
        wait_until(lambda: served.lock.queue_depth == 2, message="B queued")
        # The handle's admission queue is saturated for everyone now.
        with pytest.raises(ServerError) as excinfo:
            clients["C"].request("register", ("contended", "hash-1"))
        assert excinfo.value.kind == "ServerBusyError"
        served.lock.release()
        t1.join(timeout=10)
        t2.join(timeout=10)
        assert results["A1"]["needs_payload"] is True
        assert results["B"]["needs_payload"] is True
        stats = served.stats()["queue"]
        assert stats["rejected_quota"] == 1
        assert stats["rejected_busy"] == 1
    finally:
        for client in clients.values():
            client.close()


# --------------------------------------------------------------------- #
# Eviction under load
# --------------------------------------------------------------------- #
def test_eviction_skips_busy_handles_and_orphans_recover(make_server):
    server, _thread = make_server(max_instances=2)
    with ServiceClient(server.address) as client:
        client.request("register", ("ev-a", "h"))
        client.request("register", ("ev-b", "h"))
        served_a = server._instances["ev-a"]
        served_b = server._instances["ev-b"]
        # A (the LRU) is mid-batch, so creating C evicts idle B instead.
        assert served_a.lock.acquire(client="batch-on-a")
        client.request("register", ("ev-c", "h"))
        assert set(server._instances) == {"ev-a", "ev-c"}
        # The closed orphan keeps a reference alive in the evicted batch's
        # thread; using it raises the same recoverable error as a registry
        # miss (clients re-register), never respawns a ghost fleet.
        assert served_b.closed
        with pytest.raises(UnknownHandleError, match="unregistered or evicted"):
            server._service_for(served_b)
        with pytest.raises(ServerError) as excinfo:
            client.request("coverage_batch", ("ev-b", None, None, [], [], 1))
        assert excinfo.value.kind == "UnknownHandleError"
        # With every surviving handle busy there is no victim: the registry
        # grows past the soft cap rather than blocking the new arrival.
        served_c = server._instances["ev-c"]
        assert served_c.lock.acquire(client="batch-on-c")
        client.request("register", ("ev-d", "h"))
        assert set(server._instances) == {"ev-a", "ev-c", "ev-d"}
        # Once the batches finish, the next creation drains back to the cap.
        served_a.lock.release()
        served_c.lock.release()
        client.request("register", ("ev-e", "h"))
        assert set(server._instances) == {"ev-d", "ev-e"}
        # The evicted handle is re-registrable from scratch (recovery path).
        reply = client.request("register", ("ev-b", "h"))
        assert reply["needs_payload"] is True


def test_memory_budget_evicts_by_payload_bytes(make_server):
    server, _thread = make_server(max_instances=32)
    with ServiceClient(server.address) as client:
        client.request("load", ("mem-1", "hash-1", tiny_payload("one")))
        status = client.server_status()
        first_bytes = status["payload_bytes_total"]
        assert first_bytes > 0, "loads must account their frame size"
        entry = status["handles"]["mem-1"]
        assert entry["payload_bytes"] == first_bytes
        assert entry["reloads_full"] >= 0 and "hit_rate" in entry
        # Room for one payload and a half: the second load must push the
        # first (LRU) handle out.
        server.memory_budget_bytes = int(first_bytes * 1.5)
        client.request("load", ("mem-2", "hash-2", tiny_payload("two")))
        status = client.server_status()
        assert set(status["handles"]) == {"mem-2"}
        assert status["payload_bytes_total"] <= server.memory_budget_bytes


# --------------------------------------------------------------------- #
# Batch coalescing
# --------------------------------------------------------------------- #
def test_identical_concurrent_batches_share_one_computation(make_server):
    server, _thread = make_server()
    calls = []
    computing = threading.Event()
    release = threading.Event()

    def compute():
        calls.append(1)
        computing.set()
        assert release.wait(timeout=10)
        return {"answer": 42}

    results = []

    def run():
        results.append(server._coalesced("coverage_batch", ("h", [1, 2]), compute))

    leader = threading.Thread(target=run, daemon=True)
    leader.start()
    assert computing.wait(timeout=10)
    follower = threading.Thread(target=run, daemon=True)
    follower.start()
    # The follower registers on the in-flight batch before we let the
    # leader finish; the counter flips exactly when it has.
    wait_until(lambda: server.batches_coalesced == 1, message="follower joined")
    release.set()
    leader.join(timeout=10)
    follower.join(timeout=10)
    assert len(calls) == 1, "identical concurrent batches must compute once"
    assert results[0] == results[1] == {"answer": 42}
    # A different payload is a different batch: no false sharing.
    release.set()
    assert server._coalesced("coverage_batch", ("h", [3]), lambda: "other") == "other"


# --------------------------------------------------------------------- #
# Graceful drain
# --------------------------------------------------------------------- #
def test_drain_finishes_inflight_work_and_refuses_new_work(make_server):
    server, thread = make_server(drain_timeout=30)
    admin = ServiceClient(server.address, client_name="admin")
    worker = ServiceClient(server.address, client_name="worker")
    try:
        admin.request("register", ("drain-handle", "hash-1"))
        served = server._instances["drain-handle"]
        assert served.lock.acquire(client="long-batch")
        results = {}

        def inflight():
            results["reply"] = worker.request("register", ("drain-handle", "hash-1"))

        blocked = threading.Thread(target=inflight, daemon=True)
        blocked.start()
        wait_until(lambda: served.lock.queue_depth == 1, message="request in flight")

        server.request_drain()  # what the SIGTERM handler calls
        wait_until(lambda: server.draining, message="accept loop entering drain")
        # Introspection stays up; new work gets a typed refusal.
        assert admin.ping()
        assert admin.server_status()["draining"] is True
        with pytest.raises(ServerError, match="draining") as excinfo:
            admin.request("register", ("fresh-handle", "h"))
        assert excinfo.value.kind == "ServerDrainingError"
        # The in-flight request completes once its handle frees up...
        served.lock.release()
        blocked.join(timeout=10)
        assert results["reply"]["needs_payload"] is True
        # ...and with nothing left in flight the server exits cleanly.
        thread.join(timeout=10)
        assert not thread.is_alive()
        with pytest.raises((TransportError, OSError)):
            ServiceClient(server.address)
    finally:
        admin.close()
        worker.close()
