"""Unit tests: sharding strategies and the length-prefixed pickle protocol."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.distributed import (
    SHARDING_STRATEGIES,
    ShardAssigner,
    decode_frame,
    encode_frame,
    partition_keys,
    stable_hash,
)
from repro.distributed.protocol import TransportError
from repro.distributed.sharding import default_weight


KEYS = [("advisedby", (f"s{i}", f"p{i % 3}"), True) for i in range(20)]


def assert_is_partition(buckets, count):
    """Every index appears in exactly one bucket."""
    seen = sorted(i for bucket in buckets for i in bucket)
    assert seen == list(range(count))


@pytest.mark.parametrize("strategy", SHARDING_STRATEGIES)
@pytest.mark.parametrize("shards", [1, 2, 4, 7])
def test_every_strategy_yields_a_true_partition(strategy, shards):
    buckets = partition_keys(KEYS, shards, strategy)
    assert len(buckets) == shards
    assert_is_partition(buckets, len(KEYS))


@pytest.mark.parametrize("strategy", SHARDING_STRATEGIES)
def test_partitioning_is_deterministic(strategy):
    first = partition_keys(KEYS, 3, strategy)
    second = partition_keys(KEYS, 3, strategy)
    assert first == second


def test_hash_assignment_is_independent_of_arrival_order():
    """The hash strategy pins a key to its shard regardless of batch mix."""
    forward = ShardAssigner(4, "hash")
    backward = ShardAssigner(4, "hash")
    assignments_fwd = {key: forward.assign(key) for key in KEYS}
    assignments_bwd = {key: backward.assign(key) for key in reversed(KEYS)}
    assert assignments_fwd == assignments_bwd


def test_stable_hash_is_not_process_salted():
    # Known value pinned down: CRC32 of the repr, which PYTHONHASHSEED
    # cannot perturb (unlike builtin hash of strings).
    key = ("advisedby", ("s1", "p2"), True)
    assert stable_hash(key) == stable_hash(("advisedby", ("s1", "p2"), True))
    assert 0 <= stable_hash(key) < 2**32


def test_round_robin_balances_counts_exactly():
    buckets = partition_keys(KEYS, 4, "round-robin")
    assert [len(b) for b in buckets] == [5, 5, 5, 5]


def test_round_robin_is_sticky_for_duplicate_keys():
    assigner = ShardAssigner(3, "round-robin")
    first = assigner.assign(KEYS[0])
    assigner.assign(KEYS[1])
    assigner.assign(KEYS[2])
    # Re-assigning an already-seen key must not consume a new slot.
    assert assigner.assign(KEYS[0]) == first
    buckets = assigner.partition(KEYS)
    assert_is_partition(buckets, len(KEYS))


def test_size_balanced_accounts_for_weights():
    # One huge key followed by small ones: the greedy strategy must route
    # the small ones away from the loaded shard.
    keys = ["x" * 1000, "a", "b", "c"]
    buckets = partition_keys(keys, 2, "size-balanced")
    heavy_shard = next(s for s, bucket in enumerate(buckets) if 0 in bucket)
    assert buckets[1 - heavy_shard] == [1, 2, 3]


def test_size_balanced_custom_weight_fn():
    weights = {"a": 100, "b": 1, "c": 1, "d": 1}
    buckets = partition_keys(list(weights), 2, "size-balanced", weights.__getitem__)
    assert sorted(map(len, buckets)) == [1, 3]
    assert default_weight("abc") >= 1


def test_assigner_rejects_bad_configuration():
    with pytest.raises(ValueError):
        ShardAssigner(0, "hash")
    with pytest.raises(ValueError):
        ShardAssigner(2, "no-such-strategy")


# --------------------------------------------------------------------- #
# Property tests (hypothesis)
# --------------------------------------------------------------------- #
key_strategy = st.tuples(
    st.sampled_from(["advisedby", "tempadvisedby", "taughtby"]),
    st.tuples(st.text(max_size=6), st.integers(-5, 5)),
    st.booleans(),
)


@settings(max_examples=50, deadline=None)
@given(
    keys=st.lists(key_strategy, max_size=40),
    shards=st.integers(1, 6),
    strategy=st.sampled_from(SHARDING_STRATEGIES),
)
def test_partition_invariants_hold_for_any_input(keys, shards, strategy):
    buckets = partition_keys(keys, shards, strategy)
    assert len(buckets) == shards
    assert_is_partition(buckets, len(keys))
    # Duplicate keys are sticky: all occurrences share one bucket.
    first_bucket = {}
    for shard, bucket in enumerate(buckets):
        for index in bucket:
            shard_of = first_bucket.setdefault(keys[index], shard)
            assert shard_of == shard


# --------------------------------------------------------------------- #
# Protocol framing
# --------------------------------------------------------------------- #
def test_frame_roundtrip():
    message = ("coverage_batch", {"clauses": [1, 2], "examples": ("a", "b")})
    frame = encode_frame(message)
    assert frame[:4] == len(frame[4:]).to_bytes(4, "big")
    assert decode_frame(frame) == message


def test_frame_rejects_corruption():
    frame = bytearray(encode_frame("payload"))
    with pytest.raises(TransportError):
        decode_frame(bytes(frame[:3]))  # truncated header
    frame[3] ^= 0xFF  # header length no longer matches the body
    with pytest.raises(TransportError):
        decode_frame(bytes(frame))


def test_decode_frame_rejects_oversized_length_header(monkeypatch):
    """The embedded length is checked against the cap before unpickling."""
    from repro.distributed import protocol

    monkeypatch.setattr(protocol, "MAX_FRAME_BYTES", 64)
    oversized = (1000).to_bytes(4, "big") + b"x" * 1000
    with pytest.raises(TransportError, match="exceeds limit"):
        protocol.decode_frame(oversized)


def test_pipe_transport_enforces_the_frame_cap(monkeypatch):
    """Regression: PipeTransport.recv must refuse oversized frames.

    Connection.recv_bytes() allocates the whole message before decode_frame
    ever sees the length header, so the cap has to ride on recv_bytes's own
    maxlength — symmetric with SocketTransport, which checks the header
    before reading the body.  (The cap is monkeypatched small; the real one
    would need a >1 GiB allocation to exercise.)
    """
    import multiprocessing

    from repro.distributed import protocol
    from repro.distributed.protocol import PipeTransport

    monkeypatch.setattr(protocol, "MAX_FRAME_BYTES", 1024)
    left, right = multiprocessing.Pipe(duplex=True)
    sender, receiver = PipeTransport(left), PipeTransport(right)
    try:
        sender.send("small is fine")
        assert receiver.recv() == "small is fine"
        # An impolite peer ships an over-cap frame as raw bytes.
        left.send_bytes(b"\x00" * (64 * 1024))
        with pytest.raises(TransportError):
            receiver.recv()
    finally:
        sender.close()
        receiver.close()


def test_socket_transport_surfaces_timeouts_as_transport_error():
    """A peer that accepts but never replies must not hang recv forever."""
    import socket as socket_module

    from repro.distributed.protocol import connect as connect_transport

    listener = socket_module.socket()
    listener.bind(("127.0.0.1", 0))
    listener.listen(1)
    host, port = listener.getsockname()
    transport = connect_transport(
        f"{host}:{port}", timeout=5.0, request_timeout=0.2
    )
    try:
        with pytest.raises(TransportError, match="timed out"):
            transport.recv()
    finally:
        transport.close()
        listener.close()
