"""Shared fixtures for the sharded evaluation-service tests.

Workers are real spawned processes, so the fixtures keep instances tiny and
module-scoped where the tests allow it.
"""

from __future__ import annotations

import pytest

from repro.castor.bottom_clause import (
    CastorBottomClauseBuilder,
    CastorBottomClauseConfig,
)
from repro.datasets import uwcse
from repro.distributed import EvaluationService, InstancePayload


def make_payload_fn(instance):
    """Payload factory reading the instance's current relations."""

    def payload_fn() -> InstancePayload:
        rows = {
            relation.schema.name: list(relation.rows)
            for relation in instance.relations()
        }
        return InstancePayload(instance.schema, rows)

    return payload_fn


@pytest.fixture(scope="module")
def small_uwcse():
    """A small UW-CSE workload: (instance, examples, candidate clauses)."""
    bundle = uwcse.load(
        uwcse.UwCseConfig(num_students=10, num_professors=3, num_courses=5), seed=11
    )
    instance = bundle.instance(bundle.variant_names[0]).with_backend("sqlite")
    examples = bundle.examples.all_examples()
    builder = CastorBottomClauseBuilder(
        instance,
        config=CastorBottomClauseConfig(
            max_depth=2, max_distinct_variables=10, max_total_literals=20
        ),
    )
    clauses = [builder.build(e) for e in bundle.examples.positives[:6]]
    clauses = [c for c in clauses if c.body]
    assert clauses, "workload generator produced no usable candidate clauses"
    return bundle, instance, examples, clauses


@pytest.fixture
def pipe_service(small_uwcse):
    """A started two-shard pipe-transport service over the small instance."""
    _bundle, instance, _examples, _clauses = small_uwcse
    service = EvaluationService(
        make_payload_fn(instance), shards=2, strategy="round-robin"
    )
    with service:
        yield service
