"""Lifecycle and failure-semantics tests for the evaluation service.

These spawn real worker processes (spawn context), so workloads are tiny.
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys
import time

import pytest

from repro.distributed import (
    EvaluationService,
    ShardFailedError,
    TransportError,
    WorkerError,
)
from repro.learning.coverage import BatchCoverageEngine, QueryCoverageEngine

from .conftest import make_payload_fn


SPEC_QUERY = ("query",)


def batch_values(service, clauses, examples, parallelism=1):
    covered = service.covered_examples_batch(
        SPEC_QUERY, clauses, examples, parallelism=parallelism
    )
    return [tuple(e.values for e in per_clause) for per_clause in covered]


def reference_values(instance, clauses, examples):
    batch = BatchCoverageEngine(QueryCoverageEngine(instance))
    return [
        tuple(e.values for e in per_clause)
        for per_clause in batch.covered_examples_batch(clauses, examples)
    ]


def test_pipe_service_matches_in_process_results(small_uwcse, pipe_service):
    _bundle, instance, examples, clauses = small_uwcse
    assert batch_values(pipe_service, clauses, examples) == reference_values(
        instance, clauses, examples
    )


def test_killed_worker_is_respawned_and_batch_retried(small_uwcse, pipe_service):
    """Satellite: a shard dying mid-flight is respawned from its snapshot
    and the batch is transparently retried once."""
    _bundle, instance, examples, clauses = small_uwcse
    expected = reference_values(instance, clauses, examples)
    assert batch_values(pipe_service, clauses, examples) == expected

    victim_pid = pipe_service.worker_pids()[0]
    os.kill(victim_pid, signal.SIGKILL)
    # Wait for the process to actually die so the next request hits the
    # broken transport rather than a half-dead worker.
    for _ in range(100):
        if not pipe_service._handles[0].process.is_alive():
            break
        time.sleep(0.05)

    assert batch_values(pipe_service, clauses, examples) == expected
    assert pipe_service._handles[0].respawns == 1
    assert pipe_service.worker_pids()[0] != victim_pid


def test_shard_failed_error_when_respawn_cannot_recover(
    small_uwcse, pipe_service, monkeypatch
):
    """Satellite: after the one respawn-and-retry cycle fails, a clear
    ShardFailedError surfaces (no infinite retry loops)."""
    _bundle, _instance, examples, clauses = small_uwcse
    batch_values(pipe_service, clauses, examples)  # shards warmed up

    def broken_respawn(handle):
        handle._c_respawns.inc()
        raise TransportError("simulated unrecoverable shard host")

    monkeypatch.setattr(pipe_service, "_respawn", broken_respawn)
    os.kill(pipe_service.worker_pids()[1], signal.SIGKILL)
    time.sleep(0.2)
    with pytest.raises(ShardFailedError) as excinfo:
        batch_values(pipe_service, clauses, examples)
    assert excinfo.value.shard == 1
    assert "shard 1" in str(excinfo.value)


def test_unknown_spec_kind_is_rejected_at_the_coordinator(
    small_uwcse, pipe_service
):
    """Spec validation happens before any payload is shipped to a shard."""
    _bundle, _instance, examples, clauses = small_uwcse
    with pytest.raises(ValueError, match="no-such-engine-kind"):
        pipe_service.covered_examples_batch(
            ("no-such-engine-kind",), clauses, examples
        )


def test_worker_exception_surfaces_as_worker_error_without_retry(
    small_uwcse, pipe_service
):
    _bundle, instance, examples, clauses = small_uwcse
    # A valid spec kind whose config explodes only inside the worker when
    # the engine first builds a saturation (deterministic, not a crash).
    bad_spec = ("subsumption", 42, False)
    with pytest.raises(WorkerError) as excinfo:
        pipe_service.covered_examples_batch(bad_spec, clauses, examples)
    assert excinfo.value.kind == "AttributeError"
    assert excinfo.value.shard in (0, 1)
    # Deterministic worker errors must not burn the respawn budget …
    assert all(h.respawns == 0 for h in pipe_service._handles)
    # … and the workers stay healthy for the next request.
    assert batch_values(pipe_service, clauses, examples) == reference_values(
        instance, clauses, examples
    )


def test_socket_transport_matches_pipe_results(small_uwcse):
    _bundle, instance, examples, clauses = small_uwcse
    service = EvaluationService(
        make_payload_fn(instance), shards=2, transport="socket"
    )
    with service:
        assert batch_values(service, clauses, examples) == reference_values(
            instance, clauses, examples
        )


def test_mutations_are_visible_after_worker_reload(simple_schema):
    """The staleness token reloads workers when the source data changes."""
    from repro.database.instance import DatabaseInstance
    from repro.learning.examples import ExampleSet
    from repro.logic.parser import parse_clause

    instance = DatabaseInstance(simple_schema, backend="sqlite")
    instance.add_tuples("r1", [("a1", "b1"), ("a2", "b2")])
    instance.add_tuples("r2", [("a1", "c1")])
    clause = parse_clause("t(x) :- r2(x, y).")
    examples = ExampleSet("t", positives=[("a1",), ("a2",)]).all_examples()

    backend = instance.backend
    service = EvaluationService(
        make_payload_fn(instance),
        shards=2,
        state_token_fn=lambda: backend._data_version,
    )
    with service:
        before = batch_values(service, [clause], examples)
        assert before == [(("a1",),)]
        instance.add_tuple("r2", ("a2", "c9"))
        after = batch_values(service, [clause], examples)
        assert after == [(("a1",), ("a2",))]


def test_remote_serve_worker_can_be_attached(small_uwcse, tmp_path):
    """A standalone ``--serve`` worker on another "host" joins the fleet."""
    _bundle, instance, examples, clauses = small_uwcse
    env = dict(os.environ)
    src = os.path.join(os.path.dirname(__file__), "..", "..", "src")
    env["PYTHONPATH"] = os.path.abspath(src) + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro.distributed.worker",
         "--serve", "127.0.0.1:0", "--max-sessions", "1"],
        stdout=subprocess.PIPE,
        env=env,
        text=True,
    )
    try:
        banner = proc.stdout.readline()
        address = banner.strip().rsplit("listening on ", 1)[1]
        service = EvaluationService(make_payload_fn(instance), shards=1)
        with service:
            remote_index = service.attach_remote(address)
            assert remote_index == 1
            assert batch_values(service, clauses, examples) == reference_values(
                instance, clauses, examples
            )
    finally:
        proc.terminate()
        proc.wait(timeout=10)
