"""Unit tests: the versioned tagged-JSON wire format and the fair lock."""

from __future__ import annotations

import json
import pickle
import threading
import time

import pytest

from repro.database.constraints import FunctionalDependency, InclusionDependency
from repro.database.schema import RelationSchema, Schema
from repro.distributed import wire
from repro.distributed.fairness import FairLock
from repro.distributed.protocol import QuotaExceededError, ServerBusyError
from repro.distributed.wire import WIRE_VERSION, WireFormatError
from repro.distributed.worker import InstancePayload
from repro.learning.bottom_clause import BottomClauseConfig
from repro.learning.examples import Example
from repro.logic.atoms import Atom
from repro.logic.clauses import HornClause
from repro.logic.terms import Constant, Variable


def roundtrip(message):
    return wire.loads(wire.dumps(message))


# --------------------------------------------------------------------- #
# Round-trips
# --------------------------------------------------------------------- #
def test_scalars_keep_their_exact_types():
    kind, payload = roundtrip(("t", (1, 1.0, True, False, None, "x", -7)))
    assert payload == (1, 1.0, True, False, None, "x", -7)
    assert [type(v) for v in payload] == [int, float, bool, bool, type(None), str, int]


def test_containers_roundtrip_with_identity():
    value = {
        "list": [1, [2, 3]],
        "tuple": ("a", ("b",)),
        "set": {1, 2, 3},
        "frozen": frozenset({("x", 1)}),
        "bytes": b"\x00\xff\x80",
        ("tuple", "key"): "tuple keys survive",
    }
    _, decoded = roundtrip(("t", value))
    assert decoded == value
    assert isinstance(decoded["tuple"], tuple)
    assert isinstance(decoded["set"], set)
    assert isinstance(decoded["frozen"], frozenset)
    assert isinstance(decoded["bytes"], bytes)


def test_domain_objects_roundtrip():
    clause = HornClause(
        Atom("advisedby", [Variable("A"), Variable("B")]),
        [Atom("professor", [Variable("B")]), Atom("rank", [Variable("B"), Constant(3)])],
    )
    example = Example("advisedby", ("s1", "p2"), False)
    _, decoded = roundtrip(("t", (clause, example)))
    assert decoded == (clause, example)
    assert decoded[0].head.terms[0] == Variable("A")


def test_bottom_clause_config_roundtrips_including_nones():
    config = BottomClauseConfig(
        max_depth=None, max_distinct_variables=9, max_total_literals=50
    )
    _, (decoded,) = roundtrip(("t", (config,)))
    assert decoded.max_depth is None
    assert decoded.max_distinct_variables == 9
    assert decoded.max_total_literals == 50
    assert decoded.theory_constant_threshold == config.theory_constant_threshold


def test_instance_payload_roundtrips_schema_constraints_and_rows():
    schema = Schema(
        [RelationSchema("r", ["a", "b"]), RelationSchema("s", ["a"])],
        functional_dependencies=[FunctionalDependency("r", ["a"], ["b"])],
        inclusion_dependencies=[
            InclusionDependency("s", ["a"], "r", ["a"], with_equality=True)
        ],
        name="uni",
    )
    payload = InstancePayload(
        schema,
        {"r": [(1, "x"), (2.5, None), (True, "y")], "s": [("z",)]},
        backend="sqlite-pooled",
        pool_size=3,
    )
    _, (handle, content_hash, decoded) = roundtrip(("load", ("h", "v1", payload)))
    assert (handle, content_hash) == ("h", "v1")
    assert decoded.rows == payload.rows
    assert decoded.rows["r"][2][0] is True  # bool stays bool, not 1
    assert decoded.backend == "sqlite-pooled"
    assert decoded.pool_size == 3
    assert decoded.schema == schema
    assert decoded.schema.functional_dependencies[0].relation == "r"
    assert decoded.schema.inclusion_dependencies[0].with_equality is True


def test_set_encoding_is_deterministic():
    """Identical sets built in different orders digest identically —
    the server's batch coalescer keys on these bytes."""
    a = wire.dumps(("k", frozenset({"c", "a", "b"})))
    b = wire.dumps(("k", frozenset(["b", "c", "a"])))
    assert a == b
    assert wire.payload_digest("k", {3, 1, 2}) == wire.payload_digest("k", {2, 3, 1})


# --------------------------------------------------------------------- #
# Strictness: nothing outside the whitelist decodes
# --------------------------------------------------------------------- #
def test_loads_rejects_non_json_and_pickle_bodies():
    for body in (b"\x80\x05garbage", pickle.dumps(("ping", None)), b"", b"[1,2]"):
        with pytest.raises(WireFormatError):
            wire.loads(body)


def test_loads_rejects_wrong_version_and_malformed_envelopes():
    for body in (
        json.dumps({"v": 99, "kind": "ping", "payload": None}),
        json.dumps({"kind": "ping", "payload": None}),
        json.dumps({"v": WIRE_VERSION, "payload": None}),
        json.dumps({"v": WIRE_VERSION, "kind": 7, "payload": None}),
        json.dumps({"v": WIRE_VERSION, "kind": "x", "payload": None, "extra": 1}),
    ):
        with pytest.raises(WireFormatError):
            wire.loads(body.encode())


def test_decode_rejects_unknown_tags_and_raw_objects():
    for payload in (["EVIL", 1], [], [7, 8], {"a": 1}, ["var"], ["var", 7]):
        body = json.dumps({"v": WIRE_VERSION, "kind": "x", "payload": payload})
        with pytest.raises(WireFormatError):
            wire.loads(body.encode())


def test_decode_rejects_hostile_deep_nesting():
    # Built by string concatenation: json.dumps itself cannot emit this.
    deep = '["L",' * 10_000 + '["L"]' + "]" * 10_000
    body = f'{{"v": {WIRE_VERSION}, "kind": "x", "payload": {deep}}}'
    with pytest.raises(WireFormatError):
        wire.loads(body.encode())


def test_encode_rejects_unrepresentable_types():
    class Mystery:
        pass

    with pytest.raises(WireFormatError):
        wire.dumps(("x", Mystery()))
    # In particular: arbitrary callables/classes never cross the wire.
    with pytest.raises(WireFormatError):
        wire.dumps(("x", eval))


def test_malformed_domain_values_raise_wire_errors_not_random_ones():
    cases = [
        ["atom", "", ["L"]],  # empty predicate: constructor rejects
        ["bcconfig", "a", 1, 1, 1, 1],  # non-int field
        ["example", "t", ["T"], "yes"],  # non-bool polarity
        ["B", "not-base64!!"],
        ["D", [1, 2, 3]],  # dict entry must be a pair
        ["instpayload", None, None, None, None],
    ]
    for payload in cases:
        body = json.dumps({"v": WIRE_VERSION, "kind": "x", "payload": payload})
        with pytest.raises(WireFormatError):
            wire.loads(body.encode())


# --------------------------------------------------------------------- #
# FairLock: fairness, quotas, admission control
# --------------------------------------------------------------------- #
def test_fair_lock_basic_acquire_release_and_nonblocking():
    lock = FairLock()
    assert lock.acquire(client="a")
    assert not lock.acquire(client="b", blocking=False)
    lock.release()
    assert lock.acquire(client="b", blocking=False)
    lock.release()


def test_fair_lock_round_robin_between_clients():
    """With A hammering and B waiting, release alternates clients instead
    of letting A's backlog starve B."""
    lock = FairLock()
    grants = []
    lock.acquire(client="holder")

    def waiter(client, index):
        lock.acquire(client=client)
        grants.append(client)
        lock.release()

    threads = []
    for i in range(3):  # A queues three requests...
        t = threading.Thread(target=waiter, args=("A", i), daemon=True)
        t.start()
        threads.append(t)
        time.sleep(0.02)
    t = threading.Thread(target=waiter, args=("B", 0), daemon=True)  # ...then B one
    t.start()
    threads.append(t)
    time.sleep(0.05)
    lock.release()
    for t in threads:
        t.join(timeout=5)
    # B is served second (right after A's first grant), not last.
    assert grants[1] == "B"
    assert grants.count("A") == 3


def test_fair_lock_quota_and_queue_caps_raise_typed_errors():
    lock = FairLock(max_queue=2, client_quota=1)
    lock.acquire(client="holder")
    threads = []
    results = []

    def queued(client):
        try:
            lock.acquire(client=client)
            results.append(client)
            lock.release()
        except (QuotaExceededError, ServerBusyError) as exc:
            results.append(exc)

    t1 = threading.Thread(target=queued, args=("a",), daemon=True)
    t1.start()
    threads.append(t1)
    time.sleep(0.05)
    # Same client again: over its quota of 1 queued request.
    with pytest.raises(QuotaExceededError):
        lock.acquire(client="a")
    # Different client fills the queue to max_queue...
    t2 = threading.Thread(target=queued, args=("b",), daemon=True)
    t2.start()
    threads.append(t2)
    time.sleep(0.05)
    # ...so a third is refused admission outright.
    with pytest.raises(ServerBusyError):
        lock.acquire(client="c")
    lock.release()
    for t in threads:
        t.join(timeout=5)
    assert set(results) == {"a", "b"}
    assert lock.rejected_quota == 1
    assert lock.rejected_busy == 1


def test_fair_lock_timeout_returns_false_and_leaves_queue_clean():
    lock = FairLock()
    lock.acquire(client="holder")
    assert lock.acquire(client="late", timeout=0.05) is False
    assert lock.queue_depth == 0
    lock.release()
    assert lock.acquire(client="late", blocking=False)
    lock.release()
