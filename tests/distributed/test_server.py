"""The persistent evaluation server: warm cross-run reuse, concurrent
sessions, payload skipping, and lifecycle hardening."""

from __future__ import annotations

import os
import signal
import subprocess
import sys
import textwrap
import threading
import time

import pytest

from repro import LearningSession, SessionConfig
from repro.database import RelationSchema, Schema
from repro.datasets import uwcse
from repro.distributed import InstancePayload, ServiceClient, ServiceServer
from repro.experiments.harness import LearnerSpec, run_variant
from repro.learning.bottom_clause import BottomClauseConfig
from repro.progolem.progolem import ProGolemLearner, ProGolemParameters


@pytest.fixture(scope="module")
def tiny_bundle():
    return uwcse.load(
        uwcse.UwCseConfig(num_students=10, num_professors=3, num_courses=5), seed=5
    )


@pytest.fixture(scope="module")
def server():
    server = ServiceServer("127.0.0.1", 0, shards=2)
    server.start_in_thread()
    yield server
    server.shutdown()


def progolem_spec() -> LearnerSpec:
    def factory(schema):
        return ProGolemLearner(
            schema,
            ProGolemParameters(
                sample_size=2,
                beam_width=2,
                max_armg_rounds=2,
                max_clauses=4,
                bottom_clause=BottomClauseConfig(max_depth=2, max_total_literals=20),
            ),
        )

    return LearnerSpec("ProGolem", factory)


def as_key(result):
    clauses = [str(c) for c in result.definition] if result.definition else []
    return (
        round(result.precision, 9),
        round(result.recall, 9),
        round(result.f1, 9),
        result.folds,
        clauses,
    )


# --------------------------------------------------------------------- #
# Sequential runs: one server process, many sessions, zero re-ships
# --------------------------------------------------------------------- #
def test_two_sequential_runs_share_one_warm_instance(tiny_bundle, server):
    variant = tiny_bundle.variant_names[0]
    baseline = run_variant(
        tiny_bundle, variant, progolem_spec(), folds=2, backend="sqlite"
    )

    with LearningSession.connect(server.address) as first:
        run1 = run_variant(
            tiny_bundle, variant, progolem_spec(), folds=2, session=first
        )
        stats1 = first.evaluation_stats()
    with LearningSession.connect(server.address) as second:
        run2 = run_variant(
            tiny_bundle, variant, progolem_spec(), folds=2, session=second
        )
        stats2 = second.evaluation_stats()
        server_stats = second.server_stats()

    # Byte-identical definitions and metrics vs the per-run path.
    assert as_key(run1) == as_key(baseline)
    assert as_key(run2) == as_key(baseline)
    # The first session ships the payload once; the second (same content
    # hash, same handle) ships nothing at all.
    assert stats1["reloads_full"] == 1
    assert stats2["reloads_full"] == 0
    assert stats2["register_hits"] >= 1
    # Both sessions landed on the same registered handle.
    assert len(server_stats["instances"]) >= 1
    assert any(
        entry["register_hits"] >= 1
        for entry in server_stats["instances"].values()
    )


def test_concurrent_sessions_share_the_server(tiny_bundle, server):
    variants = tiny_bundle.variant_names[:2]
    baselines = {
        variant: run_variant(
            tiny_bundle, variant, progolem_spec(), folds=2, backend="sqlite"
        )
        for variant in variants
    }

    results: dict = {}
    errors: list = []

    def run_one(variant: str) -> None:
        try:
            with LearningSession.connect(server.address) as session:
                results[variant] = run_variant(
                    tiny_bundle, variant, progolem_spec(), folds=2, session=session
                )
        except Exception as exc:  # noqa: BLE001 - surfaced via the errors list
            errors.append((variant, exc))

    threads = [
        threading.Thread(target=run_one, args=(variant,)) for variant in variants
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=120)
    assert not errors, f"concurrent sessions failed: {errors}"
    for variant in variants:
        assert as_key(results[variant]) == as_key(baselines[variant])


# --------------------------------------------------------------------- #
# Registry behavior through the raw client
# --------------------------------------------------------------------- #
def test_register_probe_and_unregister(server):
    schema = Schema([RelationSchema("r", ["a", "b"])], name="probe")
    payload = InstancePayload(schema, {"r": [(1, 2), (3, 4)]})
    with ServiceClient(server.address) as client:
        assert client.ping()
        probe = client.request("register", ("probe-handle", "hash-1"))
        assert probe["needs_payload"] and not probe["known"]
        client.request("load", ("probe-handle", "hash-1", payload))
        probe = client.request("register", ("probe-handle", "hash-1"))
        assert not probe["needs_payload"] and probe["known"]
        # A different data version on the same handle needs a new payload.
        probe = client.request("register", ("probe-handle", "hash-2"))
        assert probe["needs_payload"] and probe["known"]
        assert client.unregister("probe-handle")
        assert not client.unregister("probe-handle")


def test_session_recovers_from_server_side_eviction(tiny_bundle, server):
    """An unregistered/evicted handle is transparently re-registered (the
    payload ships again) instead of failing every later batch."""
    variant = tiny_bundle.variant_names[0]
    with LearningSession.connect(server.address) as session:
        first = run_variant(
            tiny_bundle, variant, progolem_spec(), folds=2, session=session
        )
        prepared = session.prepare(tiny_bundle.instance(variant))
        remote = prepared.backend.remote_service
        assert remote is not None and remote.handle is not None
        # Simulate operator action / LRU eviction between two batches.
        session.client.unregister(remote.handle)
        shipped_before = remote.reloads_full
        second = run_variant(
            tiny_bundle, variant, progolem_spec(), folds=2, session=session
        )
        assert as_key(second) == as_key(first)
        assert remote.reloads_full == shipped_before + 1


def test_mutated_data_retires_the_superseded_handle(tiny_bundle, server):
    """A session whose source data mutates registers a new content-
    qualified handle and unregisters its old one — no stranded fleets."""
    variant = tiny_bundle.variant_names[0]
    source = tiny_bundle.instance(variant).with_backend("memory")
    relation = source.schema.relations[0]
    with LearningSession.connect(server.address) as session:
        run_variant(tiny_bundle.with_backend("memory"), variant, progolem_spec(),
                    folds=2, session=session)
        # The bundle caches its own instance; drive prepare() directly on a
        # mutable source to exercise the retirement path.
        prepared = session.prepare(source)
        remote = prepared.backend.coverage_service()
        remote._ensure_registered()
        old_handle = remote.handle
        source.add_tuples(
            relation.name, [("retire-witness",) * len(relation.attributes)]
        )
        prepared = session.prepare(source)  # re-converted after mutation
        fresh = prepared.backend.coverage_service()
        fresh._ensure_registered()
        assert fresh.handle != old_handle
        handles = session.server_stats()["instances"].keys()
        assert old_handle not in handles, "superseded handle must be retired"
        assert fresh.handle in handles


def test_server_errors_carry_the_remote_traceback(server):
    from repro.distributed import ServerError

    with ServiceClient(server.address) as client:
        with pytest.raises(ServerError, match="unknown instance handle"):
            client.request(
                "coverage_batch", ("never-registered", None, None, [], [], 1)
            )
        with pytest.raises(ServerError, match="unknown request kind"):
            client.request("no_such_request", None)
        assert client.ping(), "the connection survives server-side errors"


def test_batches_with_a_stale_data_version_are_rejected(server):
    """A batch carrying a content hash the server does not hold errors out
    instead of silently answering from another client's data."""
    schema = Schema([RelationSchema("r", ["a", "b"])], name="stale")
    payload = InstancePayload(schema, {"r": [(1, 2)]})
    with ServiceClient(server.address) as client:
        client.request("load", ("stale-handle", "hash-1", payload))
        from repro.distributed import ServerError

        with pytest.raises(ServerError, match="different data version"):
            client.request(
                "coverage_batch", ("stale-handle", "hash-2", None, [], [], 1)
            )
        # The matching hash sails past the version check (and fails later,
        # on the bogus spec — proving the check sits in front).
        with pytest.raises(ServerError, match="spec"):
            client.request(
                "coverage_batch", ("stale-handle", "hash-1", None, [], [], 1)
            )
        client.unregister("stale-handle")


def test_shared_handle_with_divergent_data_stays_correct(tiny_bundle, server):
    """Two sessions pinning one instance_handle to *different* data must
    each keep getting their own (correct) results — at re-ship cost, never
    silently wrong ones."""
    variant_a, variant_b = tiny_bundle.variant_names[:2]
    baseline_a = run_variant(
        tiny_bundle, variant_a, progolem_spec(), folds=2, backend="sqlite"
    )
    with LearningSession.connect(
        server.address, instance_handle="shared-handle"
    ) as session_a, LearningSession.connect(
        server.address, instance_handle="shared-handle"
    ) as session_b:
        first = run_variant(
            tiny_bundle, variant_a, progolem_spec(), folds=2, session=session_a
        )
        # B hijacks the handle with different data (another variant).
        run_variant(
            tiny_bundle, variant_b, progolem_spec(), folds=2, session=session_b
        )
        # A's next run detects the version mismatch, re-ships, and stays
        # correct instead of evaluating against B's instance.
        second = run_variant(
            tiny_bundle, variant_a, progolem_spec(), folds=2, session=session_a
        )
    assert as_key(first) == as_key(baseline_a)
    assert as_key(second) == as_key(baseline_a)


# --------------------------------------------------------------------- #
# Lifecycle hardening
# --------------------------------------------------------------------- #
def test_evaluation_service_close_is_idempotent(tiny_bundle):
    instance = tiny_bundle.instance(tiny_bundle.variant_names[0]).with_backend(
        "sqlite-sharded"
    )
    service = instance.backend.coverage_service()
    service.close()  # never started: still safe
    service.start()
    pids = [pid for pid in service.worker_pids() if pid is not None]
    assert pids
    service.close()
    service.close()  # idempotent
    # close() then start() works (lazy respawn contract).
    service.start()
    assert any(pid is not None for pid in service.worker_pids())
    service.close()


def test_sigkilled_coordinator_leaks_no_workers(tmp_path, tiny_bundle):
    """Satellite regression: workers must die with their coordinator even
    when the coordinator is SIGKILLed (no atexit, no finalizers)."""
    script = tmp_path / "coordinator.py"
    script.write_text(
        textwrap.dedent(
            """
            import time
            from repro import LearningSession, SessionConfig
            from repro.datasets import uwcse

            # Guarded: the spawn context re-imports this script inside each
            # worker process to rebuild __main__.
            if __name__ == "__main__":
                bundle = uwcse.load(
                    uwcse.UwCseConfig(num_students=8, num_professors=3, num_courses=4),
                    seed=1,
                )
                session = LearningSession(
                    SessionConfig(backend="sqlite-sharded", shards=2)
                )
                instance = session.prepare(bundle.instance(bundle.variant_names[0]))
                service = instance.backend.coverage_service().start()
                pids = [p for p in service.worker_pids() if p is not None]
                print("PIDS:" + ",".join(map(str, pids)), flush=True)
                time.sleep(120)  # killed long before this elapses
            """
        )
    )
    env = dict(os.environ)
    src = os.path.join(os.path.dirname(__file__), "..", "..", "src")
    env["PYTHONPATH"] = os.path.abspath(src) + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.Popen(
        [sys.executable, str(script)], stdout=subprocess.PIPE, env=env, text=True
    )
    try:
        line = proc.stdout.readline()
        assert line.startswith("PIDS:"), f"unexpected banner: {line!r}"
        worker_pids = [int(p) for p in line.strip()[5:].split(",") if p]
        assert worker_pids
        os.kill(proc.pid, signal.SIGKILL)
        proc.wait(timeout=10)

        deadline = time.time() + 15
        alive = set(worker_pids)
        while alive and time.time() < deadline:
            for pid in list(alive):
                try:
                    os.kill(pid, 0)
                except ProcessLookupError:
                    alive.discard(pid)
            if alive:
                time.sleep(0.2)
        assert not alive, f"workers survived the coordinator's SIGKILL: {alive}"
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait(timeout=10)


def test_serve_cli_accepts_sessions(tiny_bundle):
    """`python -m repro.distributed.service --serve` end to end."""
    env = dict(os.environ)
    src = os.path.join(os.path.dirname(__file__), "..", "..", "src")
    env["PYTHONPATH"] = os.path.abspath(src) + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.Popen(
        [
            sys.executable, "-m", "repro.distributed.service",
            "--serve", "127.0.0.1:0", "--shards", "1",
        ],
        stdout=subprocess.PIPE,
        env=env,
        text=True,
    )
    try:
        banner = proc.stdout.readline()
        address = banner.strip().rsplit("listening on ", 1)[1]
        variant = tiny_bundle.variant_names[0]
        baseline = run_variant(
            tiny_bundle, variant, progolem_spec(), folds=2, backend="sqlite"
        )
        with LearningSession.connect(address) as session:
            served = run_variant(
                tiny_bundle, variant, progolem_spec(), folds=2, session=session
            )
            client = session.client
            assert client.hello()["pid"] == proc.pid
            client.shutdown_server()
        assert as_key(served) == as_key(baseline)
        proc.wait(timeout=15)
    finally:
        if proc.poll() is None:
            proc.terminate()
            proc.wait(timeout=10)
