"""Delta synchronization across process and network boundaries.

The distributed half of the update API:

* a transaction on a ``sqlite-remote`` instance ships ONE ``apply_delta``
  frame (not the full payload) to a warm server, which advances the held
  payload, verifies the claimed content hash, and repairs its fleet from
  the recorded hash chain;
* a corrupt/diverged delta is rejected with the typed wire error and the
  client recovers through the full register/load dance — correctness never
  rides on the delta path;
* a warm ``sqlite-sharded`` fleet survives many update rounds with
  incremental reloads only, staying byte-identical to a cold rebuild.
"""

from __future__ import annotations

import random

import pytest

from repro.database import Delta
from repro.database.instance import DatabaseInstance
from repro.database.schema import RelationSchema, Schema
from repro.database.sqlite_backend import SaturationStore
from repro.distributed import InstancePayload, ServerError, ServiceClient, ServiceServer
from repro.learning.bottom_clause import BottomClauseConfig
from repro.learning.coverage import SubsumptionCoverageEngine
from repro.learning.examples import Example
from repro.logic.parser import parse_clause


def tiny_schema() -> Schema:
    return Schema(
        [RelationSchema("p", ["a", "b"]), RelationSchema("q", ["a"])],
        name="delta-sync",
    )


@pytest.fixture(scope="module")
def server():
    server = ServiceServer("127.0.0.1", 0, shards=2)
    server.start_in_thread()
    yield server
    server.shutdown()


# --------------------------------------------------------------------- #
# Remote: one apply_delta frame instead of a payload re-ship
# --------------------------------------------------------------------- #
def test_remote_transaction_ships_one_delta_frame(server):
    instance = DatabaseInstance(tiny_schema(), backend="sqlite-remote")
    instance.backend.configure_remote(address=server.address)
    try:
        with instance.transaction():
            for i in range(20):
                instance.add_tuple("p", (i, i + 1))
                instance.add_tuple("q", (i,))

        clause = parse_clause("q(x) :- p(x, y).")
        backend = instance.backend
        candidates = [(i,) for i in list(range(20)) + [100]]
        assert backend.covered_head_tuples_batch([clause], candidates)[0] == {
            (i,) for i in range(20)
        }
        service = backend.remote_service
        assert service.reloads_full == 1

        with instance.transaction():
            instance.add_tuple("p", (100, 101))
            instance.add_tuple("q", (100,))
            instance.remove_tuple("p", (0, 1))
        covered = backend.covered_head_tuples_batch([clause], candidates)[0]
        assert (100,) in covered and (0,) not in covered
        # The mutation crossed the wire as a delta: no second payload ship.
        assert service.reloads_full == 1
        assert service.reloads_incremental == 1
        stats = service.stats()
        assert stats["deltas_applied"] == 1
        assert stats["loads"] == 1

        # Standalone (non-transactional) mutations ride the same path.
        instance.add_tuple("p", (200, 201))
        covered = backend.covered_head_tuples_batch(
            [clause], candidates + [(200,)]
        )[0]
        assert (200,) in covered
        assert service.reloads_full == 1
        assert service.reloads_incremental == 2
    finally:
        instance.backend.close()


def test_remote_recovers_when_the_delta_chain_is_lost(server):
    """Handle eviction between a mutation and the next batch: the delta has
    nowhere to land, so the client falls back to the full dance."""
    instance = DatabaseInstance(tiny_schema(), backend="sqlite-remote")
    instance.backend.configure_remote(address=server.address)
    try:
        instance.add_tuples("p", [(1, 2), (3, 4)])
        instance.add_tuples("q", [(1,), (3,)])
        clause = parse_clause("q(x) :- p(x, y).")
        backend = instance.backend
        assert backend.covered_head_tuples_batch([clause], [(1,), (3,)])[0] == {
            (1,),
            (3,),
        }
        service = backend.remote_service
        with ServiceClient(server.address) as admin:
            assert admin.unregister(service.handle)
        instance.add_tuple("p", (5, 6))
        instance.add_tuple("q", (5,))
        covered = backend.covered_head_tuples_batch([clause], [(1,), (5,)])[0]
        assert covered == {(1,), (5,)}
        assert service.reloads_full == 2, "eviction must force a re-ship"
    finally:
        instance.backend.close()


def test_apply_delta_wire_contract(server):
    """Raw-protocol checks: hash verification, unknown relations, and the
    recorded chain powering worker diff sync."""
    schema = tiny_schema()
    payload = InstancePayload(schema, {"p": [(1, 2)], "q": [(1,)]})
    from repro.distributed.client import payload_content_hash

    hash_v1 = payload_content_hash(payload)
    with ServiceClient(server.address) as client:
        client.request("load", ("delta-probe", hash_v1, payload))

        # A delta that does not reproduce the claimed hash is rejected with
        # the typed error, and the server's payload is left untouched.
        delta = Delta.add("p", [(7, 8)])
        with pytest.raises(ServerError, match="does not reproduce"):
            client.request(
                "apply_delta", ("delta-probe", hash_v1, "bogus-hash", delta)
            )
        advanced = InstancePayload(schema, {"p": [(1, 2), (7, 8)], "q": [(1,)]})
        hash_v2 = payload_content_hash(advanced)
        result = client.request(
            "apply_delta", ("delta-probe", hash_v1, hash_v2, delta)
        )
        assert result["deltas_applied"] == 1
        assert result["tuples"] == 3

        # Deltas against a relation the payload does not hold are typed too.
        with pytest.raises(ServerError, match="unknown relation"):
            client.request(
                "apply_delta",
                ("delta-probe", hash_v2, "any", Delta.add("nope", [(1,)])),
            )

        # A stale base hash is a version mismatch, same as a stale batch.
        with pytest.raises(ServerError, match="different data version"):
            client.request(
                "apply_delta", ("delta-probe", hash_v1, hash_v2, delta)
            )
        client.unregister("delta-probe")


# --------------------------------------------------------------------- #
# Sharded fleet: multi-round delta maintenance == cold rebuild
# --------------------------------------------------------------------- #
def test_sharded_fleet_survives_many_update_rounds():
    """Deterministic multi-round churn on a warm two-shard fleet: every
    round replays as an incremental diff (the churn is ~1% of the payload,
    so the diff path always wins), engines repair in place, and store
    contents + coverage stay identical to a cold rebuild."""
    schema = Schema(
        [RelationSchema("r", ["a", "b"]), RelationSchema("s", ["a", "c"])],
        name="delta-rounds",
    )
    values = ["u", "v", "w", "x", "y"]
    examples = [Example("t", (value,), True) for value in values]
    clauses = [
        parse_clause("t(x) :- r(x, y)."),
        parse_clause("t(x) :- r(x, y), s(x, z)."),
    ]
    rng = random.Random(29)

    warm = DatabaseInstance(schema, backend="sqlite-sharded")
    warm.backend.configure_sharding(shards=2, strategy="hash")
    try:
        # A payload two orders of magnitude above the per-round churn, so
        # collect_diff's "diff smaller than payload" gate always passes.
        with warm.transaction():
            for value in values:
                warm.add_tuples("r", [(value, f"b{i}") for i in range(40)])
                warm.add_tuples("s", [(value, f"c{i}") for i in range(40)])
        store = SaturationStore()
        engine = SubsumptionCoverageEngine(
            warm,
            BottomClauseConfig(max_depth=2),
            compiled=True,
            saturation_store=store,
        )
        engine.materialize(examples)
        service = warm.backend.coverage_service()
        baseline_full = service.reloads_full

        for round_index in range(4):
            # Touch two distinct example footprints per round, so the stale
            # set is big enough to rebuild through the sharded batch path.
            first, second = (
                values[round_index % len(values)],
                values[(round_index + 2) % len(values)],
            )
            ops = [
                ("add", "r", ((first, f"extra{round_index}"),)),
                ("add", "s", ((second, f"extra{round_index}"),)),
                (
                    "remove",
                    "r",
                    (rng.choice(sorted(warm.relation("r").rows, key=repr)),),
                ),
            ]
            delta = Delta(ops).coalesced()
            warm.apply_delta(delta)
            stale = engine.apply_delta(delta)
            assert len(stale) >= 2
            engine.materialize(examples)

            cold = DatabaseInstance(schema, backend="sqlite")
            with cold.transaction():
                for name in ("r", "s"):
                    cold.add_tuples(name, sorted(warm.relation(name).rows, key=repr))
            cold_store = SaturationStore()
            cold_engine = SubsumptionCoverageEngine(
                cold,
                BottomClauseConfig(max_depth=2),
                compiled=True,
                saturation_store=cold_store,
            )
            cold_engine.materialize(examples)

            assert store.contents() == cold_store.contents(), (
                f"store diverged on round {round_index}"
            )
            for clause in clauses:
                assert frozenset(engine.covered_examples(clause, examples)) == (
                    frozenset(cold_engine.covered_examples(clause, examples))
                ), f"coverage diverged on round {round_index}: {clause}"

        assert service.reloads_incremental >= 4, "rounds must ride the diff path"
        assert service.reloads_full == baseline_full, (
            "the warm fleet must never fall back to a full reload"
        )
    finally:
        warm.backend.close()
