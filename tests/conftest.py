"""Shared fixtures: small schemas, instances, and datasets used across tests."""

from __future__ import annotations

import pytest

from repro.database import (
    DatabaseInstance,
    FunctionalDependency,
    InclusionDependency,
    RelationSchema,
    Schema,
)
from repro.datasets import hiv, imdb, uwcse
from repro.transform import DecomposeOperation, SchemaTransformation


@pytest.fixture(params=["memory", "sqlite", "sqlite-pooled"])
def backend(request) -> str:
    """Storage/evaluation backend under test; parametrizes the shared
    instance fixtures so every database/learning coverage test runs against
    the dict-indexed memory backend and both SQLite backends."""
    return request.param


@pytest.fixture
def relation_factory(backend):
    """Build a single backend-specific relation store (for RelationInstance
    interface tests that should hold for every backend)."""

    def make(relation_schema: RelationSchema, rows=()):
        instance = DatabaseInstance(
            Schema([relation_schema], name="single"), backend=backend
        )
        relation = instance.relation(relation_schema.name)
        relation.add_all(rows)
        return relation

    return make


@pytest.fixture
def simple_schema() -> Schema:
    """A two-relation schema R1(A,B), R2(A,C) with an IND with equality on A."""
    return Schema(
        [RelationSchema("r1", ["a", "b"]), RelationSchema("r2", ["a", "c"])],
        [FunctionalDependency("r1", ["a"], ["b"])],
        [InclusionDependency("r1", ["a"], "r2", ["a"], with_equality=True)],
        name="simple",
    )


@pytest.fixture
def simple_instance(simple_schema: Schema, backend: str) -> DatabaseInstance:
    """A small instance of the simple schema satisfying its constraints."""
    instance = DatabaseInstance(simple_schema, backend=backend)
    instance.add_tuples("r1", [("a1", "b1"), ("a2", "b2"), ("a3", "b3")])
    instance.add_tuples("r2", [("a1", "c1"), ("a2", "c2"), ("a3", "c3"), ("a3", "c4")])
    return instance


@pytest.fixture
def composed_schema() -> Schema:
    """A single wide relation wide(A,B,C) to decompose in tests."""
    return Schema(
        [RelationSchema("wide", ["a", "b", "c"])],
        [FunctionalDependency("wide", ["a"], ["b", "c"])],
        [],
        name="composed",
    )


@pytest.fixture
def composed_instance(composed_schema: Schema) -> DatabaseInstance:
    instance = DatabaseInstance(composed_schema)
    instance.add_tuples(
        "wide",
        [("a1", "b1", "c1"), ("a2", "b2", "c2"), ("a3", "b3", "c3")],
    )
    return instance


@pytest.fixture
def wide_decomposition(composed_schema: Schema) -> SchemaTransformation:
    """Decompose wide(A,B,C) into left(A,B) and right(A,C)."""
    return SchemaTransformation(
        composed_schema,
        [DecomposeOperation("wide", [("left", ["a", "b"]), ("right", ["a", "c"])])],
        target_name="decomposed",
    )


@pytest.fixture(scope="session")
def uwcse_bundle():
    """A small seeded UW-CSE bundle shared across learner tests."""
    return uwcse.load(uwcse.UwCseConfig(num_students=25, num_professors=8, num_courses=12), seed=7)


@pytest.fixture(scope="session")
def hiv_bundle():
    """A small seeded HIV bundle."""
    return hiv.load(hiv.HivConfig(num_compounds=40, min_atoms=3, max_atoms=5), seed=7)


@pytest.fixture(scope="session")
def imdb_bundle():
    """A small seeded IMDb bundle."""
    return imdb.load(imdb.ImdbConfig(num_movies=40, num_directors=15, num_producers=10), seed=7)
