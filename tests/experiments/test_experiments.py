"""Tests for the experiment harness, reporting, and figure drivers (fast configs)."""


from repro.datasets import uwcse
from repro.experiments.figures import figure3_query_complexity
from repro.experiments.harness import LearnerSpec, check_schema_independence, run_variant
from repro.experiments.reporting import (
    format_dataset_statistics,
    format_paper_table,
    format_table,
    results_as_matrix,
)
from repro.experiments.tables import castor_spec, table13_stored_procedures
from repro.logic.clauses import HornDefinition
from repro.logic.parser import parse_clause


TINY_CONFIG = uwcse.UwCseConfig(num_students=14, num_professors=5, num_courses=8)


class _FixedLearner:
    """A deterministic stand-in learner so harness tests stay fast."""

    def __init__(self, schema):
        self.schema = schema

    def learn(self, instance, examples) -> HornDefinition:
        clause = parse_clause(
            "advisedBy(x, y) :- publication(t, x), publication(t, y)."
        )
        return HornDefinition("advisedBy", [clause])


FIXED_SPEC = LearnerSpec("Fixed", lambda schema: _FixedLearner(schema))


class TestHarness:
    def test_run_variant_single_split(self):
        bundle = uwcse.load(TINY_CONFIG, seed=5)
        result = run_variant(bundle, "original", FIXED_SPEC, folds=1, seed=0)
        assert result.learner == "Fixed"
        assert result.variant == "original"
        assert 0.0 <= result.precision <= 1.0
        assert result.time_seconds >= 0.0

    def test_run_variant_cross_validated(self):
        bundle = uwcse.load(TINY_CONFIG, seed=5)
        result = run_variant(bundle, "4nf", FIXED_SPEC, folds=2, seed=0)
        assert result.folds == 2

    def test_check_schema_independence_fixed_learner_is_dependent_or_not(self):
        """The fixed publication-join rule uses only an untouched relation, so
        its results must agree across every variant (it is trivially schema
        independent here) — the check must report that."""
        bundle = uwcse.load(TINY_CONFIG, seed=5)
        report = check_schema_independence(bundle, FIXED_SPEC, variants=["original", "4nf"])
        assert report.is_schema_independent
        assert set(report.result_sizes) == {"original", "4nf"}

    def test_table13_stored_procedures_speedup_reported(self):
        results = table13_stored_procedures(seed=1, datasets=("uwcse",))
        entry = results["uwcse"]
        assert entry["with_stored_procedures_seconds"] > 0
        assert entry["without_stored_procedures_seconds"] > 0
        assert entry["speedup"] > 0

    def test_castor_spec_builds_learner(self):
        bundle = uwcse.load(TINY_CONFIG, seed=5)
        learner = castor_spec().build(bundle.schema("original"))
        assert learner.name == "Castor"


class TestFigures:
    def test_figure3_points_have_expected_shape(self):
        points = figure3_query_complexity(
            num_variables_range=(4,), definitions_per_setting=2, seed=3
        )
        variants = {point["variant"] for point in points}
        assert variants == {"original", "4nf", "denormalized1", "denormalized2"}
        for point in points:
            assert point["mean_equivalence_queries"] >= 1
            assert point["mean_membership_queries"] >= 0

    def test_figure3_mqs_grow_with_decomposition(self):
        points = figure3_query_complexity(
            num_variables_range=(5,), definitions_per_setting=3, seed=7
        )
        by_variant = {p["variant"]: p["mean_membership_queries"] for p in points}
        assert by_variant["original"] >= by_variant["denormalized2"]


class TestReporting:
    def test_format_table_alignment(self):
        text = format_table(["a", "bb"], [[1, 2.5], ["xyz", 3]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert "xyz" in lines[-1]

    def test_format_paper_table_and_matrix(self):
        bundle = uwcse.load(TINY_CONFIG, seed=5)
        results = [
            run_variant(bundle, variant, FIXED_SPEC, folds=1, seed=0)
            for variant in ("original", "4nf")
        ]
        text = format_paper_table(results, ["original", "4nf"], "Table X")
        assert "Fixed" in text and "Precision" in text
        matrix = results_as_matrix(results, "recall")
        assert set(matrix["Fixed"]) == {"original", "4nf"}

    def test_format_dataset_statistics(self):
        bundle = uwcse.load(TINY_CONFIG, seed=5)
        text = format_dataset_statistics(bundle.statistics(), "Table 2")
        assert "original" in text and "#T" in text
