"""Harness knobs: warn-once best-effort settings, shards=, and
cross-validation saturation-store reuse."""

from __future__ import annotations

import warnings

import pytest

from repro.database import DatabaseInstance, RelationSchema, Schema
from repro.datasets import uwcse
from repro.experiments.harness import (
    LearnerSpec,
    _apply_parallelism,
    _apply_shards,
    check_schema_independence,
    run_variant,
)
from repro.progolem.progolem import ProGolemLearner, ProGolemParameters
from repro.learning.bottom_clause import BottomClauseConfig


@pytest.fixture(scope="module")
def tiny_bundle():
    return uwcse.load(
        uwcse.UwCseConfig(num_students=10, num_professors=3, num_courses=5), seed=5
    )


def progolem_spec() -> LearnerSpec:
    def factory(schema):
        return ProGolemLearner(
            schema,
            ProGolemParameters(
                sample_size=2,
                beam_width=2,
                max_armg_rounds=2,
                max_clauses=4,
                bottom_clause=BottomClauseConfig(max_depth=2, max_total_literals=20),
            ),
        )

    return LearnerSpec("ProGolem", factory)


# --------------------------------------------------------------------- #
# Warn-once semantics
# --------------------------------------------------------------------- #
class KnoblessLearnerAlpha:
    pass


class KnoblessLearnerBeta:
    pass


def test_apply_parallelism_warns_once_per_situation():
    with pytest.warns(RuntimeWarning, match="KnoblessLearnerAlpha.*parallelism=3"):
        _apply_parallelism(KnoblessLearnerAlpha(), 3)
    # Same learner class again: silent (already reported).
    with warnings.catch_warnings():
        warnings.simplefilter("error")
        _apply_parallelism(KnoblessLearnerAlpha(), 3)
    # A different situation still warns.
    with pytest.warns(RuntimeWarning, match="KnoblessLearnerBeta"):
        _apply_parallelism(KnoblessLearnerBeta(), 3)


def test_apply_parallelism_still_sets_the_knob():
    learner = ProGolemLearner(Schema([RelationSchema("r", ["a"])], name="s"))
    assert _apply_parallelism(learner, 5) is learner
    assert learner.parallelism == 5
    # parallelism=None is "unset", never a warning.
    with warnings.catch_warnings():
        warnings.simplefilter("error")
        _apply_parallelism(KnoblessLearnerAlpha(), None)


def test_apply_shards_warns_once_on_unsharded_backends():
    schema = Schema([RelationSchema("r", ["a", "b"])], name="warnme")
    instance = DatabaseInstance(schema)  # memory backend: no shard service
    with pytest.warns(RuntimeWarning, match="'memory'.*shards=2"):
        _apply_shards(instance, 2)
    with warnings.catch_warnings():
        warnings.simplefilter("error")
        _apply_shards(instance, 2)  # second time: silent
        _apply_shards(instance, None)  # unset: silent


def test_learners_accept_saturation_store_kwarg():
    """Both bottom-up learners take saturation_store= at construction."""
    from repro.castor.castor import CastorLearner
    from repro.database.sqlite_backend import SaturationStore

    schema = Schema([RelationSchema("r", ["a"])], name="s")
    store = SaturationStore()
    assert CastorLearner(schema, saturation_store=store).saturation_store is store
    assert ProGolemLearner(schema, saturation_store=store).saturation_store is store


def test_apply_shards_configures_sharded_backends():
    schema = Schema([RelationSchema("r", ["a", "b"])], name="shardme")
    instance = DatabaseInstance(schema, backend="sqlite-sharded")
    _apply_shards(instance, 3)
    assert instance.backend.shards == 3
    instance.backend.close()


# --------------------------------------------------------------------- #
# shards= threaded through the harness entry points
# --------------------------------------------------------------------- #
def test_run_variant_on_sharded_backend(tiny_bundle):
    variant = tiny_bundle.variant_names[0]
    baseline = run_variant(
        tiny_bundle, variant, progolem_spec(), folds=2, backend="sqlite"
    )
    sharded = run_variant(
        tiny_bundle,
        variant,
        progolem_spec(),
        folds=2,
        backend="sqlite-sharded",
        shards=2,
        parallelism=2,
    )
    assert sharded.precision == baseline.precision
    assert sharded.recall == baseline.recall
    assert sharded.f1 == baseline.f1


def test_check_schema_independence_accepts_shards(tiny_bundle):
    variants = tiny_bundle.variant_names[:2]
    baseline = check_schema_independence(
        tiny_bundle, progolem_spec(), variants=variants, backend="sqlite"
    )
    sharded = check_schema_independence(
        tiny_bundle,
        progolem_spec(),
        variants=variants,
        backend="sqlite-sharded",
        shards=2,
    )
    assert sharded.result_sizes == baseline.result_sizes
    assert sharded.pairwise_equivalent == baseline.pairwise_equivalent


# --------------------------------------------------------------------- #
# Saturation-store reuse across folds
# --------------------------------------------------------------------- #
def as_key(result):
    definition = result.definition
    clauses = sorted(str(c) for c in definition) if definition else []
    return (
        round(result.precision, 9),
        round(result.recall, 9),
        round(result.f1, 9),
        result.folds,
        clauses,
    )


def test_fold_results_identical_with_and_without_store_reuse(tiny_bundle):
    """Satellite: reusing one SaturationStore across folds changes timing
    only — metrics and learned definitions are identical."""
    variant = tiny_bundle.variant_names[0]
    fresh = run_variant(
        tiny_bundle,
        variant,
        progolem_spec(),
        folds=3,
        backend="sqlite",
        reuse_saturation_store=False,
    )
    reused = run_variant(
        tiny_bundle,
        variant,
        progolem_spec(),
        folds=3,
        backend="sqlite",
        reuse_saturation_store=True,
    )
    assert as_key(fresh) == as_key(reused)


def test_store_is_shared_across_fold_learners(tiny_bundle):
    """The factory hands every fold learner the same store object."""
    from repro.database.sqlite_backend import SaturationStore

    spec = progolem_spec()
    seen = []
    original_factory = spec.factory

    def spying_factory(schema_arg):
        learner = original_factory(schema_arg)
        seen.append(learner)
        return learner

    spec.factory = spying_factory
    run_variant(
        tiny_bundle,
        tiny_bundle.variant_names[0],
        spec,
        folds=2,
        backend="sqlite",
        reuse_saturation_store=True,
    )
    stores = {id(learner.saturation_store) for learner in seen}
    assert len(seen) >= 2, "cross-validation should build one learner per fold"
    assert len(stores) == 1
    assert isinstance(seen[0].saturation_store, SaturationStore)


def test_presaturate_warms_the_shared_store_before_folding(tiny_bundle):
    """presaturate= materializes every example into the shared store up
    front (one batched call) and fold results are unchanged."""
    spec = progolem_spec()
    seen = []
    original_factory = spec.factory

    def spying_factory(schema_arg):
        learner = original_factory(schema_arg)
        seen.append(learner)
        return learner

    spec.factory = spying_factory
    warmed = run_variant(
        tiny_bundle,
        tiny_bundle.variant_names[0],
        spec,
        folds=2,
        backend="sqlite",
        reuse_saturation_store=True,
        presaturate=True,
    )
    store = seen[0].saturation_store
    assert len(store) == len(tiny_bundle.examples.all_examples())

    cold = run_variant(
        tiny_bundle,
        tiny_bundle.variant_names[0],
        progolem_spec(),
        folds=2,
        backend="sqlite",
        reuse_saturation_store=True,
        presaturate=False,
    )
    assert (warmed.precision, warmed.recall, warmed.f1) == (
        cold.precision,
        cold.recall,
        cold.f1,
    )
