"""Synthetic UW-CSE dataset with the four schema variants of Section 9.

The real UW-CSE benchmark (Richardson & Domingos) describes an academic
department: students, professors, courses, TA-ships, publications.  The
target relation is ``advisedBy(stud, prof)``.  This module generates a
synthetic department with the same schema, the same constraints (the INDs of
Table 5), and a ground-truth advising process that leaves the same kind of
relational footprint the paper's examples rely on (advisors co-author
publications with their advisees; advisees TA courses taught by their
advisor), so the learners face the same structural learning problem.

Schema variants (all derived from the *Original* highly-decomposed schema):

* ``original``       — Table 1 left column (9 relations);
* ``4nf``            — student/inPhase/yearsInProgram composed, professor/
                        hasPosition composed (Table 1 right column);
* ``denormalized1``  — 4NF with courseLevel ⋈ taughtBy composed;
* ``denormalized2``  — denormalized1 with the course relation ⋈ professor.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..database.constraints import FunctionalDependency, InclusionDependency
from ..database.instance import DatabaseInstance
from ..database.schema import RelationSchema, Schema
from ..learning.examples import ExampleSet, sample_closed_world_negatives
from ..transform.transformation import SchemaTransformation
from ..transform.decomposition import ComposeOperation
from .base import DatasetBundle, SchemaVariant, base_variant

TARGET = "advisedBy"

PHASES = ("pre_quals", "post_quals", "post_generals")
POSITIONS = ("faculty", "adjunct", "emeritus")
LEVELS = ("level_300", "level_400", "level_500")
TERMS = ("autumn", "winter", "spring")


class UwCseConfig:
    """Size and behaviour knobs of the synthetic department generator."""

    def __init__(
        self,
        num_students: int = 40,
        num_professors: int = 12,
        num_courses: int = 18,
        publications_per_professor: int = 3,
        advising_fraction: float = 0.6,
        coauthor_probability: float = 0.9,
        ta_for_advisor_probability: float = 0.5,
        negative_ratio: float = 2.0,
    ):
        self.num_students = int(num_students)
        self.num_professors = int(num_professors)
        self.num_courses = int(num_courses)
        self.publications_per_professor = int(publications_per_professor)
        self.advising_fraction = float(advising_fraction)
        self.coauthor_probability = float(coauthor_probability)
        self.ta_for_advisor_probability = float(ta_for_advisor_probability)
        self.negative_ratio = float(negative_ratio)


def original_schema() -> Schema:
    """The Original UW-CSE schema (Table 1, left) with the INDs of Table 5."""
    relations = [
        RelationSchema("student", ["stud"]),
        RelationSchema("inPhase", ["stud", "phase"]),
        RelationSchema("yearsInProgram", ["stud", "years"]),
        RelationSchema("professor", ["prof"]),
        RelationSchema("hasPosition", ["prof", "position"]),
        RelationSchema("publication", ["title", "person"]),
        RelationSchema("courseLevel", ["crs", "level"]),
        RelationSchema("taughtBy", ["crs", "prof", "term"]),
        RelationSchema("ta", ["crs", "stud", "term"]),
    ]
    fds = [
        FunctionalDependency("inPhase", ["stud"], ["phase"]),
        FunctionalDependency("yearsInProgram", ["stud"], ["years"]),
        FunctionalDependency("hasPosition", ["prof"], ["position"]),
        FunctionalDependency("courseLevel", ["crs"], ["level"]),
    ]
    inds = [
        InclusionDependency("student", ["stud"], "inPhase", ["stud"], with_equality=True),
        InclusionDependency("student", ["stud"], "yearsInProgram", ["stud"], with_equality=True),
        InclusionDependency("professor", ["prof"], "hasPosition", ["prof"], with_equality=True),
        InclusionDependency("taughtBy", ["crs"], "courseLevel", ["crs"], with_equality=True),
        InclusionDependency("taughtBy", ["prof"], "professor", ["prof"], with_equality=True),
        InclusionDependency("ta", ["crs"], "taughtBy", ["crs"], with_equality=True),
        InclusionDependency("ta", ["stud"], "student", ["stud"]),
    ]
    return Schema(relations, fds, inds, name="uwcse-original")


def schema_variants(schema: Optional[Schema] = None) -> List[SchemaVariant]:
    """The four schema variants used in Table 10, as transformations of Original."""
    schema = schema or original_schema()
    original = base_variant(schema, "original")

    to_4nf = SchemaTransformation(
        schema,
        [
            ComposeOperation(
                ["student", "inPhase", "yearsInProgram"],
                "student",
                attribute_order=["stud", "phase", "years"],
            ),
            ComposeOperation(
                ["professor", "hasPosition"],
                "professor",
                attribute_order=["prof", "position"],
            ),
        ],
        target_name="uwcse-4nf",
    )

    to_denorm1 = SchemaTransformation(
        schema,
        [
            *to_4nf.operations,
            ComposeOperation(
                ["courseLevel", "taughtBy"],
                "course",
                attribute_order=["crs", "level", "prof", "term"],
            ),
        ],
        target_name="uwcse-denormalized1",
    )

    to_denorm2 = SchemaTransformation(
        schema,
        [
            *to_denorm1.operations,
            ComposeOperation(
                ["course", "professor"],
                "course",
                attribute_order=["crs", "level", "prof", "term", "position"],
            ),
        ],
        target_name="uwcse-denormalized2",
    )

    return [
        original,
        SchemaVariant("4nf", to_4nf),
        SchemaVariant("denormalized1", to_denorm1),
        SchemaVariant("denormalized2", to_denorm2),
    ]


def generate_instance(
    config: Optional[UwCseConfig] = None, seed: int = 0
) -> Tuple[DatabaseInstance, List[Tuple[str, str]]]:
    """Generate a department instance plus the hidden advisedBy ground truth.

    Returns ``(instance, advised_pairs)`` where ``advised_pairs`` is the list
    of (student, professor) positives.
    """
    config = config or UwCseConfig()
    rng = random.Random(seed)
    schema = original_schema()
    instance = DatabaseInstance(schema)

    students = [f"student{i}" for i in range(config.num_students)]
    professors = [f"prof{i}" for i in range(config.num_professors)]
    courses = [f"course{i}" for i in range(config.num_courses)]

    # One transaction for the whole population: mutating backends see a
    # single coalesced delta (one change notification, one mutation-log
    # record) instead of thousands of per-tuple bumps.
    advised_pairs: List[Tuple[str, str]] = []
    with instance.transaction():
        # --- professors ---------------------------------------------- #
        position_of: Dict[str, str] = {}
        for prof in professors:
            position = rng.choice(POSITIONS)
            position_of[prof] = position
            instance.add_tuple("professor", (prof,))
            instance.add_tuple("hasPosition", (prof, position))

        faculty = [p for p in professors if position_of[p] == "faculty"] or professors

        # --- students ------------------------------------------------ #
        phase_of: Dict[str, str] = {}
        for stud in students:
            phase = rng.choice(PHASES)
            years = rng.randint(1, 7)
            phase_of[stud] = phase
            instance.add_tuple("student", (stud,))
            instance.add_tuple("inPhase", (stud, phase))
            instance.add_tuple("yearsInProgram", (stud, years))

        # --- courses, teaching, TAs ---------------------------------- #
        teacher_of: Dict[str, str] = {}
        for crs in courses:
            level = rng.choice(LEVELS)
            prof = rng.choice(faculty)
            term = rng.choice(TERMS)
            teacher_of[crs] = prof
            instance.add_tuple("courseLevel", (crs, level))
            instance.add_tuple("taughtBy", (crs, prof, term))
            # Each taught course has at least one TA (keeps ta[crs] = taughtBy[crs]).
            instance.add_tuple("ta", (crs, rng.choice(students), term))
        # Ensure every professor teaches at least one course (taughtBy[prof] = professor[prof]).
        for prof in professors:
            if prof not in teacher_of.values():
                crs = rng.choice(courses)
                term = rng.choice(TERMS)
                instance.add_tuple("taughtBy", (crs, prof, term))
                instance.add_tuple("ta", (crs, rng.choice(students), term))

        # --- publications and advising (the hidden ground truth) ------ #
        title_counter = 0
        for prof in professors:
            for _ in range(config.publications_per_professor):
                title = f"paper{title_counter}"
                title_counter += 1
                instance.add_tuple("publication", (title, prof))

        advisee_candidates = [
            s for s in students if phase_of[s] in ("post_quals", "post_generals")
        ]
        rng.shuffle(advisee_candidates)
        num_advised = int(len(advisee_candidates) * config.advising_fraction) or 1
        for stud in advisee_candidates[:num_advised]:
            advisor = rng.choice(faculty)
            advised_pairs.append((stud, advisor))
            if rng.random() < config.coauthor_probability:
                title = f"paper{title_counter}"
                title_counter += 1
                instance.add_tuple("publication", (title, advisor))
                instance.add_tuple("publication", (title, stud))
            if rng.random() < config.ta_for_advisor_probability:
                advisor_courses = [c for c, p in teacher_of.items() if p == advisor]
                if advisor_courses:
                    crs = rng.choice(advisor_courses)
                    instance.add_tuple("ta", (crs, stud, rng.choice(TERMS)))

    return instance, advised_pairs


def generate_examples(
    advised_pairs: Sequence[Tuple[str, str]],
    instance: DatabaseInstance,
    config: Optional[UwCseConfig] = None,
    seed: int = 0,
) -> ExampleSet:
    """Positive advisedBy pairs plus closed-world sampled negatives."""
    config = config or UwCseConfig()
    students = sorted(instance.relation("student").distinct_values("stud"), key=str)
    professors = sorted(instance.relation("professor").distinct_values("prof"), key=str)
    negatives = sample_closed_world_negatives(
        advised_pairs,
        [students, professors],
        ratio=config.negative_ratio,
        seed=seed,
    )
    return ExampleSet(TARGET, advised_pairs, negatives)


def load(
    config: Optional[UwCseConfig] = None, seed: int = 0, backend: str = "memory"
) -> DatasetBundle:
    """Generate the full UW-CSE bundle (instance, examples, schema variants)."""
    config = config or UwCseConfig()
    instance, advised_pairs = generate_instance(config, seed)
    examples = generate_examples(advised_pairs, instance, config, seed)
    return DatasetBundle(
        "uwcse", instance, examples, schema_variants(), TARGET, backend=backend
    )
