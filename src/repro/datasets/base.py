"""Common dataset machinery: bundles of schema variants, instances, and examples.

Each dataset module (UW-CSE, HIV, IMDb) defines:

* a *base schema* with its FDs and INDs,
* a seeded generator producing a :class:`DatabaseInstance` of the base schema,
* the ground-truth labeling rule for the target relation (positives), with
  closed-world negative sampling,
* a set of named *schema variants*, each a :class:`SchemaTransformation` from
  the base schema (compositions and decompositions), mirroring the schemas of
  Tables 1, 3, 6 and 7.

The :class:`DatasetBundle` packages everything the experiment harness needs:
for a chosen variant it exposes the transformed schema, the transformed
instance, and the (schema-independent) example set.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..database.instance import DatabaseInstance
from ..database.schema import Schema
from ..learning.examples import ExampleSet
from ..transform.transformation import SchemaTransformation, identity_transformation


class SchemaVariant:
    """A named schema variant: the base schema plus a transformation to apply."""

    def __init__(self, name: str, transformation: SchemaTransformation):
        self.name = str(name)
        self.transformation = transformation

    @property
    def schema(self) -> Schema:
        return self.transformation.target_schema

    def materialize(self, base_instance: DatabaseInstance) -> DatabaseInstance:
        """Transform the base instance into this variant's instance."""
        return self.transformation.apply(base_instance)

    def __repr__(self) -> str:
        return f"SchemaVariant({self.name!r})"


class DatasetBundle:
    """A dataset ready for experiments: base instance, examples, and variants."""

    def __init__(
        self,
        name: str,
        base_instance: DatabaseInstance,
        examples: ExampleSet,
        variants: Sequence[SchemaVariant],
        target: str,
        backend: str = "memory",
    ):
        self.name = str(name)
        self.base_instance = base_instance
        self.examples = examples
        self.target = str(target)
        # Storage/evaluation backend variant instances are materialized on.
        self.backend = str(backend)
        self._variants: Dict[str, SchemaVariant] = {v.name: v for v in variants}
        self._materialized: Dict[str, DatabaseInstance] = {}

    # ------------------------------------------------------------------ #
    @property
    def variant_names(self) -> List[str]:
        return list(self._variants.keys())

    def variant(self, name: str) -> SchemaVariant:
        try:
            return self._variants[name]
        except KeyError as exc:
            raise KeyError(
                f"unknown schema variant {name!r}; available: {self.variant_names}"
            ) from exc

    def schema(self, variant_name: str) -> Schema:
        return self.variant(variant_name).schema

    def instance(self, variant_name: str) -> DatabaseInstance:
        """The dataset instance under the named schema variant (cached).

        Schema transformations are applied in memory; the result is then
        re-materialized on the bundle's configured backend when it differs.
        """
        cached = self._materialized.get(variant_name)
        if cached is None:
            cached = self.variant(variant_name).materialize(self.base_instance)
            if cached.backend_name != self.backend:
                cached = cached.with_backend(self.backend)
            self._materialized[variant_name] = cached
        return cached

    def with_backend(self, backend: str) -> "DatasetBundle":
        """A view of the same dataset materializing instances on ``backend``."""
        if backend == self.backend:
            return self
        return DatasetBundle(
            self.name,
            self.base_instance,
            self.examples,
            list(self._variants.values()),
            self.target,
            backend=backend,
        )

    def close(self) -> None:
        """Close the backends of every materialized variant instance.

        Backends with worker fleets or connection pools (`sqlite-pooled`,
        `sqlite-sharded`) hold real OS resources; owners of a converted
        bundle (e.g. a `LearningSession`) call this instead of waiting for
        the garbage collector.  Instances re-materialize lazily afterwards.
        """
        for instance in self._materialized.values():
            close = getattr(instance.backend, "close", None)
            if close is not None:
                close()
        self._materialized.clear()

    def transformation(self, variant_name: str) -> SchemaTransformation:
        return self.variant(variant_name).transformation

    def statistics(self) -> Dict[str, Dict[str, int]]:
        """#relations and #tuples per variant plus example counts (Table 2 style)."""
        stats: Dict[str, Dict[str, int]] = {}
        for name in self.variant_names:
            instance = self.instance(name)
            stats[name] = {
                "relations": len(instance.schema),
                "tuples": instance.total_tuples(),
                "positives": len(self.examples.positives),
                "negatives": len(self.examples.negatives),
            }
        return stats

    def __repr__(self) -> str:
        return (
            f"DatasetBundle({self.name!r}, target={self.target!r}, "
            f"variants={self.variant_names})"
        )


def base_variant(schema: Schema, name: Optional[str] = None) -> SchemaVariant:
    """The identity variant (the dataset in its base schema)."""
    return SchemaVariant(name or schema.name, identity_transformation(schema))
