"""Synthetic IMDb dataset with the JMDB / Stanford / Denormalized schemas.

The real experiment uses a post-2000 subset of the JMDB relational export of
IMDb and learns ``dramaDirector(director)`` — directors who directed a drama
movie — a target with an exact Datalog definition.  This module generates a
synthetic movie database with the same relational shape (movie, entity
relations, ``movies2X`` link relations) and the INDs of Table 8 (restricted to
the entities kept here), and derives the paper's two alternative schemas:

* ``jmdb``          — base schema, one link relation per entity kind;
* ``stanford``      — the link relations for genre/color/production company/
                       director/producer composed into a wide ``movie``
                       relation (Table 6, right);
* ``denormalized``  — each ``movies2X`` link relation composed with its
                       entity relation (Table 7).

The entity inventory is reduced (genre, color, production company, director,
producer, actor) relative to the full 46-relation JMDB schema; the kept
relations are exactly the ones involved in the paper's compositions, so every
schema-transformation code path is exercised.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..database.constraints import FunctionalDependency, InclusionDependency
from ..database.instance import DatabaseInstance
from ..database.schema import RelationSchema, Schema
from ..learning.examples import ExampleSet
from ..transform.decomposition import ComposeOperation
from ..transform.transformation import SchemaTransformation
from .base import DatasetBundle, SchemaVariant, base_variant

TARGET = "dramaDirector"

GENRES = ("drama", "comedy", "action", "documentary", "horror")
COLORS = ("color", "black_and_white")


class ImdbConfig:
    """Size knobs of the synthetic movie database generator."""

    def __init__(
        self,
        num_movies: int = 80,
        num_directors: int = 30,
        num_producers: int = 25,
        num_companies: int = 15,
        num_actors: int = 60,
        actors_per_movie: int = 3,
        negative_ratio: float = 2.0,
    ):
        self.num_movies = int(num_movies)
        self.num_directors = int(num_directors)
        self.num_producers = int(num_producers)
        self.num_companies = int(num_companies)
        self.num_actors = int(num_actors)
        self.actors_per_movie = int(actors_per_movie)
        self.negative_ratio = float(negative_ratio)


def jmdb_schema() -> Schema:
    """The (reduced) JMDB schema with the INDs of Table 8."""
    relations = [
        RelationSchema("movie", ["id", "title", "year"]),
        RelationSchema("genre", ["genreid", "genre"]),
        RelationSchema("color", ["colorid", "color"]),
        RelationSchema("prodcompany", ["prodcompid", "cname"]),
        RelationSchema("director", ["directorid", "dname"]),
        RelationSchema("producer", ["producerid", "pname"]),
        RelationSchema("actor", ["actorid", "aname", "sex"]),
        RelationSchema("movies2genre", ["id", "genreid"]),
        RelationSchema("movies2color", ["id", "colorid"]),
        RelationSchema("movies2prodcomp", ["id", "prodcompid"]),
        RelationSchema("movies2director", ["id", "directorid"]),
        RelationSchema("movies2producer", ["id", "producerid"]),
        RelationSchema("movies2actor", ["id", "actorid", "character"]),
    ]
    fds = [
        FunctionalDependency("movie", ["id"], ["title", "year"]),
        FunctionalDependency("genre", ["genreid"], ["genre"]),
        FunctionalDependency("color", ["colorid"], ["color"]),
        FunctionalDependency("prodcompany", ["prodcompid"], ["cname"]),
        FunctionalDependency("director", ["directorid"], ["dname"]),
        FunctionalDependency("producer", ["producerid"], ["pname"]),
        FunctionalDependency("actor", ["actorid"], ["aname", "sex"]),
    ]
    # INDs with equality used by the Stanford composition (movies2X[id] = movie[id])
    # and by the Denormalized composition (movies2X[Xid] = X[Xid]).
    inds = [
        InclusionDependency("movies2genre", ["id"], "movie", ["id"], with_equality=True),
        InclusionDependency("movies2color", ["id"], "movie", ["id"], with_equality=True),
        InclusionDependency("movies2prodcomp", ["id"], "movie", ["id"], with_equality=True),
        InclusionDependency("movies2director", ["id"], "movie", ["id"], with_equality=True),
        InclusionDependency("movies2producer", ["id"], "movie", ["id"], with_equality=True),
        InclusionDependency("movies2genre", ["genreid"], "genre", ["genreid"], with_equality=True),
        InclusionDependency("movies2color", ["colorid"], "color", ["colorid"], with_equality=True),
        InclusionDependency(
            "movies2prodcomp", ["prodcompid"], "prodcompany", ["prodcompid"], with_equality=True
        ),
        InclusionDependency(
            "movies2director", ["directorid"], "director", ["directorid"], with_equality=True
        ),
        InclusionDependency(
            "movies2producer", ["producerid"], "producer", ["producerid"], with_equality=True
        ),
        InclusionDependency(
            "movies2actor", ["actorid"], "actor", ["actorid"], with_equality=True
        ),
        InclusionDependency("movies2actor", ["id"], "movie", ["id"]),
    ]
    return Schema(relations, fds, inds, name="imdb-jmdb")


def schema_variants(schema: Optional[Schema] = None) -> List[SchemaVariant]:
    """The three IMDb schema variants of Table 11."""
    schema = schema or jmdb_schema()
    jmdb = base_variant(schema, "jmdb")

    to_stanford = SchemaTransformation(
        schema,
        [
            ComposeOperation(
                [
                    "movie",
                    "movies2genre",
                    "movies2color",
                    "movies2prodcomp",
                    "movies2director",
                    "movies2producer",
                ],
                "movie",
                attribute_order=[
                    "id",
                    "title",
                    "year",
                    "genreid",
                    "colorid",
                    "prodcompid",
                    "directorid",
                    "producerid",
                ],
            )
        ],
        target_name="imdb-stanford",
    )

    to_denormalized = SchemaTransformation(
        schema,
        [
            ComposeOperation(
                ["movies2genre", "genre"],
                "movies2genre",
                attribute_order=["id", "genreid", "genre"],
            ),
            ComposeOperation(
                ["movies2color", "color"],
                "movies2color",
                attribute_order=["id", "colorid", "color"],
            ),
            ComposeOperation(
                ["movies2prodcomp", "prodcompany"],
                "movies2prodcomp",
                attribute_order=["id", "prodcompid", "cname"],
            ),
            ComposeOperation(
                ["movies2director", "director"],
                "movies2director",
                attribute_order=["id", "directorid", "dname"],
            ),
            ComposeOperation(
                ["movies2producer", "producer"],
                "movies2producer",
                attribute_order=["id", "producerid", "pname"],
            ),
            ComposeOperation(
                ["movies2actor", "actor"],
                "movies2actor",
                attribute_order=["id", "actorid", "character", "aname", "sex"],
            ),
        ],
        target_name="imdb-denormalized",
    )

    return [
        jmdb,
        SchemaVariant("stanford", to_stanford),
        SchemaVariant("denormalized", to_denormalized),
    ]


def generate_instance(
    config: Optional[ImdbConfig] = None, seed: int = 0
) -> Tuple[DatabaseInstance, List[Tuple[str]]]:
    """Generate a movie database plus the dramaDirector ground truth."""
    config = config or ImdbConfig()
    rng = random.Random(seed)
    schema = jmdb_schema()
    instance = DatabaseInstance(schema)

    drama_directors: Set[str] = set()
    # One transaction for the whole population (including the unlinked-
    # entity cleanup): one coalesced delta and one mutation-log record
    # instead of a change notification per tuple.
    with instance.transaction():
        genre_ids = {genre: f"g{i}" for i, genre in enumerate(GENRES)}
        for genre, genre_id in genre_ids.items():
            instance.add_tuple("genre", (genre_id, genre))
        color_ids = {color: f"col{i}" for i, color in enumerate(COLORS)}
        for color, color_id in color_ids.items():
            instance.add_tuple("color", (color_id, color))

        companies = [f"pc{i}" for i in range(config.num_companies)]
        for company in companies:
            instance.add_tuple("prodcompany", (company, f"company_{company}"))
        directors = [f"d{i}" for i in range(config.num_directors)]
        for director in directors:
            instance.add_tuple("director", (director, f"director_{director}"))
        producers = [f"p{i}" for i in range(config.num_producers)]
        for producer in producers:
            instance.add_tuple("producer", (producer, f"producer_{producer}"))
        actors = [f"a{i}" for i in range(config.num_actors)]
        for actor in actors:
            instance.add_tuple("actor", (actor, f"actor_{actor}", rng.choice(("m", "f"))))

        used: Dict[str, Set[str]] = {
            "genre": set(),
            "color": set(),
            "company": set(),
            "director": set(),
            "producer": set(),
            "actor": set(),
        }

        for movie_index in range(config.num_movies):
            movie_id = f"m{movie_index}"
            year = rng.randint(2001, 2016)
            instance.add_tuple("movie", (movie_id, f"title_{movie_id}", year))

            genre = rng.choice(GENRES)
            director = rng.choice(directors)
            producer = rng.choice(producers)
            company = rng.choice(companies)
            color = rng.choice(COLORS)

            instance.add_tuple("movies2genre", (movie_id, genre_ids[genre]))
            instance.add_tuple("movies2color", (movie_id, color_ids[color]))
            instance.add_tuple("movies2prodcomp", (movie_id, company))
            instance.add_tuple("movies2director", (movie_id, director))
            instance.add_tuple("movies2producer", (movie_id, producer))
            for actor in rng.sample(actors, min(config.actors_per_movie, len(actors))):
                instance.add_tuple("movies2actor", (movie_id, actor, f"char_{movie_id}_{actor}"))
                used["actor"].add(actor)

            used["genre"].add(genre_ids[genre])
            used["color"].add(color_ids[color])
            used["company"].add(company)
            used["director"].add(director)
            used["producer"].add(producer)
            if genre == "drama":
                drama_directors.add(director)

        # The equality INDs movies2X[Xid] = X[Xid] require every stored entity to
        # be linked to at least one movie; drop unlinked entities.
        _drop_unlinked(instance, "genre", "genreid", used["genre"])
        _drop_unlinked(instance, "color", "colorid", used["color"])
        _drop_unlinked(instance, "prodcompany", "prodcompid", used["company"])
        _drop_unlinked(instance, "director", "directorid", used["director"])
        _drop_unlinked(instance, "producer", "producerid", used["producer"])
        _drop_unlinked(instance, "actor", "actorid", used["actor"])

    return instance, [(director,) for director in sorted(drama_directors)]


def _drop_unlinked(
    instance: DatabaseInstance, relation: str, key_attribute: str, keep: Set[str]
) -> None:
    """Remove entity tuples never referenced by a link relation.

    Routed through :meth:`DatabaseInstance.remove_tuple` so the removals
    land in the enclosing transaction's delta (a bare
    ``RelationInstance.remove`` would mutate past the recording seam).
    """
    stored = instance.relation(relation)
    position = stored.schema.position_of(key_attribute)
    for row in list(stored.rows):
        if row[position] not in keep:
            instance.remove_tuple(relation, row)


def generate_examples(
    drama_directors: Sequence[Tuple[str]],
    instance: DatabaseInstance,
    config: Optional[ImdbConfig] = None,
    seed: int = 0,
) -> ExampleSet:
    """Positive dramaDirector tuples plus non-drama directors as negatives."""
    config = config or ImdbConfig()
    rng = random.Random(seed)
    all_directors = sorted(
        instance.relation("director").distinct_values("directorid"), key=str
    )
    positive_set = {values[0] for values in drama_directors}
    negatives = [(d,) for d in all_directors if d not in positive_set]
    rng.shuffle(negatives)
    cap = int(len(positive_set) * config.negative_ratio) or len(negatives)
    negatives = negatives[:cap]
    return ExampleSet(TARGET, list(drama_directors), negatives)


def load(
    config: Optional[ImdbConfig] = None, seed: int = 0, backend: str = "memory"
) -> DatasetBundle:
    """Generate the full IMDb bundle (instance, examples, schema variants)."""
    config = config or ImdbConfig()
    instance, drama_directors = generate_instance(config, seed)
    examples = generate_examples(drama_directors, instance, config, seed)
    return DatasetBundle(
        "imdb", instance, examples, schema_variants(), TARGET, backend=backend
    )
