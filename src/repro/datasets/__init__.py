"""Synthetic datasets with schema variants: UW-CSE, HIV, IMDb."""

from . import hiv, imdb, uwcse
from .base import DatasetBundle, SchemaVariant, base_variant

__all__ = [
    "DatasetBundle",
    "SchemaVariant",
    "base_variant",
    "hiv",
    "imdb",
    "uwcse",
]
