"""Synthetic HIV anti-viral screen dataset with the schemas of Table 3.

The real dataset (NCI AIDS antiviral screen) describes ~42K chemical
compounds as atoms, elements, atom properties, and typed bonds; the target is
``hivActive(comp)``.  This module generates synthetic molecules with the same
relational structure and constraints (the INDs of Table 4) and labels
activity with a hidden structural rule (an electron-donor atom bonded to an
oxygen atom through a high-order bond), so that a correct definition exists
and requires joining through the bond relations — the structural property
that makes the 4NF-2 schema hard for top-down learners in the paper.

Schema variants (derived from the *Initial* schema):

* ``initial`` — bonds(bd,atm1,atm2) plus one relation per bond-type slot;
* ``4nf1``    — bonds ⋈ btype1 ⋈ btype2 ⋈ btype3 composed into a single
                six-attribute bonds relation;
* ``4nf2``    — bonds decomposed into bondSource(bd,atm1) / bondTarget(bd,atm2).

Scale: the paper's HIV-Large has 14M tuples; the generator defaults to a
laptop-scale molecule count and exposes the count as a knob.  The harness
uses two presets, ``hiv_small`` (the HIV-2K4K stand-in) and ``hiv_large`` (a
larger sweep), documented in EXPERIMENTS.md.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..database.constraints import FunctionalDependency, InclusionDependency
from ..database.instance import DatabaseInstance
from ..database.schema import RelationSchema, Schema
from ..learning.examples import ExampleSet
from ..transform.decomposition import ComposeOperation, DecomposeOperation
from ..transform.transformation import SchemaTransformation
from .base import DatasetBundle, SchemaVariant, base_variant

TARGET = "hivActive"

ELEMENTS = ("c", "n", "o", "s", "cl")
BOND_TYPES_1 = ("t1a", "t1b")
BOND_TYPES_2 = ("t2a", "t2b", "t2c")
BOND_TYPES_3 = ("t3a", "t3b")
PROPERTY_RELATIONS = ("p2_0", "p2_1", "p3")


class HivConfig:
    """Size and labeling knobs of the synthetic molecule generator."""

    def __init__(
        self,
        num_compounds: int = 120,
        min_atoms: int = 4,
        max_atoms: int = 8,
        active_fraction: float = 0.35,
        property_probability: float = 0.4,
        negative_ratio: float = 2.0,
    ):
        self.num_compounds = int(num_compounds)
        self.min_atoms = int(min_atoms)
        self.max_atoms = int(max_atoms)
        self.active_fraction = float(active_fraction)
        self.property_probability = float(property_probability)
        self.negative_ratio = float(negative_ratio)


def initial_schema() -> Schema:
    """The Initial HIV schema (Table 3) with the INDs of Table 4."""
    relations = [
        RelationSchema("compound", ["comp", "atm"]),
        RelationSchema("bonds", ["bd", "atm1", "atm2"]),
        RelationSchema("btype1", ["bd", "t1"]),
        RelationSchema("btype2", ["bd", "t2"]),
        RelationSchema("btype3", ["bd", "t3"]),
    ]
    relations.extend(
        RelationSchema(f"element_{element}", ["atm"]) for element in ELEMENTS
    )
    relations.extend(
        RelationSchema(name, ["atm"]) for name in PROPERTY_RELATIONS
    )
    fds = [
        FunctionalDependency("btype1", ["bd"], ["t1"]),
        FunctionalDependency("btype2", ["bd"], ["t2"]),
        FunctionalDependency("btype3", ["bd"], ["t3"]),
    ]
    inds = [
        InclusionDependency("bonds", ["bd"], "btype1", ["bd"], with_equality=True),
        InclusionDependency("bonds", ["bd"], "btype2", ["bd"], with_equality=True),
        InclusionDependency("bonds", ["bd"], "btype3", ["bd"], with_equality=True),
        InclusionDependency("bonds", ["atm1"], "compound", ["atm"]),
        InclusionDependency("bonds", ["atm2"], "compound", ["atm"]),
    ]
    inds.extend(
        InclusionDependency(f"element_{element}", ["atm"], "compound", ["atm"])
        for element in ELEMENTS
    )
    inds.extend(
        InclusionDependency(name, ["atm"], "compound", ["atm"])
        for name in PROPERTY_RELATIONS
    )
    return Schema(relations, fds, inds, name="hiv-initial")


def schema_variants(schema: Optional[Schema] = None) -> List[SchemaVariant]:
    """The three HIV schema variants of Table 9."""
    schema = schema or initial_schema()
    initial = base_variant(schema, "initial")

    to_4nf1 = SchemaTransformation(
        schema,
        [
            ComposeOperation(
                ["bonds", "btype1", "btype2", "btype3"],
                "bonds",
                attribute_order=["bd", "atm1", "atm2", "t1", "t2", "t3"],
            )
        ],
        target_name="hiv-4nf1",
    )

    to_4nf2 = SchemaTransformation(
        schema,
        [
            DecomposeOperation(
                "bonds",
                [("bondSource", ["bd", "atm1"]), ("bondTarget", ["bd", "atm2"])],
            )
        ],
        target_name="hiv-4nf2",
    )

    return [initial, SchemaVariant("4nf1", to_4nf1), SchemaVariant("4nf2", to_4nf2)]


def generate_instance(
    config: Optional[HivConfig] = None, seed: int = 0
) -> Tuple[DatabaseInstance, List[Tuple[str]]]:
    """Generate molecules plus the hidden hivActive ground truth.

    A compound is *active* when it contains a nitrogen atom carrying property
    ``p2_1`` that is bonded (either bond direction) to an oxygen atom.
    Active compounds are built to contain that substructure.  Inactive
    compounds may contain decoys — nitrogen atoms with ``p2_1`` and oxygen
    atoms in the same molecule — but never a bond between the two, so weaker
    rules that ignore the bond relation cover negatives and only the full
    join is a consistent definition.
    """
    config = config or HivConfig()
    rng = random.Random(seed)
    schema = initial_schema()
    instance = DatabaseInstance(schema)

    active_compounds: List[Tuple[str]] = []
    bond_counter = 0

    # One transaction for the whole population: one coalesced delta (and
    # one mutation-log record on logging backends) instead of a
    # change-notification per tuple.
    with instance.transaction():
        for compound_index in range(config.num_compounds):
            compound = f"comp{compound_index}"
            is_active = rng.random() < config.active_fraction
            num_atoms = rng.randint(config.min_atoms, config.max_atoms)
            atoms = [f"{compound}_a{i}" for i in range(num_atoms)]
            elements: Dict[str, str] = {}
            has_p2_1: Set[str] = set()

            for atom in atoms:
                elements[atom] = rng.choice(ELEMENTS)

            if is_active:
                # Plant the active substructure: p2_1 nitrogen bonded to oxygen.
                elements[atoms[0]] = "n"
                elements[atoms[1]] = "o"
                has_p2_1.add(atoms[0])
                active_compounds.append((compound,))
            elif rng.random() < 0.5 and num_atoms >= 3:
                # Plant a decoy: p2_1 nitrogen and an oxygen, never bonded together.
                elements[atoms[0]] = "n"
                elements[atoms[2]] = "o"
                has_p2_1.add(atoms[0])

            for atom in atoms:
                instance.add_tuple("compound", (compound, atom))
                instance.add_tuple(f"element_{elements[atom]}", (atom,))
                if atom in has_p2_1:
                    instance.add_tuple("p2_1", (atom,))
                for property_name in PROPERTY_RELATIONS:
                    if property_name == "p2_1":
                        continue
                    if rng.random() < config.property_probability:
                        instance.add_tuple(property_name, (atom,))

            # Build a connected chain of bonds plus a few random extra bonds.
            bond_pairs: List[Tuple[str, str]] = []
            for i in range(len(atoms) - 1):
                bond_pairs.append((atoms[i], atoms[i + 1]))
            extra_bonds = rng.randint(0, max(1, num_atoms // 2))
            for _ in range(extra_bonds):
                left, right = rng.sample(atoms, 2)
                bond_pairs.append((left, right))
            if is_active and (atoms[0], atoms[1]) not in bond_pairs:
                bond_pairs.append((atoms[0], atoms[1]))

            def forms_forbidden_pattern(left: str, right: str) -> bool:
                """A bond that would make an inactive compound satisfy the rule."""
                left_matches = elements[left] == "n" and left in has_p2_1 and elements[right] == "o"
                right_matches = elements[right] == "n" and right in has_p2_1 and elements[left] == "o"
                return left_matches or right_matches

            for left, right in bond_pairs:
                if not is_active and forms_forbidden_pattern(left, right):
                    continue
                bond = f"bd{bond_counter}"
                bond_counter += 1
                instance.add_tuple("bonds", (bond, left, right))
                instance.add_tuple("btype1", (bond, rng.choice(BOND_TYPES_1)))
                instance.add_tuple("btype2", (bond, rng.choice(BOND_TYPES_2)))
                instance.add_tuple("btype3", (bond, rng.choice(BOND_TYPES_3)))

    return instance, active_compounds


def generate_examples(
    active_compounds: Sequence[Tuple[str]],
    instance: DatabaseInstance,
    config: Optional[HivConfig] = None,
    seed: int = 0,
) -> ExampleSet:
    """Positive hivActive compounds plus all inactive compounds as negatives.

    Because the target is unary, negatives are simply the remaining compounds
    (capped at ``negative_ratio`` × positives to match the paper's ratio).
    """
    config = config or HivConfig()
    rng = random.Random(seed)
    all_compounds = sorted(instance.relation("compound").distinct_values("comp"), key=str)
    active_set = {values[0] for values in active_compounds}
    negatives = [(c,) for c in all_compounds if c not in active_set]
    rng.shuffle(negatives)
    cap = int(len(active_set) * config.negative_ratio) or len(negatives)
    negatives = negatives[:cap]
    return ExampleSet(TARGET, list(active_compounds), negatives)


def load(
    config: Optional[HivConfig] = None, seed: int = 0, backend: str = "memory"
) -> DatasetBundle:
    """Generate the full HIV bundle (instance, examples, schema variants)."""
    config = config or HivConfig()
    instance, active_compounds = generate_instance(config, seed)
    examples = generate_examples(active_compounds, instance, config, seed)
    return DatasetBundle(
        "hiv", instance, examples, schema_variants(), TARGET, backend=backend
    )


def load_small(seed: int = 0, backend: str = "memory") -> DatasetBundle:
    """The HIV-2K4K stand-in: a smaller molecule set for fast experiments."""
    return load(
        HivConfig(num_compounds=60, min_atoms=3, max_atoms=6), seed=seed, backend=backend
    )


def load_large(seed: int = 0, backend: str = "memory") -> DatasetBundle:
    """The HIV-Large stand-in: more compounds and larger molecules."""
    return load(
        HivConfig(num_compounds=240, min_atoms=5, max_atoms=10),
        seed=seed,
        backend=backend,
    )
