"""Length-prefixed pickle framing and the two shard transports.

The evaluation service speaks one wire format everywhere: a message is a
picklable Python object encoded as ``4-byte big-endian length || pickle
bytes``.  Locally the frames travel over :mod:`multiprocessing` pipes
(:class:`PipeTransport`); a worker may equally run out-of-process — even on
another host — behind a TCP socket (:class:`SocketTransport`).  Both ends of
either transport exchange ``(kind, payload)`` tuples; the codec is shared so
a worker cannot tell which transport carried a request.

Security note: frames are **pickle**, so the service must only ever be
connected to trusted workers on trusted networks (the same trust model as
``multiprocessing`` itself).  See ``docs/distributed.md``.
"""

from __future__ import annotations

import pickle
import socket
import struct
from typing import Optional, Tuple

#: Frame header: unsigned 32-bit big-endian payload length.
_HEADER = struct.Struct(">I")

#: Refuse absurd frames instead of attempting a multi-GiB allocation when a
#: corrupt or hostile peer sends a bogus length header.
MAX_FRAME_BYTES = 1 << 30


class TransportError(ConnectionError):
    """The peer went away (closed pipe/socket, dead process, reset)."""


class UnknownHandleError(KeyError):
    """A persistent-server request named a handle (or data version) the
    server does not hold.

    Defined here — not in the server module — because the *type name* is
    the wire contract: server-side exceptions cross as ``(type, message,
    traceback)`` and the client recovers (re-registers, re-ships) exactly
    when the type is this one, never by matching message prose.
    """

    def __str__(self) -> str:  # KeyError would repr() the message
        return self.args[0] if self.args else ""


def encode_frame(message: object) -> bytes:
    """Serialize one message into a length-prefixed pickle frame."""
    payload = pickle.dumps(message, protocol=pickle.HIGHEST_PROTOCOL)
    return _HEADER.pack(len(payload)) + payload


def decode_frame(frame: bytes) -> object:
    """Inverse of :func:`encode_frame` (validates the embedded length)."""
    if len(frame) < _HEADER.size:
        raise TransportError(f"truncated frame: {len(frame)} bytes")
    (length,) = _HEADER.unpack_from(frame)
    body = frame[_HEADER.size :]
    if length != len(body):
        raise TransportError(
            f"frame length header says {length} bytes, got {len(body)}"
        )
    return pickle.loads(body)


class PipeTransport:
    """Frames over a :mod:`multiprocessing` pipe connection.

    The pipe already preserves message boundaries, so the frame travels as
    one ``send_bytes`` payload; the embedded length prefix keeps the bytes
    identical to what the socket transport would carry.
    """

    def __init__(self, connection):
        self._connection = connection

    def send(self, message: object) -> None:
        try:
            self._connection.send_bytes(encode_frame(message))
        except (OSError, ValueError, BrokenPipeError) as exc:
            raise TransportError(f"pipe send failed: {exc}") from exc

    def recv(self) -> object:
        try:
            frame = self._connection.recv_bytes()
        except (EOFError, OSError) as exc:
            raise TransportError(f"pipe closed: {exc}") from exc
        return decode_frame(frame)

    def close(self) -> None:
        try:
            self._connection.close()
        except OSError:
            pass


class SocketTransport:
    """Frames over a stream socket (a worker on another host, or localhost)."""

    def __init__(self, sock: socket.socket):
        self._socket = sock
        # Batch requests are single frames; latency beats throughput here.
        try:
            self._socket.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        except OSError:
            pass  # e.g. AF_UNIX sockets

    def send(self, message: object) -> None:
        try:
            self._socket.sendall(encode_frame(message))
        except OSError as exc:
            raise TransportError(f"socket send failed: {exc}") from exc

    def _recv_exact(self, count: int) -> bytes:
        chunks = []
        remaining = count
        while remaining:
            try:
                chunk = self._socket.recv(min(remaining, 1 << 20))
            except OSError as exc:
                raise TransportError(f"socket recv failed: {exc}") from exc
            if not chunk:
                raise TransportError("socket closed mid-frame")
            chunks.append(chunk)
            remaining -= len(chunk)
        return b"".join(chunks)

    def recv(self) -> object:
        header = self._recv_exact(_HEADER.size)
        (length,) = _HEADER.unpack(header)
        if length > MAX_FRAME_BYTES:
            raise TransportError(f"frame of {length} bytes exceeds limit")
        return decode_frame(header + self._recv_exact(length))

    def close(self) -> None:
        try:
            self._socket.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        try:
            self._socket.close()
        except OSError:
            pass


def parse_address(address: str) -> Tuple[str, int]:
    """Split ``"host:port"`` into a connectable pair."""
    host, _, port = address.rpartition(":")
    if not host or not port.isdigit():
        raise ValueError(f"expected HOST:PORT, got {address!r}")
    return host, int(port)


def connect(address: str, timeout: Optional[float] = None) -> SocketTransport:
    """Open a socket transport to a listening worker (``host:port``)."""
    host, port = parse_address(address)
    sock = socket.create_connection((host, port), timeout=timeout)
    sock.settimeout(None)
    return SocketTransport(sock)
