"""Length-prefixed framing, pluggable codecs, and the two shard transports.

A message is a ``(kind, payload)`` tuple encoded as ``4-byte big-endian
length || body``.  What the body *is* depends on the codec the transport was
built with:

* :class:`PickleCodec` (default) — pickle bytes.  Used only on the trusted
  in-process seam between the coordinator and the shard workers it spawned
  (pipes, or loopback sockets verified with a spawn nonce before any pickle
  flows — see :func:`auth_proof`).
* ``wire.JsonWireCodec`` — the versioned tagged-JSON envelope
  (``{"v": 1, "kind": ..., "payload": ...}``).  Used on the client/server
  socket seam, where peers are untrusted: decoding never executes bytes.

Both transports enforce :data:`MAX_FRAME_BYTES` *before* allocating a body,
so a hostile length header cannot trigger a multi-GiB allocation.
"""

from __future__ import annotations

import hashlib
import hmac
import pickle
import socket
import struct
from typing import Optional, Tuple

#: Frame header: unsigned 32-bit big-endian payload length.
_HEADER = struct.Struct(">I")

#: Refuse absurd frames instead of attempting a multi-GiB allocation when a
#: corrupt or hostile peer sends a bogus length header.
MAX_FRAME_BYTES = 1 << 30


class TransportError(ConnectionError):
    """The peer went away (closed pipe/socket, dead process, reset, timeout)."""


class UnknownHandleError(KeyError):
    """A persistent-server request named a handle (or data version) the
    server does not hold.

    Defined here — not in the server module — because the *type name* is
    the wire contract: server-side exceptions cross as ``(type, message,
    traceback)`` and the client recovers (re-registers, re-ships) exactly
    when the type is this one, never by matching message prose.
    """

    def __str__(self) -> str:  # KeyError would repr() the message
        return self.args[0] if self.args else ""


class DeltaMismatchError(ValueError):
    """An ``apply_delta`` request did not reproduce the claimed content hash.

    Like :class:`UnknownHandleError`, the type name is the wire contract:
    the client falls back to the full register/load dance exactly when the
    server raises this — the delta path is an optimization, never a
    correctness dependency.
    """


class AuthenticationError(PermissionError):
    """The connection did not present the server's auth token."""


class ProtocolVersionError(ConnectionError):
    """The peer speaks a different wire-format version (or none at all)."""


class HandleBusyError(RuntimeError):
    """The handle is mid-batch and the bounded wait expired; retry later."""


class QuotaExceededError(RuntimeError):
    """One client has too many requests queued on a single handle."""


class ServerBusyError(RuntimeError):
    """A handle's request queue is at capacity; back off and retry."""


class ServerDrainingError(RuntimeError):
    """The server is draining for shutdown and no longer accepts work."""


class PickleCodec:
    """Executable codec for the trusted coordinator/worker seam only."""

    name = "pickle"

    @staticmethod
    def encode(message: object) -> bytes:
        return pickle.dumps(message, protocol=pickle.HIGHEST_PROTOCOL)

    @staticmethod
    def decode(body: bytes) -> object:
        return pickle.loads(body)


_PICKLE_CODEC = PickleCodec()


def encode_frame(message: object, codec=None) -> bytes:
    """Serialize one message into a length-prefixed frame."""
    payload = (codec or _PICKLE_CODEC).encode(message)
    if len(payload) > MAX_FRAME_BYTES:
        raise TransportError(f"frame of {len(payload)} bytes exceeds limit")
    return _HEADER.pack(len(payload)) + payload


def decode_frame(frame: bytes, codec=None) -> object:
    """Inverse of :func:`encode_frame` (validates the embedded length)."""
    if len(frame) < _HEADER.size:
        raise TransportError(f"truncated frame: {len(frame)} bytes")
    (length,) = _HEADER.unpack_from(frame)
    if length > MAX_FRAME_BYTES:
        raise TransportError(f"frame of {length} bytes exceeds limit")
    body = frame[_HEADER.size :]
    if length != len(body):
        raise TransportError(
            f"frame length header says {length} bytes, got {len(body)}"
        )
    return (codec or _PICKLE_CODEC).decode(body)


class PipeTransport:
    """Frames over a :mod:`multiprocessing` pipe connection.

    The pipe already preserves message boundaries, so the frame travels as
    one ``send_bytes`` payload; the embedded length prefix keeps the bytes
    identical to what the socket transport would carry.
    """

    def __init__(self, connection, codec=None):
        self._connection = connection
        self._codec = codec or _PICKLE_CODEC
        #: Size of the most recently received frame (header + body); the
        #: server uses it as an honest measure of payload memory footprint.
        self.last_recv_bytes = 0

    def send(self, message: object) -> None:
        try:
            self._connection.send_bytes(encode_frame(message, self._codec))
        except (OSError, ValueError, BrokenPipeError) as exc:
            raise TransportError(f"pipe send failed: {exc}") from exc

    def recv(self) -> object:
        try:
            # maxlength bounds the allocation *before* any bytes land; the
            # header check in decode_frame alone would run after
            # Connection.recv_bytes() has already materialised the buffer.
            # MAX_FRAME_BYTES is read at call time so tests can shrink it.
            frame = self._connection.recv_bytes(MAX_FRAME_BYTES + _HEADER.size)
        except (EOFError, OSError, ValueError) as exc:
            raise TransportError(f"pipe closed: {exc}") from exc
        self.last_recv_bytes = len(frame)
        return decode_frame(frame, self._codec)

    def close(self) -> None:
        try:
            self._connection.close()
        except OSError:
            pass


class SocketTransport:
    """Frames over a stream socket (a worker on another host, or localhost)."""

    def __init__(self, sock: socket.socket, codec=None):
        self._socket = sock
        self._codec = codec or _PICKLE_CODEC
        self.last_recv_bytes = 0
        # Batch requests are single frames; latency beats throughput here.
        try:
            self._socket.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        except OSError:
            pass  # e.g. AF_UNIX sockets

    def send(self, message: object) -> None:
        try:
            self._socket.sendall(encode_frame(message, self._codec))
        except socket.timeout as exc:
            raise TransportError(f"socket send timed out: {exc}") from exc
        except OSError as exc:
            raise TransportError(f"socket send failed: {exc}") from exc

    def _recv_exact(self, count: int) -> bytes:
        chunks = []
        remaining = count
        while remaining:
            try:
                chunk = self._socket.recv(min(remaining, 1 << 20))
            except socket.timeout as exc:
                raise TransportError(f"socket recv timed out: {exc}") from exc
            except OSError as exc:
                raise TransportError(f"socket recv failed: {exc}") from exc
            if not chunk:
                raise TransportError("socket closed mid-frame")
            chunks.append(chunk)
            remaining -= len(chunk)
        return b"".join(chunks)

    def recv(self) -> object:
        header = self._recv_exact(_HEADER.size)
        (length,) = _HEADER.unpack(header)
        if length > MAX_FRAME_BYTES:
            raise TransportError(f"frame of {length} bytes exceeds limit")
        self.last_recv_bytes = _HEADER.size + length
        return decode_frame(header + self._recv_exact(length), self._codec)

    def set_timeout(self, value: Optional[float]) -> None:
        """Adjust the socket deadline (None = block indefinitely)."""
        try:
            self._socket.settimeout(value)
        except OSError:
            pass

    def close(self) -> None:
        try:
            self._socket.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        try:
            self._socket.close()
        except OSError:
            pass


def parse_address(address: str) -> Tuple[str, int]:
    """Split ``"host:port"`` into a connectable pair."""
    host, _, port = address.rpartition(":")
    if not host or not port.isdigit():
        raise ValueError(f"expected HOST:PORT, got {address!r}")
    return host, int(port)


def connect(
    address: str,
    timeout: Optional[float] = None,
    request_timeout: Optional[float] = None,
    codec=None,
) -> SocketTransport:
    """Open a socket transport to a listening peer (``host:port``).

    ``timeout`` bounds the TCP connect; ``request_timeout`` stays on the
    socket afterwards so a hung peer surfaces as :class:`TransportError`
    instead of blocking forever (``None`` preserves the old blocking
    behaviour).
    """
    host, port = parse_address(address)
    sock = socket.create_connection((host, port), timeout=timeout)
    sock.settimeout(request_timeout)
    return SocketTransport(sock, codec=codec)


# ---------------------------------------------------------------------------
# Raw-bytes auth preamble for pickle-speaking worker sockets.
#
# Spawned socket workers dial back to the coordinator (and standalone workers
# accept coordinator dials); because that seam speaks pickle, the *listening*
# side must prove the peer knows a shared secret before it unpickles a single
# frame.  The proof is fixed-size raw bytes — no parsing, no allocation
# driven by peer input.

_AUTH_MAGIC = b"RPAUTH1\n"
AUTH_PROOF_BYTES = len(_AUTH_MAGIC) + hashlib.sha256().digest_size


def auth_proof(secret: str) -> bytes:
    """The fixed-size preamble a connecting peer sends to prove the secret."""
    return _AUTH_MAGIC + hashlib.sha256(secret.encode()).digest()


def send_auth_proof(sock: socket.socket, secret: str) -> None:
    """Send the auth preamble on a just-connected socket."""
    try:
        sock.sendall(auth_proof(secret))
    except OSError as exc:
        raise TransportError(f"auth preamble send failed: {exc}") from exc


def verify_auth_proof(
    sock: socket.socket, secret: str, timeout: float = 10.0
) -> bool:
    """Read and check the auth preamble; True iff the peer knows ``secret``.

    Runs before any pickle decode.  On mismatch or timeout the caller must
    close the socket without reading further.
    """
    expected = auth_proof(secret)
    previous = sock.gettimeout()
    sock.settimeout(timeout)
    try:
        received = b""
        while len(received) < AUTH_PROOF_BYTES:
            try:
                chunk = sock.recv(AUTH_PROOF_BYTES - len(received))
            except OSError:
                return False
            if not chunk:
                return False
            received += chunk
        return hmac.compare_digest(received, expected)
    finally:
        try:
            sock.settimeout(previous)
        except OSError:
            pass
