"""The shard worker: one process owning one slice of the evaluation work.

A worker receives an **instance payload** (schema + relation rows), rebuilds
the database on its own SQLite-family backend (``sqlite-pooled`` by default,
so intra-worker ``parallelism`` reuses the snapshot read-pool machinery),
and then serves coverage requests until told to shut down.  Per-engine state
— in particular each example's materialized saturation in the worker's
:class:`~repro.database.sqlite_backend.SaturationStore` — lives as long as
the process, so repeated batches (generations of a covering run, folds of a
cross-validation) hit a warm store instead of rebuilding it.

Requests and replies are ``(kind, payload)`` tuples over the length-prefixed
pickle protocol (:mod:`repro.distributed.protocol`).  Replies are
``("ok", result)`` or ``("error", (type, message, traceback))`` — the worker
never lets an evaluation exception kill the process.  Coverage replies are
**bitsets**: one integer per clause, bit ``j`` set when the clause covers
the ``j``-th example/candidate of the request's shard-local slice.

Entry points:

* :func:`pipe_worker_main` — local worker on a multiprocessing pipe;
* :func:`socket_worker_main` — local worker that dials back to the
  coordinator's listener over TCP (same codepath a remote worker uses);
* ``python -m repro.distributed.worker --serve HOST:PORT`` — a standalone
  worker on another machine; the coordinator attaches to it with
  :meth:`EvaluationService.attach_remote <repro.distributed.service.EvaluationService>`.
"""

from __future__ import annotations

import argparse
import os
import pickle
import socket
import sys
import traceback
from typing import Dict, List, Optional, Sequence, Tuple

from .protocol import (
    PipeTransport,
    SocketTransport,
    TransportError,
    parse_address,
    send_auth_proof,
    verify_auth_proof,
)

Row = Tuple[object, ...]

#: Engine-spec kinds a worker can instantiate (see ``shard_spec`` on the
#: coverage engines).  Listed here so the service can validate early.
SPEC_KINDS = ("query", "subsumption", "castor")

#: Builder-spec kinds a worker can instantiate for saturation
#: materialization (see ``saturation_spec`` on the bottom-clause builders).
SATURATION_SPEC_KINDS = ("bottom", "castor-bottom")


class InstancePayload:
    """Everything a worker needs to rebuild the database instance."""

    __slots__ = ("schema", "rows", "backend", "pool_size")

    def __init__(
        self,
        schema,
        rows: Dict[str, List[Row]],
        backend: str = "sqlite-pooled",
        pool_size: Optional[int] = None,
    ):
        self.schema = schema
        self.rows = rows
        self.backend = str(backend)
        self.pool_size = pool_size

    def __repr__(self) -> str:
        tuples = sum(len(r) for r in self.rows.values())
        return f"InstancePayload({len(self.rows)} relations, {tuples} tuples)"


class WorkerState:
    """Dispatch table plus the long-lived instance/engine state of one worker."""

    def __init__(self) -> None:
        self.instance = None
        self._engines: Dict[bytes, object] = {}
        self._builders: Dict[bytes, object] = {}

    # ------------------------------------------------------------------ #
    # Instance / engines
    # ------------------------------------------------------------------ #
    def _rebuild(self, payload: InstancePayload) -> None:
        from ..database.backend import create_backend
        from ..database.instance import DatabaseInstance

        backend = create_backend(payload.backend)
        if payload.pool_size is not None and hasattr(backend, "pool_size"):
            backend.pool_size = max(1, int(payload.pool_size))
        self.instance = DatabaseInstance(payload.schema, backend=backend)
        for name, rows in payload.rows.items():
            self.instance.add_tuples(name, rows)
        # Engines (and their saturation stores) and cached bottom-clause
        # builders describe the old data.
        self._engines.clear()
        self._builders.clear()

    def _engine_for(self, spec: Tuple[object, ...]):
        """Build (or fetch the cached) coverage engine for an engine spec.

        The cache key is the spec's pickle, so every learner run with the
        same configuration — e.g. consecutive cross-validation folds — lands
        on the same engine and its already-materialized saturation store.
        """
        key = pickle.dumps(spec)
        engine = self._engines.get(key)
        if engine is not None:
            return engine
        if self.instance is None:
            raise RuntimeError("worker received a batch before init")
        kind = spec[0]
        if kind == "query":
            from ..learning.coverage import QueryCoverageEngine

            engine = QueryCoverageEngine(self.instance)
        elif kind == "subsumption":
            from ..learning.coverage import SubsumptionCoverageEngine

            _, config, compiled = spec
            engine = SubsumptionCoverageEngine(
                self.instance, config, compiled=bool(compiled)
            )
        elif kind == "castor":
            from ..castor.castor import CastorCoverageEngine

            _, schema, config, compiled = spec
            engine = CastorCoverageEngine(self.instance, schema, config)
            engine.compiled_enabled = bool(compiled)
        else:
            raise ValueError(f"unknown engine spec kind {kind!r}")
        if hasattr(engine, "COMPILED_MIN_EXAMPLES"):
            # Shard-count invariance: the engine's "compiled pays off only
            # above N examples" heuristic must not pick a different decision
            # procedure (exact SQL vs backtrack-budgeted Python) depending
            # on how large this worker's slice happens to be.
            engine.COMPILED_MIN_EXAMPLES = 1
        self._engines[key] = engine
        return engine

    def _builder_for(self, spec: Tuple[object, ...]):
        """Build (or fetch the cached) bottom-clause builder for a spec.

        Mirrors :meth:`_engine_for`: keyed by the spec's pickle, so repeated
        saturation batches with one configuration reuse the compiled
        IND/theory-constant metadata.
        """
        key = pickle.dumps(spec)
        builder = self._builders.get(key)
        if builder is not None:
            return builder
        if self.instance is None:
            raise RuntimeError("worker received a batch before init")
        kind = spec[0]
        # The spec pins the coordinator builder's theory constants; passing
        # them skips the worker-side whole-database inference scan AND keeps
        # clauses identical even where local re-inference would differ.
        if kind == "bottom":
            from ..learning.bottom_clause import BottomClauseBuilder

            _, config, theory_constants = spec
            builder = BottomClauseBuilder(
                self.instance, config, theory_constants=theory_constants
            )
        elif kind == "castor-bottom":
            from ..castor.bottom_clause import CastorBottomClauseBuilder

            _, schema, config, theory_constants = spec
            builder = CastorBottomClauseBuilder(
                self.instance, schema, config, theory_constants=theory_constants
            )
        else:
            raise ValueError(f"unknown saturation spec kind {kind!r}")
        self._builders[key] = builder
        return builder

    # ------------------------------------------------------------------ #
    # Request handlers
    # ------------------------------------------------------------------ #
    def handle_init(self, payload: InstancePayload) -> Dict[str, object]:
        self._rebuild(payload)
        return {"pid": os.getpid(), "tuples": self.instance.total_tuples()}

    handle_reload = handle_init

    def handle_apply_diff(self, payload) -> Dict[str, object]:
        """Apply an incremental relation diff instead of a full rebuild.

        The payload is a :class:`~repro.database.delta.Delta` (or the legacy
        list of ``("add"|"remove", relation, rows)`` entries it was promoted
        from).  Replay is **idempotent**: adds ignore rows that already
        exist (the log may record them) and removes ignore rows already
        gone — the coordinator re-sends a diff from the same token when a
        fleet-wide sync was interrupted midway, so a worker that already
        applied it must land in the same state, not error.

        Cached engines are *repaired*, not dropped: engines exposing
        ``apply_delta`` evict exactly the saturations/coverage bits the
        delta touches and keep the rest of their store warm; engines
        without it are discarded.  Builders are stateless over the live
        instance and survive as-is.
        """
        from ..database.delta import as_delta

        (entries,) = payload
        if self.instance is None:
            raise RuntimeError("worker received a diff before init")
        delta = as_delta(entries)
        for op, relation_name, rows in delta.ops:
            if op == "add":
                self.instance.add_tuples(relation_name, rows)
            else:
                relation = self.instance.relation(relation_name)
                for row in rows:
                    try:
                        relation.remove(row)
                    except KeyError:
                        pass  # already removed by an earlier replay
        repaired = 0
        for key, engine in list(self._engines.items()):
            repair = getattr(engine, "apply_delta", None)
            if repair is None:
                del self._engines[key]
            else:
                repair(delta)
                repaired += 1
        return {
            "pid": os.getpid(),
            "tuples": self.instance.total_tuples(),
            "engines_repaired": repaired,
        }

    def handle_materialize_saturations(self, payload) -> List[object]:
        """Bottom clauses / saturations for this shard's slice of examples.

        Returns one :class:`~repro.logic.clauses.HornClause` per example in
        slice order; the coordinator reassembles input order from the
        sticky example partition.  The payload's ``parallelism`` field is
        reserved: worker-rebuilt builders run compiled lookups, whose
        level-synchronized batch is already optimal, so the engine's
        thread-chunk path never triggers here today.
        """
        from ..learning.bottom_clause import BatchSaturationEngine

        spec, examples, variablize, parallelism = payload
        builder = self._builder_for(spec)
        engine = BatchSaturationEngine(builder, parallelism=max(1, int(parallelism)))
        return engine.build_batch(examples, variablize=bool(variablize))

    def handle_ping(self, _payload) -> str:
        return "pong"

    def handle_stats(self, _payload) -> Dict[str, object]:
        stats: Dict[str, object] = {
            "pid": os.getpid(),
            "engines": len(self._engines),
            "tuples": self.instance.total_tuples() if self.instance else 0,
        }
        saturations = 0
        for engine in self._engines.values():
            store = getattr(engine, "_compiled_store", None)
            if store is not None:
                saturations += len(store)
        stats["materialized_saturations"] = saturations
        return stats

    def handle_coverage_batch(self, payload) -> List[int]:
        """Subsumption/query coverage of N clauses over this shard's examples."""
        spec, clauses, examples, parallelism = payload
        engine = self._engine_for(spec)
        covered_lists = engine.covered_examples_batch(
            clauses, examples, parallelism=max(1, int(parallelism))
        )
        masks: List[int] = []
        for covered in covered_lists:
            covered_set = set(covered)
            mask = 0
            for j, example in enumerate(examples):
                if example in covered_set:
                    mask |= 1 << j
            masks.append(mask)
        return masks

    def handle_query_batch(self, payload) -> List[int]:
        """Set-at-a-time query coverage of candidate head tuples.

        The worker owns the full instance, so clauses the SQLite compiler
        rejects fall back to the tuple-at-a-time join *locally* — the
        coordinator always gets a definitive bitset back.
        """
        from ..database.query import QueryEvaluator

        clauses, candidates, parallelism = payload
        if self.instance is None:
            raise RuntimeError("worker received a batch before init")
        evaluator = QueryEvaluator(self.instance)
        covered_sets = evaluator.covered_tuples_batch(
            clauses, candidates, parallelism=max(1, int(parallelism))
        )
        masks: List[int] = []
        for covered in covered_sets:
            mask = 0
            for j, candidate in enumerate(candidates):
                if tuple(candidate) in covered:
                    mask |= 1 << j
            masks.append(mask)
        return masks

    def handlers(self) -> Dict[str, object]:
        """Explicit allowlist of wire-reachable request kinds.

        Mirrors the server's dispatch table: nothing outside this mapping
        can be invoked by a peer, however the request kind is spelled.
        """
        return {
            "init": self.handle_init,
            "reload": self.handle_reload,
            "apply_diff": self.handle_apply_diff,
            "coverage_batch": self.handle_coverage_batch,
            "query_batch": self.handle_query_batch,
            "materialize_saturations": self.handle_materialize_saturations,
            "ping": self.handle_ping,
            "stats": self.handle_stats,
        }


def serve_loop(transport) -> None:
    """Answer requests on one transport until shutdown or peer loss.

    Messages may carry a third **trace context** element
    (``(kind, payload, {"trace_id": ..., "parent_id": ...})``).  The worker
    then records a ``worker.<kind>`` span under the coordinator's span and
    ships every finished span of that trace back in the reply's third
    element — that is how one learner run's trace tree reaches across the
    process boundary into the shard workers.
    """
    from ..obs import tracer as obs_tracer

    state = WorkerState()
    handlers = state.handlers()
    while True:
        try:
            message = transport.recv()
        except TransportError:
            break  # coordinator went away; nothing left to serve
        kind, payload = message[0], message[1]
        trace_ctx = message[2] if len(message) > 2 else None
        if kind == "shutdown":
            try:
                transport.send(("ok", None))
            except TransportError:
                pass
            break
        if kind == "crash":
            # Test hook for the lifecycle-hardening suite: die like a worker
            # hit by the OOM killer — no reply, no cleanup.
            os._exit(13)
        handler = handlers.get(kind)
        tracer = obs_tracer()
        try:
            if handler is None:
                raise ValueError(f"unknown request kind {kind!r}")
            with tracer.activate(trace_ctx):
                with tracer.span(f"worker.{kind}"):
                    reply = ("ok", handler(payload))
        except Exception as exc:  # noqa: BLE001 - forwarded to the coordinator
            reply = (
                "error",
                (type(exc).__name__, str(exc), traceback.format_exc()),
            )
        if trace_ctx is not None and isinstance(trace_ctx, dict):
            records = tracer.drain(trace_ctx.get("trace_id"))
            if records:
                reply = (*reply, {"records": records})
        try:
            transport.send(reply)
        except TransportError:
            break


def _label_worker_process() -> None:
    """Stamp span records from this process as shard-worker spans."""
    from ..obs import tracer as obs_tracer

    obs_tracer().process = f"worker-{os.getpid()}"


def pipe_worker_main(connection) -> None:
    """Process target for a pipe-transport worker."""
    _label_worker_process()
    transport = PipeTransport(connection)
    try:
        serve_loop(transport)
    finally:
        transport.close()


def socket_worker_main(host: str, port: int, secret: Optional[str] = None) -> None:
    """Process target for a socket-transport worker: dial the coordinator.

    When the coordinator minted a spawn ``secret``, the worker proves it
    with a raw-bytes preamble before any pickle frame flows — the
    coordinator will not unpickle from a dialer that cannot.
    """
    _label_worker_process()
    sock = socket.create_connection((host, port))
    if secret is not None:
        send_auth_proof(sock, secret)
    transport = SocketTransport(sock)
    try:
        serve_loop(transport)
    finally:
        transport.close()


def serve(
    address: str,
    max_sessions: Optional[int] = None,
    auth_token: Optional[str] = None,
) -> None:
    """Run a standalone worker listening on ``host:port`` (remote topology).

    Accepts one coordinator at a time and serves it until it disconnects;
    then (unless ``max_sessions`` is exhausted) goes back to accepting, so a
    long-lived remote worker survives coordinator restarts.  This seam
    speaks pickle, so with ``auth_token`` set the worker demands the auth
    preamble *before decoding anything* and silently drops dialers that
    fail it (``EvaluationService.attach_remote(..., token=...)`` sends it).
    """
    _label_worker_process()
    host, port = parse_address(address)
    listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
    listener.bind((host, port))
    listener.listen(1)
    print(f"repro shard worker pid={os.getpid()} listening on "
          f"{listener.getsockname()[0]}:{listener.getsockname()[1]}", flush=True)
    sessions = 0
    try:
        while max_sessions is None or sessions < max_sessions:
            conn, _peer = listener.accept()
            if auth_token is not None and not verify_auth_proof(conn, auth_token):
                try:
                    conn.close()
                except OSError:
                    pass
                continue  # unauthenticated dialer; not a session
            transport = SocketTransport(conn)
            try:
                serve_loop(transport)
            finally:
                transport.close()
            sessions += 1
    finally:
        listener.close()


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="standalone shard worker for the repro evaluation service"
    )
    parser.add_argument(
        "--serve", metavar="HOST:PORT", required=True,
        help="listen for a coordinator on this address",
    )
    parser.add_argument(
        "--max-sessions", type=int, default=None,
        help="exit after serving this many coordinator sessions (default: forever)",
    )
    parser.add_argument(
        "--auth-token", default=None,
        help="require coordinators to prove this shared secret before any "
             "frame is decoded (the worker protocol is pickle; never expose "
             "it without a token except on a trusted link)",
    )
    args = parser.parse_args(argv)
    serve(args.serve, max_sessions=args.max_sessions, auth_token=args.auth_token)
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    sys.exit(main())
