"""Client side of the persistent evaluation server.

Three layers, each usable on its own:

* :class:`ServiceClient` — one socket connection to a
  :class:`~repro.distributed.server.ServiceServer`; request/reply with the
  worker protocol's ``ok``/``error`` convention (server-side exceptions
  surface as :class:`ServerError` with the remote traceback).
* :class:`RemoteEvaluationService` — the per-instance facade that speaks
  the :class:`~repro.distributed.service.EvaluationService` batch API
  (``covered_examples_batch`` / ``materialize_saturations`` /
  ``covered_candidates_batch``) but evaluates on the server's warm fleet.
  It owns the **content-hash registration dance**: before the first batch
  (and after any local mutation) it hashes the instance payload, probes the
  server with ``register``, and ships the payload only when the server does
  not already hold that exact version — so a repeat run over unchanged data
  costs one small register round-trip instead of a full payload ship
  (``reloads_full`` stays 0).
* :class:`RemoteBackend` — the ``"sqlite-remote"`` registry backend:
  pooled SQLite storage locally (mutations, direct queries, fallbacks all
  work offline) while every *batched* evaluation routes to the server
  through the same ``coverage_service()`` seam the sharded backend uses.
"""

from __future__ import annotations

import hashlib
import itertools
import os
import threading
from typing import Any, Callable, Dict, List, Optional, Sequence, Set, Tuple

from ..database.backend import warn_once
from ..obs import registry as obs_registry, tracer as obs_tracer
from .backend import ShardedSQLiteBackend
from .protocol import (
    TransportError,
    UnknownHandleError,  # noqa: F401 - re-exported: the recovery contract
    connect as connect_transport,
)
from .wire import WIRE_VERSION, JsonWireCodec
from .worker import SATURATION_SPEC_KINDS, SPEC_KINDS, InstancePayload

Row = Tuple[object, ...]

_UNSYNCED = object()

#: Per-facade label for registry series: each RemoteEvaluationService gets
#: its own series so a fresh facade reads zero (the warm-run acceptance
#: gate asserts reloads_full == 0 on a brand-new session).
_CLIENT_SEQ = itertools.count(1)


class ServerError(RuntimeError):
    """An exception raised inside the server (deterministic; not retried)."""

    def __init__(self, kind: str, message: str, remote_traceback: str) -> None:
        super().__init__(f"evaluation server raised {kind}: {message}")
        self.kind = kind
        self.remote_traceback = remote_traceback


def payload_content_hash(payload: InstancePayload) -> str:
    """Deterministic content hash of an instance payload.

    Stable across processes and interpreter launches (``PYTHONHASHSEED``
    cannot perturb it): rows are sorted per relation by ``repr`` and hashed
    together with the relation names and the schema's constraint set.  Two
    runs over the same data — today, tomorrow, from different client
    processes — therefore produce the same version string, which is exactly
    what lets the server skip the payload re-ship.
    """
    digest = hashlib.sha256()
    digest.update(payload.backend.encode())
    for name in sorted(payload.rows):
        digest.update(b"\x00R\x00" + name.encode())
        for row in sorted(payload.rows[name], key=repr):
            digest.update(repr(row).encode() + b"\x00")
    schema = payload.schema
    relations = sorted(
        (r.name, tuple(str(a) for a in r.attributes)) for r in schema.relations
    )
    digest.update(repr(relations).encode())
    digest.update(repr(sorted(repr(fd) for fd in schema.functional_dependencies)).encode())
    digest.update(repr(sorted(repr(ind) for ind in schema.inclusion_dependencies)).encode())
    return digest.hexdigest()


class ServiceClient:
    """One connection to a persistent evaluation server.

    Speaks the versioned tagged-JSON wire format: the connection opens with
    a ``handshake`` frame carrying the client's wire version, optional auth
    ``token``, and a ``client`` id the server uses for per-client fairness.
    ``request_timeout`` bounds every round-trip — a hung server surfaces as
    :class:`TransportError` instead of blocking ``learn()`` forever (the
    connection is then closed: after a timeout mid-request the reply stream
    can no longer be trusted to line up with requests).
    """

    def __init__(
        self,
        address: str,
        timeout: float = 10.0,
        token: Optional[str] = None,
        request_timeout: Optional[float] = None,
        client_name: Optional[str] = None,
    ) -> None:
        self.address = str(address)
        self._transport = connect_transport(
            self.address,
            timeout=timeout,
            request_timeout=request_timeout,
            codec=JsonWireCodec(),
        )
        self._lock = threading.Lock()
        self._closed = False
        self.server_info: Dict[str, object] = {}
        try:
            self._transport.send((
                "handshake",
                {
                    "version": WIRE_VERSION,
                    "token": token,
                    "client": client_name or f"pid-{os.getpid()}",
                },
            ))
            status, reply = self._transport.recv()
        except TransportError:
            self._transport.close()
            self._closed = True
            raise
        if status != "ok":
            self._transport.close()
            self._closed = True
            error_kind, message, remote_traceback = reply
            raise ServerError(error_kind, message, remote_traceback)
        self.server_info = reply

    def request(self, kind: str, payload: object = None) -> object:
        """One request/reply round-trip (thread-safe, serialized).

        With tracing active, the round-trip is recorded as an ``rpc.<kind>``
        span, the trace context rides the envelope's ``trace`` field, and
        the spans the server (and its shard workers) recorded for this
        request come back in the reply and are folded into the local trace
        — one learner run yields a single tree spanning every process.
        """
        tracer = obs_tracer()
        with tracer.span(f"rpc.{kind}", address=self.address) as rpc_span:
            trace_ctx = tracer.inject()
            message = (kind, payload, trace_ctx) if trace_ctx else (kind, payload)
            with self._lock:
                if self._closed:
                    raise TransportError(
                        f"client to {self.address} is closed"
                    )
                try:
                    self._transport.send(message)
                    response = self._transport.recv()  # repro: noqa[REP004] -- the connection lock must pair each send with its reply (one stream, strict ordering); request_timeout bounds the wait and retires the connection on expiry
                except TransportError:
                    # Timeout or disconnect mid-request: a late reply would
                    # be misattributed to the next request, so the stream is
                    # dead.
                    self._closed = True
                    self._transport.close()
                    raise
            status, reply = response[0], response[1]
            if len(response) > 2 and isinstance(response[2], dict):
                records = response[2].get("records")
                if records:
                    tracer.extend(records)
            rpc_span.set(bytes=getattr(self._transport, "last_recv_bytes", 0))
        if status == "ok":
            return reply
        error_kind, message, remote_traceback = reply
        raise ServerError(error_kind, message, remote_traceback)

    def ping(self) -> bool:
        return self.request("ping") == "pong"

    def hello(self) -> Dict[str, object]:
        return self.request("hello")

    def server_stats(self, handle: Optional[str] = None) -> Dict[str, object]:
        return self.request("stats", handle)

    def server_status(self) -> Dict[str, object]:
        """Operational counters (queue depths, coalescing, drain state)."""
        return self.request("status")

    def server_metrics(self) -> Dict[str, object]:
        """The server's metrics registry: snapshot + Prometheus text."""
        return self.request("metrics")

    def unregister(self, handle: str) -> bool:
        return bool(self.request("unregister", handle))

    def shutdown_server(self) -> None:
        """Ask the server to stop (admin/tests; trusted peers only)."""
        try:
            self.request("shutdown_server")
        except TransportError:
            pass  # server may drop the connection while acking

    def close(self) -> None:
        """Close the connection; idempotent.  Server state stays warm."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            self._transport.close()

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *_exc: object) -> None:
        self.close()

    def __repr__(self) -> str:
        state = "closed" if self._closed else "open"
        return f"ServiceClient({self.address!r}, {state})"


class RemoteEvaluationService:
    """`EvaluationService`-shaped facade evaluating on a persistent server.

    Drop-in for the batch entry points the engines probe
    (:class:`~repro.learning.coverage.BatchCoverageEngine` and
    :class:`~repro.learning.bottom_clause.BatchSaturationEngine` cannot
    tell whether ``backend.coverage_service()`` handed them a local
    coordinator or this).  ``reloads_full`` counts payloads *this client*
    shipped — the number the warm-run acceptance gate asserts to be zero
    on a repeat run.
    """

    def __init__(
        self,
        client: ServiceClient,
        payload_fn: Callable[[], object],
        token_fn: Callable[[], object],
        handle: Optional[str] = None,
        delta_fn: Optional[Callable[[object], object]] = None,
    ) -> None:
        self.client = client
        self._payload_fn = payload_fn
        self._token_fn = token_fn
        self._delta_fn = delta_fn
        self._handle_override = handle
        self.handle: Optional[str] = None
        self._content_hash: Optional[str] = None
        self._synced_token: object = _UNSYNCED
        self._lock = threading.Lock()
        # Registry-backed counters (names mirror EvaluationService's); the
        # plain-attribute reads below are the stable public surface.
        _labels = {"service": next(_CLIENT_SEQ)}
        self._c_reloads_full = obs_registry().counter(
            "client.reloads_full", **_labels
        )
        self._c_reloads_incremental = obs_registry().counter(
            "client.reloads_incremental", **_labels
        )
        self._c_register_hits = obs_registry().counter(
            "client.register_hits", **_labels
        )
        self._c_batches_served = obs_registry().counter(
            "client.batches_served", **_labels
        )
        self._c_version_conflicts = obs_registry().counter(
            "client.version_conflicts", **_labels
        )

    @property
    def reloads_full(self) -> int:
        return self._c_reloads_full.value

    @property
    def reloads_incremental(self) -> int:
        return self._c_reloads_incremental.value

    @property
    def register_hits(self) -> int:
        return self._c_register_hits.value

    @property
    def batches_served(self) -> int:
        return self._c_batches_served.value

    @property
    def version_conflicts(self) -> int:
        return self._c_version_conflicts.value

    # ------------------------------------------------------------------ #
    # Registration (content-hash data versions)
    # ------------------------------------------------------------------ #
    def _ensure_registered(self) -> str:
        """Sync the server to the instance's current contents; cheap when
        nothing changed locally (one token compare, no hashing, no I/O)."""
        with self._lock:
            token = self._token_fn()
            if token == self._synced_token and self.handle is not None:
                return self.handle
            # The delta fast paths only apply while the server-side state is
            # still trusted; a forced resync (handle evicted or clobbered —
            # _batch_request reset the token) must do the full probe.
            server_trusted = (
                self.handle is not None
                and self._content_hash is not None
                and self._synced_token is not _UNSYNCED
            )
            # Cut the delta BEFORE building the payload: payload assembly
            # clears the backend's mutation log (a full payload supersedes
            # every logged change).
            delta = None
            if server_trusted and self._delta_fn is not None:
                delta = self._delta_fn(self._synced_token)
            payload = self._payload_fn()
            content_hash = payload_content_hash(payload)
            if server_trusted and content_hash == self._content_hash:
                # Local mutations netted out to the registered contents
                # (e.g. add+remove of the same rows); nothing to sync.
                self._synced_token = token
                return self.handle
            if delta is not None and not delta.is_empty:
                # Incremental path: ship the delta, keep the handle (and
                # its warm server-side fleet).  The server verifies the
                # derived payload reproduces our content hash, so any
                # divergence falls back to the full dance below instead of
                # silently serving stale data.
                try:
                    self.client.request(
                        "apply_delta",
                        (self.handle, self._content_hash, content_hash, delta),
                    )
                    self._c_reloads_incremental.inc()
                    self._content_hash = content_hash
                    self._synced_token = token
                    return self.handle
                except ServerError as exc:
                    if exc.kind not in (
                        "UnknownHandleError", "DeltaMismatchError"
                    ):
                        raise
                    # Handle evicted/clobbered, or the chain diverged:
                    # recover with a full register/load.
            # Named handles are content-qualified namespaces: distinct
            # datasets under one name land on distinct handles regardless
            # of registration order, so two processes sharing a name can
            # never ping-pong one handle between data versions.
            if self._handle_override:
                handle = f"{self._handle_override}:{content_hash[:12]}"
            else:
                handle = f"auto-{content_hash[:16]}"
            # Retry the register/load dance once: the handle can be lost
            # between the two round-trips (another session retiring a
            # shared handle, LRU eviction under pressure) — re-registering
            # lands on a fresh server-side instance.
            for attempt in (0, 1):
                reply = self.client.request("register", (handle, content_hash))
                if not reply["needs_payload"]:
                    self._c_register_hits.inc()
                    break
                try:
                    self.client.request("load", (handle, content_hash, payload))
                    self._c_reloads_full.inc()
                    break
                except ServerError as exc:
                    if exc.kind != "UnknownHandleError" or attempt:
                        raise
            superseded = self.handle
            self.handle = handle
            self._content_hash = content_hash
            self._synced_token = token
            if superseded is not None and superseded != handle:
                # This session's data moved on, so its old content-
                # qualified handle (and that handle's warm fleet) is
                # retired instead of idling until LRU eviction.  Another
                # session still on it simply re-registers (one re-ship).
                try:
                    self.client.request("unregister", superseded)
                except (ServerError, TransportError):
                    pass  # best-effort hygiene; LRU eviction is the backstop
            return handle

    def _batch_request(
        self, kind: str, payload_for: Callable[[str, Optional[str]], Dict[str, Any]]
    ) -> object:
        """One registered batch round-trip, recovering from handle loss.

        The server may evict an idle handle (LRU past ``--max-instances``),
        an operator may unregister it, or another client sharing the handle
        may have loaded a *different* data version; the local token has not
        moved in any of those cases, so :meth:`_ensure_registered` alone
        would never notice.  Every batch therefore carries this client's
        content hash (the server rejects a mismatch instead of answering
        from foreign data), and an unknown-handle/-version error forces one
        re-registration — which re-ships the payload — and retries once.
        """
        handle = self._ensure_registered()
        try:
            return self.client.request(
                kind, payload_for(handle, self._content_hash)
            )
        except ServerError as exc:
            # Structured match on the wire-crossing exception type — the
            # message prose is free to change.
            if exc.kind != "UnknownHandleError":
                raise
            with self._lock:
                self._synced_token = _UNSYNCED
                self._c_version_conflicts.inc()
                if self.version_conflicts >= 2:
                    # One recovery is normal (an eviction, an operator
                    # unregister); repeated ones mean the handle keeps
                    # disappearing — most often server-side LRU churn past
                    # --max-instances — and every recovery re-ships the
                    # full payload.
                    warn_once(
                        f"instance handle {handle!r} keeps being evicted "
                        "or re-loaded on the server; every recovery "
                        "re-ships the full payload — raise the server's "
                        "--max-instances (or reduce the number of "
                        "distinct datasets sharing it)"
                    )
            handle = self._ensure_registered()
            return self.client.request(
                kind, payload_for(handle, self._content_hash)
            )

    # ------------------------------------------------------------------ #
    # Batch API (mirrors EvaluationService)
    # ------------------------------------------------------------------ #
    def covered_examples_batch(
        self,
        spec: Tuple[object, ...],
        clauses: Sequence[object],
        examples: Sequence[object],
        parallelism: int = 1,
    ) -> List[List[object]]:
        if not spec or spec[0] not in SPEC_KINDS:
            raise ValueError(
                f"unknown engine spec kind {spec[0] if spec else spec!r}; "
                f"available: {list(SPEC_KINDS)}"
            )
        clause_list = list(clauses)
        example_list = list(examples)
        if not clause_list:
            return []
        if not example_list:
            return [[] for _ in clause_list]
        indices = self._batch_request(
            "coverage_batch",
            lambda handle, content_hash: (
                handle, content_hash, spec, clause_list, example_list,
                max(1, int(parallelism)),
            ),
        )
        self._c_batches_served.inc()
        return [[example_list[i] for i in per_clause] for per_clause in indices]

    def materialize_saturations(
        self,
        spec: Tuple[object, ...],
        examples: Sequence[object],
        variablize: bool = False,
        parallelism: int = 1,
    ) -> List[object]:
        if not spec or spec[0] not in SATURATION_SPEC_KINDS:
            raise ValueError(
                f"unknown saturation spec kind {spec[0] if spec else spec!r}; "
                f"available: {list(SATURATION_SPEC_KINDS)}"
            )
        example_list = list(examples)
        if not example_list:
            return []
        clauses = self._batch_request(
            "materialize_saturations",
            lambda handle, content_hash: (
                handle, content_hash, spec, example_list, bool(variablize),
                max(1, int(parallelism)),
            ),
        )
        self._c_batches_served.inc()
        return clauses

    def covered_candidates_batch(
        self,
        clauses: Sequence[object],
        candidates: Sequence[Sequence[object]],
        parallelism: int = 1,
    ) -> List[Set[Row]]:
        clause_list = list(clauses)
        candidate_list = [tuple(c) for c in candidates]
        if not clause_list:
            return []
        if not candidate_list:
            return [set() for _ in clause_list]
        covered = self._batch_request(
            "query_batch",
            lambda handle, content_hash: (
                handle, content_hash, clause_list, candidate_list,
                max(1, int(parallelism)),
            ),
        )
        self._c_batches_served.inc()
        return [set(per_clause) for per_clause in covered]

    def stats(self) -> Optional[Dict[str, object]]:
        """Server-side stats for this instance's handle.

        ``None`` until the first batch registers it — introspection must
        never itself ship a payload or spawn a fleet.
        """
        if self.handle is None:
            return None
        return self.client.server_stats(self.handle)

    def close(self) -> None:
        """Nothing to tear down: the server-side fleet deliberately stays
        warm for the next run (that is the point of the server)."""

    def __repr__(self) -> str:
        return (
            f"RemoteEvaluationService({self.client.address!r}, "
            f"handle={self.handle!r}, shipped={self.reloads_full})"
        )


class RemoteBackend(ShardedSQLiteBackend):
    """``"sqlite-remote"``: local pooled storage, server-side evaluation.

    Inherits storage, compiled single-statement evaluation, the snapshot
    read pool, and payload assembly from the sharded backend — but instead
    of spawning a local worker fleet, ``coverage_service()`` hands the
    batch engines a :class:`RemoteEvaluationService` bound to a persistent
    server.  The local pool still answers anything the batch seam does not
    route (direct queries, non-batched fallbacks), so an instance on this
    backend works offline for everything except batched coverage.
    """

    name = "sqlite-remote"

    def __init__(
        self,
        connection: Any = None,
        pool_size: Optional[int] = None,
        address: Optional[str] = None,
        client: Optional[ServiceClient] = None,
        handle: Optional[str] = None,
        token: Optional[str] = None,
        request_timeout: Optional[float] = None,
    ) -> None:
        super().__init__(connection, pool_size)
        self._address = address
        self._client = client
        self._owns_client = client is None
        self._handle = handle
        self._token = token
        self._request_timeout = request_timeout
        self._remote: Optional[RemoteEvaluationService] = None

    def configure_remote(
        self,
        address: Optional[str] = None,
        client: Optional[ServiceClient] = None,
        handle: Optional[str] = None,
        token: Optional[str] = None,
        request_timeout: Optional[float] = None,
    ) -> None:
        """Bind the backend to a server before its first batch."""
        if self._remote is not None:
            raise RuntimeError(
                "remote evaluation is already connected; configure_remote() "
                "must run before the first batch"
            )
        if address is not None:
            self._address = str(address)
        if client is not None:
            self._client = client
            self._owns_client = False
        if handle is not None:
            self._handle = str(handle)
        if token is not None:
            self._token = str(token)
        if request_timeout is not None:
            self._request_timeout = float(request_timeout)

    def configure_sharding(
        self,
        shards: Optional[int] = None,
        strategy: Optional[str] = None,
        transport: Optional[str] = None,
    ) -> None:
        """The worker fleet lives on the server; its topology is fixed there."""
        if shards is None and strategy is None and transport is None:
            return
        warn_once(
            "the 'sqlite-remote' backend evaluates on a persistent server "
            "whose shard topology is fixed at server start; ignoring "
            f"shards={shards}"
        )

    def coverage_service(self) -> RemoteEvaluationService:
        if self._remote is None:
            if self._client is None:
                if self._address is None:
                    raise RuntimeError(
                        "the 'sqlite-remote' backend has no server to talk "
                        "to; call configure_remote(address='HOST:PORT') or "
                        "build the instance through "
                        "LearningSession.connect(address)"
                    )
                self._client = ServiceClient(
                    self._address,
                    token=self._token,
                    request_timeout=self._request_timeout,
                )
                self._owns_client = True
            self._remote = RemoteEvaluationService(
                self._client,
                payload_fn=self._payload,
                token_fn=self._pool_state,
                handle=self._handle,
                # Local mutations become one small apply_delta frame instead
                # of a full payload re-ship (and the server repairs its warm
                # fleet in place); collect_diff returning None falls back to
                # the register/load dance.
                delta_fn=self.collect_diff,
            )
        return self._remote

    @property
    def remote_service(self) -> Optional[RemoteEvaluationService]:
        """The facade, if a batch has forced the connection yet."""
        return self._remote

    def close(self) -> None:
        """Close the local pool and (when owned) the client connection.

        Never touches server state: registered instances and their worker
        fleets stay warm for the next session by design.
        """
        if self._client is not None and self._owns_client:
            self._client.close()
            self._client = None
        self._remote = None
        # The inherited teardown (finalizer detach, local service shutdown,
        # pool close) stays in one place.
        super().close()

    def __repr__(self) -> str:
        target = self._address or (
            self._client.address if self._client else None
        )
        return (
            f"RemoteBackend({len(self._relations)} relations, "
            f"server={target!r}, handle={self._handle!r})"
        )
