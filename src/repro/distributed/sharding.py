"""Sharding strategies: how the example set is partitioned across workers.

A strategy answers "which shard owns this example?".  All three are
deterministic in the coordinator process, and — because the service merges
per-shard results back into input order — the *coverage results* are
identical for every strategy and every shard count; the strategy only moves
work (and saturation-store warmth) between workers.

* ``hash`` — stable content hash of the example key.  An example always
  lands on the same shard regardless of batch composition, so per-example
  worker state (saturations) stays warm across batches, folds, and service
  restarts.  The default.
* ``round-robin`` — i-th distinct example to shard ``i % shards``.  Perfect
  count balance, but assignment depends on arrival order.
* ``size-balanced`` — greedy: each new example goes to the shard with the
  smallest accumulated weight (weight = the example's encoded size, a proxy
  for its saturation footprint).  Best when example sizes are skewed.
"""

from __future__ import annotations

import zlib
from typing import Callable, Dict, Hashable, List, Optional, Sequence, Tuple

#: Names accepted by the service/backend/harness ``strategy`` knobs.
SHARDING_STRATEGIES: Tuple[str, ...] = ("hash", "round-robin", "size-balanced")

#: The strategy backends/services use when none is requested.
DEFAULT_STRATEGY = "hash"


def stable_hash(key: object) -> int:
    """Process-independent 32-bit hash of a value's canonical repr.

    Built-in ``hash`` is salted per process (PYTHONHASHSEED), so it would
    assign the same example to different shards in coordinator restarts;
    CRC32 over the repr is stable for the str/int/float/bytes/bool tuples
    examples are made of.
    """
    return zlib.crc32(repr(key).encode("utf-8", "backslashreplace"))


def default_weight(key: object) -> int:
    """Proxy for an example's evaluation cost: its encoded size."""
    return max(1, len(repr(key)))


class ShardAssigner:
    """Sticky online shard assignment for one service.

    The first time a key is seen it is placed by the configured strategy;
    afterwards it always maps to the same shard, so long-lived worker state
    (materialized saturations) is never split or rebuilt because a later
    batch happened to contain a different mix of examples.
    """

    def __init__(
        self,
        shards: int,
        strategy: str = "hash",
        weight_fn: Optional[Callable[[object], int]] = None,
    ):
        if shards < 1:
            raise ValueError(f"need at least one shard, got {shards}")
        if strategy not in SHARDING_STRATEGIES:
            raise ValueError(
                f"unknown sharding strategy {strategy!r}; "
                f"available: {list(SHARDING_STRATEGIES)}"
            )
        self.shards = int(shards)
        self.strategy = str(strategy)
        self._weight_fn = weight_fn or default_weight
        self._assignments: Dict[Hashable, int] = {}
        self._loads: List[int] = [0] * self.shards
        self._next_round_robin = 0

    def assign(self, key: Hashable) -> int:
        """Shard index of ``key`` (assigning it on first sight)."""
        shard = self._assignments.get(key)
        if shard is not None:
            return shard
        if self.strategy == "hash":
            shard = stable_hash(key) % self.shards
        elif self.strategy == "round-robin":
            shard = self._next_round_robin
            self._next_round_robin = (self._next_round_robin + 1) % self.shards
        else:  # size-balanced
            shard = min(range(self.shards), key=lambda s: (self._loads[s], s))
        self._assignments[key] = shard
        self._loads[shard] += self._weight_fn(key)
        return shard

    def partition(self, keys: Sequence[Hashable]) -> List[List[int]]:
        """Indices of ``keys`` per shard (every index appears exactly once)."""
        buckets: List[List[int]] = [[] for _ in range(self.shards)]
        for index, key in enumerate(keys):
            buckets[self.assign(key)].append(index)
        return buckets

    def __repr__(self) -> str:
        return (
            f"ShardAssigner({self.shards} shards, {self.strategy!r}, "
            f"{len(self._assignments)} keys)"
        )


def partition_keys(
    keys: Sequence[Hashable],
    shards: int,
    strategy: str = "hash",
    weight_fn: Optional[Callable[[object], int]] = None,
) -> List[List[int]]:
    """One-shot partition of ``keys`` into ``shards`` buckets of indices.

    Equivalent to folding a fresh :class:`ShardAssigner` over the keys;
    duplicate keys land in the bucket of their first occurrence.
    """
    return ShardAssigner(shards, strategy, weight_fn).partition(keys)
