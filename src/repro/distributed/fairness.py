"""Per-handle fair scheduling: a round-robin queue lock with admission control.

PR 5 serialized each handle's batches behind a bare ``threading.RLock``,
which has two multi-tenant failure modes: lock handoff is whoever-wakes-first
(one chatty client can starve everyone else sharing the handle), and the
queue behind the lock is unbounded (a flood of requests pins threads and
memory until the server falls over).

:class:`FairLock` keeps the mutual exclusion but adds:

* **round-robin fairness** — waiters queue per client id and release hands
  the lock to the next *client* in rotation, not the next thread to wake;
* **per-client quotas** — a client with ``client_quota`` requests already
  waiting on the handle gets a typed :class:`QuotaExceededError` instead of
  another queue slot;
* **admission control** — once ``max_queue`` requests are waiting the handle
  is saturated and new arrivals get :class:`ServerBusyError`;
* **observability** — queue depth and grant/rejection counters feed the
  server's ``status`` endpoint.

Non-blocking and bounded-timeout acquires are supported because eviction
must skip busy handles and ``unregister`` must give up rather than stall.
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Any, Deque, Dict, Optional

from .protocol import QuotaExceededError, ServerBusyError


class _Waiter:
    __slots__ = ("event", "client")

    def __init__(self, client: Any):
        self.event = threading.Event()
        self.client = client


class FairLock:
    """A non-reentrant lock with per-client round-robin handoff."""

    def __init__(self, max_queue: int = 64, client_quota: int = 8):
        if max_queue < 1:
            raise ValueError("max_queue must be >= 1")
        if client_quota < 1:
            raise ValueError("client_quota must be >= 1")
        self.max_queue = max_queue
        self.client_quota = client_quota
        self._mutex = threading.Lock()
        self._held = False
        self._queues: Dict[Any, Deque[_Waiter]] = {}
        self._rotation: Deque[Any] = deque()
        self._depth = 0
        self.grants = 0
        self.rejected_busy = 0
        self.rejected_quota = 0

    @property
    def queue_depth(self) -> int:
        """Requests currently waiting (excludes the holder)."""
        return self._depth

    def acquire(
        self,
        client: Any = None,
        blocking: bool = True,
        timeout: Optional[float] = None,
    ) -> bool:
        """Acquire the lock on behalf of ``client``.

        Returns False on a failed non-blocking or timed-out acquire.  Raises
        :class:`ServerBusyError` / :class:`QuotaExceededError` when admission
        control rejects the request outright (blocking mode only).
        """
        with self._mutex:
            # Uncontended-and-no-queue fast path only: a free lock with
            # waiters still goes through the rotation so nobody queue-jumps.
            if not self._held and self._depth == 0:
                self._held = True
                self.grants += 1
                return True
            if not blocking:
                return False
            if self._depth >= self.max_queue:
                self.rejected_busy += 1
                raise ServerBusyError(
                    f"handle queue is full ({self.max_queue} waiting); retry later"
                )
            queue = self._queues.get(client)
            if queue is not None and len(queue) >= self.client_quota:
                self.rejected_quota += 1
                raise QuotaExceededError(
                    f"client {client!r} already has {len(queue)} requests "
                    f"queued on this handle (quota {self.client_quota})"
                )
            waiter = _Waiter(client)
            if queue is None:
                queue = self._queues[client] = deque()
                self._rotation.append(client)
            queue.append(waiter)
            self._depth += 1
        if waiter.event.wait(timeout):
            return True
        with self._mutex:
            if waiter.event.is_set():
                # Ownership was handed to us between the timeout expiring
                # and re-taking the mutex; accept the grant.
                return True
            queue = self._queues.get(client)
            if queue is not None:
                try:
                    queue.remove(waiter)
                    self._depth -= 1
                except ValueError:  # pragma: no cover - defensive
                    pass
                if not queue:
                    del self._queues[client]
                    try:
                        self._rotation.remove(client)
                    except ValueError:  # pragma: no cover - defensive
                        pass
            return False

    def release(self) -> None:
        """Release the lock, handing it to the next client in rotation."""
        with self._mutex:
            if not self._held:
                raise RuntimeError("release of an unheld FairLock")
            while self._rotation:
                client = self._rotation.popleft()
                queue = self._queues.get(client)
                if not queue:
                    self._queues.pop(client, None)
                    continue
                waiter = queue.popleft()
                self._depth -= 1
                if queue:
                    self._rotation.append(client)
                else:
                    del self._queues[client]
                self.grants += 1
                # _held stays True: ownership transfers to the waiter.
                waiter.event.set()
                return
            self._held = False

    def __enter__(self) -> "FairLock":
        self.acquire()
        return self

    def __exit__(self, *exc_info) -> None:
        self.release()

    def stats(self) -> Dict[str, int]:
        return {
            "queue_depth": self._depth,
            "grants": self.grants,
            "rejected_busy": self.rejected_busy,
            "rejected_quota": self.rejected_quota,
        }
