"""Sharded multi-process evaluation: the distributed tier of the backend stack.

The paper's Castor leans on an in-memory RDBMS for parallel set-at-a-time
evaluation; this package scales that same seam across *processes* (and,
over the socket transport, across hosts).  See ``docs/distributed.md`` for
the topology, the wire protocol, and the failure semantics.

Public surface:

* :class:`EvaluationService` — the coordinator (sticky sharding, fan-out,
  bitset merge, worker lifecycle);
* :class:`ShardedSQLiteBackend` — the ``"sqlite-sharded"`` registry backend;
* :class:`ShardFailedError` / :class:`WorkerError` — failure surface;
* :func:`partition_keys` / :class:`ShardAssigner` — sharding strategies;
* the :mod:`~repro.distributed.protocol` framing and
  :mod:`~repro.distributed.worker` entry points.
"""

from .backend import ShardedSQLiteBackend
from .client import (
    RemoteBackend,
    RemoteEvaluationService,
    ServerError,
    ServiceClient,
    payload_content_hash,
)
from .protocol import (
    AuthenticationError,
    HandleBusyError,
    PipeTransport,
    ProtocolVersionError,
    QuotaExceededError,
    ServerBusyError,
    ServerDrainingError,
    SocketTransport,
    TransportError,
    UnknownHandleError,
    decode_frame,
    encode_frame,
)
from .service import (
    EvaluationService,
    ShardFailedError,
    WorkerError,
    default_shard_count,
)
from .server import ServiceServer
from .sharding import SHARDING_STRATEGIES, ShardAssigner, partition_keys, stable_hash
from .wire import WIRE_VERSION, JsonWireCodec, WireFormatError
from .worker import InstancePayload

__all__ = [
    "AuthenticationError",
    "EvaluationService",
    "HandleBusyError",
    "InstancePayload",
    "JsonWireCodec",
    "PipeTransport",
    "ProtocolVersionError",
    "QuotaExceededError",
    "RemoteBackend",
    "RemoteEvaluationService",
    "SHARDING_STRATEGIES",
    "ServerBusyError",
    "ServerDrainingError",
    "ServerError",
    "ServiceClient",
    "ServiceServer",
    "ShardAssigner",
    "ShardFailedError",
    "ShardedSQLiteBackend",
    "SocketTransport",
    "TransportError",
    "UnknownHandleError",
    "WIRE_VERSION",
    "WireFormatError",
    "WorkerError",
    "decode_frame",
    "default_shard_count",
    "encode_frame",
    "partition_keys",
    "payload_content_hash",
    "stable_hash",
]
