"""The persistent evaluation server: one warm service outliving many runs.

``python -m repro.distributed.service --serve HOST:PORT`` runs a
:class:`ServiceServer`: a long-lived process that owns worker fleets,
coverage engines, and saturation stores and serves them to any number of
learning runs.  Where the in-process :class:`~repro.distributed.service.EvaluationService`
dies with the run that spawned it (every run pays spawn + payload-ship +
saturation-warm-up again), the server keeps everything warm:

* clients **register instances under named handles** with a content hash of
  the data; a repeat run (or the next cross-validation fold, or another
  user's session over the same dataset) whose hash matches the registered
  one ships **no payload at all** and lands directly on the warm fleet;
* each handle owns one :class:`EvaluationService` (spawned at first load,
  reused forever after), so worker processes and their per-engine
  saturation stores survive across runs and across client connections;
* multiple concurrent sessions share the server: connections are served by
  one thread each, batches on *different* handles run in parallel, batches
  on the *same* handle serialize on that handle's :class:`FairLock` with
  round-robin handoff between clients, per-client quotas, and a bounded
  admission queue; structurally identical concurrent batches coalesce into
  one computation.

Unlike the trusted worker seam, clients are **untrusted**: the socket
speaks the versioned tagged-JSON envelope (:mod:`repro.distributed.wire`) —
no pickle, nothing executable — every connection must open with a
``handshake`` frame carrying the wire version (and the auth token when the
server was started with one), and request dispatch goes through an explicit
allowlist table.  ``SIGTERM`` drains gracefully: stop accepting, finish
in-flight batches, exit 0.

Clients normally do not speak this protocol directly — they use
:class:`repro.session.LearningSession.connect` (or, one level down,
:class:`repro.distributed.client.ServiceClient`).
"""

from __future__ import annotations

import contextlib
import hmac
import itertools
import os
import socket
import threading
import time
import traceback
from typing import Dict, List, Optional, Set, Tuple

from ..database.delta import Delta, as_delta
from ..obs import registry as obs_registry, tracer as obs_tracer
from . import wire
from .client import payload_content_hash
from .fairness import FairLock
from .protocol import (
    DeltaMismatchError,
    HandleBusyError,
    ServerDrainingError,
    SocketTransport,
    TransportError,
    UnknownHandleError,
)
from .service import TRANSPORTS, EvaluationService
from .sharding import DEFAULT_STRATEGY, SHARDING_STRATEGIES
from .wire import WIRE_VERSION, WireFormatError
from .worker import InstancePayload

Row = Tuple[object, ...]


def _advance_payload(payload: InstancePayload, delta: Delta) -> InstancePayload:
    """A new payload with ``delta`` applied to ``payload``'s row sets.

    Replay semantics match the backends: adds are set-inserts, removes are
    idempotent (absent rows ignored).  Only relations the delta touches are
    rebuilt; untouched row lists are shared with the old payload.
    """
    rows = dict(payload.rows)
    touched: Dict[str, Dict[Row, None]] = {}
    for op, relation, delta_rows in delta.ops:
        if relation not in rows:
            raise DeltaMismatchError(
                f"delta touches unknown relation {relation!r}; "
                "re-register with a full payload"
            )
        target = touched.get(relation)
        if target is None:
            target = touched[relation] = dict.fromkeys(
                tuple(row) for row in rows[relation]
            )
        if op == "add":
            for row in delta_rows:
                target[tuple(row)] = None
        else:
            for row in delta_rows:
                target.pop(tuple(row), None)
    for relation, mapping in touched.items():
        rows[relation] = list(mapping)
    return InstancePayload(
        payload.schema, rows, backend=payload.backend, pool_size=payload.pool_size
    )


#: Request kinds still answered while the server is draining: read-only
#: introspection plus shutdown itself.  Everything else gets a typed
#: ServerDrainingError so clients fail over instead of queueing work a
#: dying server will never run.
_DRAIN_ALLOWED = frozenset({"ping", "hello", "stats", "status", "metrics"})

#: Generation labels for registry series: a re-registered handle (or a
#: second server in one process, as in tests) gets fresh series instead of
#: resurrecting a predecessor's counts under the same name.
_HANDLE_GEN = itertools.count(1)
_SERVER_SEQ = itertools.count(1)


class _RequestContext:
    """Per-request metadata threaded into every handler."""

    __slots__ = ("client", "frame_bytes")

    def __init__(self, client: Optional[str], frame_bytes: int = 0):
        self.client = client
        self.frame_bytes = int(frame_bytes)


class _InflightBatch:
    """One coalesced computation: the leader fills it, followers wait."""

    __slots__ = ("event", "result", "error")

    def __init__(self):
        self.event = threading.Event()
        self.result = None
        self.error: Optional[BaseException] = None


class ServedInstance:
    """One registered instance: payload version + its warm worker fleet."""

    #: Longest recorded hash-to-hash delta chain.  A fleet synced further
    #: back than this falls off the chain and full-reloads — the chain
    #: bounds memory, not correctness.
    MAX_DELTA_CHAIN = 32

    def __init__(self, handle: str, max_queue: int = 64, client_quota: int = 8):
        self.handle = str(handle)
        self.content_hash: Optional[str] = None
        self.payload = None
        self.payload_bytes = 0
        self.service: Optional[EvaluationService] = None
        # ``(content hash before, content hash after, Delta)`` steps from
        # apply_delta requests; ``collect_diff`` composes them so the warm
        # fleet is repaired in place instead of full-reloading.
        self.delta_chain: List[Tuple[str, str, Delta]] = []
        # Serializes batches per handle; the service's own fan-out is
        # concurrent internally, but its sticky assigner and reload check
        # are not safe under interleaved batches from two connections.
        # FairLock adds round-robin handoff between clients plus bounded
        # admission, where the old RLock admitted unbounded waiters in
        # wake-order.
        self.lock = FairLock(max_queue=max_queue, client_quota=client_quota)
        labels = {"handle": self.handle, "gen": next(_HANDLE_GEN)}
        self._c_loads = obs_registry().counter("server.handle.loads", **labels)
        self._c_batches = obs_registry().counter("server.handle.batches", **labels)
        self._c_register_hits = obs_registry().counter(
            "server.handle.register_hits", **labels
        )
        self._c_deltas_applied = obs_registry().counter(
            "server.handle.deltas_applied", **labels
        )
        self.last_used = 0
        self.closed = False

    # Integer reads preserved for stats()/tests; writes go through .inc().
    @property
    def loads(self) -> int:
        return self._c_loads.value

    @property
    def batches(self) -> int:
        return self._c_batches.value

    @property
    def register_hits(self) -> int:
        return self._c_register_hits.value

    @property
    def deltas_applied(self) -> int:
        return self._c_deltas_applied.value

    def close(self) -> None:
        # The closed flag guards the unregister/evict race: a batch that
        # fetched this object before removal and then acquires the lock
        # must not respawn a fleet nothing tracks anymore.  The payload is
        # dropped too, so a closed orphan can never look loadable or warm.
        self.closed = True
        self.payload = None
        self.payload_bytes = 0
        self.content_hash = None
        self.delta_chain.clear()
        if self.service is not None:
            self.service.close()
            self.service = None

    def record_delta(self, old_hash: str, new_hash: str, delta: Delta) -> None:
        self.delta_chain.append((old_hash, new_hash, delta))
        if len(self.delta_chain) > self.MAX_DELTA_CHAIN:
            del self.delta_chain[: len(self.delta_chain) - self.MAX_DELTA_CHAIN]

    def collect_diff(self, since_token: object) -> Optional[Delta]:
        """Compose recorded deltas from a fleet's last-synced content hash
        to the current one; ``None`` means full reload.

        Content hashes identify row sets exactly, so when the same hash
        reappears (update A→B, later B→A) any chain of steps that starts at
        the fleet's hash and ends at the current one replays correctly —
        later steps shadow earlier ones from the same hash.
        """
        if not isinstance(since_token, str) or self.content_hash is None:
            return None
        steps = {old: (new, delta) for old, new, delta in self.delta_chain}
        combined = Delta()
        cursor = since_token
        for _ in range(len(steps) + 1):
            if cursor == self.content_hash:
                return combined
            step = steps.get(cursor)
            if step is None:
                return None
            cursor = step[0]
            combined = combined.then(step[1])
        return None  # chain cycles without reaching the current hash

    def stats(self) -> Dict[str, object]:
        service = self.service
        probes = self.register_hits + self.loads
        return {
            "handle": self.handle,
            "content_hash": self.content_hash,
            "loads": self.loads,
            "batches": self.batches,
            "deltas_applied": self.deltas_applied,
            "register_hits": self.register_hits,
            "hit_rate": (self.register_hits / probes) if probes else 0.0,
            "payload_bytes": self.payload_bytes,
            "queue": self.lock.stats(),
            "reloads_full": service.reloads_full if service else 0,
            "reloads_incremental": (
                service.reloads_incremental if service else 0
            ),
            "worker_pids": service.worker_pids() if service else [],
        }


class ServiceServer:
    """Accept loop + handle registry of the persistent evaluation server."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        shards: Optional[int] = None,
        strategy: str = DEFAULT_STRATEGY,
        transport: str = "pipe",
        max_instances: int = 32,
        auth_token: Optional[str] = None,
        memory_budget_bytes: Optional[int] = None,
        max_queue: int = 64,
        client_quota: int = 8,
        unregister_wait: float = 2.0,
        drain_timeout: float = 30.0,
        handshake_timeout: float = 30.0,
    ):
        if strategy not in SHARDING_STRATEGIES:
            raise ValueError(
                f"unknown sharding strategy {strategy!r}; "
                f"available: {list(SHARDING_STRATEGIES)}"
            )
        if transport not in TRANSPORTS:
            raise ValueError(
                f"unknown transport {transport!r}; available: {list(TRANSPORTS)}"
            )
        self.shards = shards
        self.strategy = strategy
        self.transport = transport
        self.max_instances = max(1, int(max_instances))
        self.auth_token = auth_token
        self.memory_budget_bytes = (
            None if memory_budget_bytes is None else max(0, int(memory_budget_bytes))
        )
        self.max_queue = max(1, int(max_queue))
        self.client_quota = max(1, int(client_quota))
        self.unregister_wait = float(unregister_wait)
        self.drain_timeout = float(drain_timeout)
        self.handshake_timeout = float(handshake_timeout)
        self._codec = wire.JsonWireCodec()
        self._instances: Dict[str, ServedInstance] = {}
        self._lock = threading.Lock()
        self._use_counter = itertools.count(1)
        self._shutdown = threading.Event()
        self._drain_requested = threading.Event()
        self._draining = False
        self._inflight = 0
        self._inflight_lock = threading.Lock()
        self._client_transports: Set[SocketTransport] = set()
        self._transports_lock = threading.Lock()
        self._inflight_batches: Dict[str, _InflightBatch] = {}
        self._coalesce_lock = threading.Lock()
        _labels = {"server": next(_SERVER_SEQ)}
        self._c_batches_coalesced = obs_registry().counter(
            "server.batches_coalesced", **_labels
        )
        self._c_handshakes_rejected = obs_registry().counter(
            "server.handshakes_rejected", **_labels
        )
        self._c_payloads_received = obs_registry().counter(
            "server.payloads_received", **_labels
        )
        self._c_connections_served = obs_registry().counter(
            "server.connections_served", **_labels
        )
        self._h_request_seconds = obs_registry().histogram(
            "server.request_seconds", **_labels
        )
        # Explicit allowlist: request kinds map to bound handlers.  The old
        # getattr(self, f"handle_{kind}") dispatch let any same-prefix
        # method become wire-reachable by accident; this table is the whole
        # attack surface.
        self._handlers = {
            "ping": self.handle_ping,
            "hello": self.handle_hello,
            "register": self.handle_register,
            "load": self.handle_load,
            "apply_delta": self.handle_apply_delta,
            "coverage_batch": self.handle_coverage_batch,
            "materialize_saturations": self.handle_materialize_saturations,
            "query_batch": self.handle_query_batch,
            "stats": self.handle_stats,
            "status": self.handle_status,
            "metrics": self.handle_metrics,
            "unregister": self.handle_unregister,
        }
        self._listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._listener.bind((host, int(port)))
        self._listener.listen(16)

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    @property
    def batches_coalesced(self) -> int:
        return self._c_batches_coalesced.value

    @property
    def handshakes_rejected(self) -> int:
        return self._c_handshakes_rejected.value

    @property
    def payloads_received(self) -> int:
        return self._c_payloads_received.value

    @property
    def connections_served(self) -> int:
        return self._c_connections_served.value

    @property
    def address(self) -> str:
        host, port = self._listener.getsockname()
        return f"{host}:{port}"

    def serve_forever(self) -> None:
        """Accept client connections until :meth:`shutdown` or drain."""
        self._listener.settimeout(0.5)
        try:
            while not self._shutdown.is_set():
                if self._drain_requested.is_set():
                    self._drain()
                    break
                try:
                    conn, _peer = self._listener.accept()
                except socket.timeout:
                    continue
                except OSError:
                    break  # listener closed under us by shutdown()
                # Bounded until the handshake completes so a connect-and-say
                # -nothing client cannot park a thread forever; the client
                # loop lifts the deadline once the peer has authenticated.
                conn.settimeout(self.handshake_timeout)
                self._c_connections_served.inc()
                # Daemon threads, deliberately untracked: a connection
                # lives until its client disconnects (or server close);
                # _close_all() severs any that remain.
                threading.Thread(
                    target=self._client_loop,
                    args=(SocketTransport(conn, codec=self._codec),),
                    daemon=True,
                    name=f"repro-server-client-{self.connections_served}",
                ).start()
        finally:
            self._close_all()

    def start_in_thread(self) -> threading.Thread:
        """Run :meth:`serve_forever` on a daemon thread (tests, embedding)."""
        thread = threading.Thread(
            target=self.serve_forever, daemon=True, name="repro-server-accept"
        )
        thread.start()
        return thread

    def shutdown(self) -> None:
        """Stop accepting, drop every client, and close every fleet."""
        self._shutdown.set()
        try:
            self._listener.close()
        except OSError:
            pass

    def request_drain(self) -> None:
        """Begin a graceful drain (the SIGTERM path).

        The accept loop notices the flag, stops accepting, lets in-flight
        requests finish (bounded by ``drain_timeout``), then shuts down.
        Safe to call from a signal handler.
        """
        self._drain_requested.set()

    @property
    def draining(self) -> bool:
        return self._draining

    def _drain(self) -> None:
        self._draining = True
        try:
            self._listener.close()
        except OSError:
            pass
        deadline = time.monotonic() + self.drain_timeout
        while time.monotonic() < deadline:
            with self._inflight_lock:
                if self._inflight == 0:
                    break
            time.sleep(0.05)
        self._shutdown.set()

    def _close_all(self) -> None:
        with self._lock:
            served_list = list(self._instances.values())
            self._instances.clear()
        for served in served_list:
            with served.lock:
                served.close()
        # Sever surviving client connections so their threads (and any
        # client blocked on a reply) observe the shutdown instead of
        # hanging on a socket nobody will ever write to again.
        with self._transports_lock:
            transports = list(self._client_transports)
            self._client_transports.clear()
        for transport in transports:
            transport.close()

    @contextlib.contextmanager
    def _track_inflight(self):
        with self._inflight_lock:
            self._inflight += 1
        try:
            yield
        finally:
            with self._inflight_lock:
                self._inflight -= 1

    # ------------------------------------------------------------------ #
    # Handle registry
    # ------------------------------------------------------------------ #
    def _touch(self, served: ServedInstance) -> ServedInstance:
        served.last_used = next(self._use_counter)
        return served

    def _get(self, handle: str) -> ServedInstance:
        with self._lock:
            served = self._instances.get(handle)
        if served is None:
            raise UnknownHandleError(
                f"unknown instance handle {handle!r}; register it first"
            )
        return self._touch(served)

    def _new_instance(self, handle: str) -> ServedInstance:
        return ServedInstance(
            handle, max_queue=self.max_queue, client_quota=self.client_quota
        )

    def _get_or_create(self, handle: str) -> ServedInstance:
        victims: List[ServedInstance] = []
        with self._lock:
            served = self._instances.get(handle)
            if served is None:
                victims = self._pop_lru_victims_locked(creating=True)
                served = self._instances[handle] = self._new_instance(handle)
        self._close_victims(victims)
        return self._touch(served)

    def _close_victims(self, victims: List[ServedInstance]) -> None:
        # Fleet teardown can take seconds; do it OUTSIDE the registry lock
        # so one new registration never stalls every in-flight session.
        # Each victim's own lock was acquired (non-blocking) under the
        # registry lock, so no batch is mid-flight on it.
        for victim in victims:
            try:
                victim.close()
            finally:
                victim.lock.release()

    def _over_capacity_locked(self, creating: bool) -> bool:
        if len(self._instances) + (1 if creating else 0) > self.max_instances:
            return True
        if self.memory_budget_bytes is not None:
            total = sum(s.payload_bytes for s in self._instances.values())
            return total > self.memory_budget_bytes
        return False

    def _pop_lru_victims_locked(self, creating: bool = False) -> List[ServedInstance]:
        """Remove least-recently-used idle handles down to the caps.

        Capacity is both a handle count (``max_instances``) and, when
        configured, a payload-byte budget (``memory_budget_bytes``) — a
        handful of giant instances can exhaust memory long before the
        count cap bites.  Returns the removed instances with their locks
        held; the caller closes them after releasing the registry lock.
        Handles mid-batch (lock held elsewhere) are skipped — the registry
        then grows past the soft caps instead of blocking.
        """
        victims: List[ServedInstance] = []
        while self._over_capacity_locked(creating):
            for candidate in sorted(
                self._instances.values(), key=lambda s: s.last_used
            ):
                if candidate.lock.acquire(blocking=False):
                    del self._instances[candidate.handle]
                    victims.append(candidate)
                    break
            else:
                break  # everything busy
        return victims

    def _evict_over_budget(self) -> None:
        """Trim the registry after a payload install changed its footprint."""
        with self._lock:
            victims = self._pop_lru_victims_locked()
        self._close_victims(victims)

    def _service_for(self, served: ServedInstance) -> EvaluationService:
        if served.closed:
            # Phrased like the registry miss so clients recover the same
            # way: re-register (which creates a fresh ServedInstance).
            raise UnknownHandleError(
                f"unknown instance handle {served.handle!r}; it was "
                "unregistered or evicted while a request was in flight"
            )
        if served.payload is None:
            # Typed like the registry miss so clients recover identically:
            # the register probe reports needs_payload and a load follows.
            raise UnknownHandleError(
                f"instance handle {served.handle!r} was registered but no "
                "payload has been loaded yet; re-register and load"
            )
        if served.service is None:
            served.service = EvaluationService(
                payload_fn=lambda: served.payload,
                shards=self.shards,
                strategy=self.strategy,
                transport=self.transport,
                state_token_fn=lambda: served.content_hash,
                diff_fn=served.collect_diff,
            )
            served.service.start()
        return served.service

    @contextlib.contextmanager
    def _locked(self, served: ServedInstance, ctx: Optional[_RequestContext]):
        served.lock.acquire(client=ctx.client if ctx is not None else None)
        try:
            yield
        finally:
            served.lock.release()

    # ------------------------------------------------------------------ #
    # Batch coalescing
    # ------------------------------------------------------------------ #
    def _coalesced(self, kind: str, payload, compute):
        """Share one computation between structurally identical requests.

        Concurrent clients frequently issue the same batch (cross-validation
        folds racing over one dataset, a retried request).  The first
        arrival becomes the leader and computes; followers with the same
        canonical payload digest wait on the leader's result instead of
        queueing a duplicate batch behind the handle lock.
        """
        try:
            key = wire.payload_digest(kind, payload)
        except WireFormatError:
            return compute()  # unkeyable payload: fall through uncoalesced
        with self._coalesce_lock:
            batch = self._inflight_batches.get(key)
            leader = batch is None
            if leader:
                batch = self._inflight_batches[key] = _InflightBatch()
            else:
                self._c_batches_coalesced.inc()
        if not leader:
            batch.event.wait()
            if batch.error is not None:
                raise batch.error
            return batch.result
        try:
            batch.result = compute()
            return batch.result
        except BaseException as exc:
            batch.error = exc
            raise
        finally:
            with self._coalesce_lock:
                self._inflight_batches.pop(key, None)
            batch.event.set()

    # ------------------------------------------------------------------ #
    # Request handlers (the wire-reachable allowlist)
    # ------------------------------------------------------------------ #
    def handle_ping(self, _payload, _ctx) -> str:
        return "pong"

    def handle_hello(self, _payload, _ctx) -> Dict[str, object]:
        with self._lock:
            handles = list(self._instances)
        return {
            "pid": os.getpid(),
            "shards": self.shards,
            "strategy": self.strategy,
            "handles": handles,
        }

    def handle_register(self, payload, ctx) -> Dict[str, object]:
        """Probe a (handle, content hash) pair: is a payload ship needed?

        Content-hash data versioning is what makes repeat runs free: when
        the registered hash matches, the client skips the payload entirely
        and the warm fleet (including every saturation its workers have
        materialized) serves the new run as-is.
        """
        handle, content_hash = payload
        served = self._get_or_create(handle)
        with self._locked(served, ctx):
            warm = (
                served.content_hash == content_hash
                and served.payload is not None
            )
            if warm:
                served._c_register_hits.inc()
            return {
                "needs_payload": not warm,
                "known": served.content_hash is not None,
            }

    def handle_load(self, payload, ctx) -> Dict[str, object]:
        """Install (or replace) a handle's payload and warm its fleet."""
        handle, content_hash, instance_payload = payload
        served = self._get_or_create(handle)
        with self._locked(served, ctx):
            served.payload = instance_payload
            served.content_hash = content_hash
            # A full payload supersedes the delta history: fleets synced to
            # an older hash fall off the (cleared) chain and full-reload.
            served.delta_chain.clear()
            # The request frame carries the encoded payload, so its size is
            # an honest upper bound on what this handle pins in memory; the
            # byte-budget eviction keys on it.
            served.payload_bytes = ctx.frame_bytes if ctx is not None else 0
            served._c_loads.inc()
            self._c_payloads_received.inc()
            service = self._service_for(served)
            # An already-running fleet sees the hash change through its
            # state token and full-reloads on the next batch; forcing the
            # sync here keeps "load" = "workers current" for the client.
            service._ensure_ready()
            tuples = sum(len(r) for r in instance_payload.rows.values())
        self._evict_over_budget()
        return {"handle": handle, "tuples": tuples, "loads": served.loads}

    def handle_apply_delta(self, payload, ctx) -> Dict[str, object]:
        """Advance a handle's payload by a :class:`Delta` — no full re-ship.

        The client sends ``(handle, old content hash, new content hash,
        delta)``; the server derives the new payload from the one it already
        holds and **verifies** it reproduces the claimed hash, so a diverged
        delta (a missed mutation, a clobbered handle) can never silently
        serve stale data — it raises :class:`DeltaMismatchError` and the
        client falls back to the register/load dance.  The handle keeps its
        name and, crucially, its warm fleet: the recorded delta chain lets
        ``collect_diff`` repair worker engines in place instead of
        rebuilding saturation state from scratch.
        """
        handle, old_hash, new_hash, delta = payload
        delta = as_delta(delta)
        served = self._get(handle)
        with self._locked(served, ctx):
            self._check_version(served, old_hash)
            if served.payload is None:
                raise UnknownHandleError(
                    f"instance handle {handle!r} has no payload to advance; "
                    "re-register"
                )
            new_payload = _advance_payload(served.payload, delta)
            computed = payload_content_hash(new_payload)
            if computed != new_hash:
                raise DeltaMismatchError(
                    f"delta on {handle!r} does not reproduce the claimed "
                    "content hash; re-register with a full payload"
                )
            served.payload = new_payload
            served.content_hash = new_hash
            served.record_delta(old_hash, new_hash, delta)
            served._c_deltas_applied.inc()
            # payload_bytes stays the load-time bound: a delta changes the
            # footprint by at most its own (small) frame, and the budget
            # only needs an honest order-of-magnitude figure.
            service = self._service_for(served)
            # The fleet sees the hash move through its state token; the
            # recorded chain makes that sync an in-place engine repair.
            service._ensure_ready()
            tuples = sum(len(r) for r in new_payload.rows.values())
        return {
            "handle": handle,
            "tuples": tuples,
            "deltas_applied": served.deltas_applied,
        }

    def _check_version(
        self, served: ServedInstance, content_hash: Optional[str]
    ) -> None:
        """Reject a batch whose data version is not the one served.

        Two clients sharing one explicit handle with *different* data would
        otherwise silently evaluate against whichever payload loaded last.
        The error is phrased like the registry miss so the client recovers
        identically: re-register (re-shipping its own payload) and retry.
        """
        if content_hash is not None and served.content_hash != content_hash:
            raise UnknownHandleError(
                f"unknown instance handle version on {served.handle!r}: the "
                "server holds a different data version; re-register"
            )

    def handle_coverage_batch(self, payload, ctx) -> List[List[int]]:
        """Subsumption/Castor coverage; returns global index lists per clause."""
        return self._coalesced(
            "coverage_batch", payload, lambda: self._coverage_batch(payload, ctx)
        )

    def _coverage_batch(self, payload, ctx) -> List[List[int]]:
        handle, content_hash, spec, clauses, examples, parallelism = payload
        served = self._get(handle)
        with self._locked(served, ctx):
            self._check_version(served, content_hash)
            service = self._service_for(served)
            covered_lists = service.covered_examples_batch(
                spec, clauses, examples, parallelism=max(1, int(parallelism))
            )
            served._c_batches.inc()
        # One example->positions map instead of rescanning all examples per
        # clause; duplicates of an example share coverage, so every one of
        # its positions is emitted (identical to the per-clause scan).
        positions: Dict[object, List[int]] = {}
        for index, example in enumerate(examples):
            positions.setdefault(example, []).append(index)
        indices: List[List[int]] = []
        for covered in covered_lists:
            per_clause: List[int] = []
            for example in dict.fromkeys(covered):
                per_clause.extend(positions[example])
            per_clause.sort()
            indices.append(per_clause)
        return indices

    def handle_materialize_saturations(self, payload, ctx) -> List[object]:
        return self._coalesced(
            "materialize_saturations",
            payload,
            lambda: self._materialize_saturations(payload, ctx),
        )

    def _materialize_saturations(self, payload, ctx) -> List[object]:
        handle, content_hash, spec, examples, variablize, parallelism = payload
        served = self._get(handle)
        with self._locked(served, ctx):
            self._check_version(served, content_hash)
            service = self._service_for(served)
            clauses = service.materialize_saturations(
                spec,
                examples,
                variablize=bool(variablize),
                parallelism=max(1, int(parallelism)),
            )
            served._c_batches.inc()
        return clauses

    def handle_query_batch(self, payload, ctx) -> List[Set[Row]]:
        return self._coalesced(
            "query_batch", payload, lambda: self._query_batch(payload, ctx)
        )

    def _query_batch(self, payload, ctx) -> List[Set[Row]]:
        handle, content_hash, clauses, candidates, parallelism = payload
        served = self._get(handle)
        with self._locked(served, ctx):
            self._check_version(served, content_hash)
            service = self._service_for(served)
            covered = service.covered_candidates_batch(
                clauses, candidates, parallelism=max(1, int(parallelism))
            )
            served._c_batches.inc()
        return covered

    def handle_stats(self, payload, _ctx) -> Dict[str, object]:
        handle = payload
        if handle is not None:
            return self._get(handle).stats()
        with self._lock:
            served_list = list(self._instances.values())
        return {
            "pid": os.getpid(),
            "payloads_received": self.payloads_received,
            "connections_served": self.connections_served,
            "instances": {s.handle: s.stats() for s in served_list},
        }

    def handle_status(self, _payload, _ctx) -> Dict[str, object]:
        """Operational counters for dashboards and the CI smoke."""
        with self._lock:
            served_list = list(self._instances.values())
        with self._inflight_lock:
            inflight = self._inflight
        handles = {s.handle: s.stats() for s in served_list}
        return {
            "pid": os.getpid(),
            "wire_version": WIRE_VERSION,
            "auth_required": self.auth_token is not None,
            "draining": self._draining,
            "inflight_requests": inflight,
            "connections_served": self.connections_served,
            "payloads_received": self.payloads_received,
            "batches_coalesced": self.batches_coalesced,
            "handshakes_rejected": self.handshakes_rejected,
            "instances": len(served_list),
            "max_instances": self.max_instances,
            "memory_budget_bytes": self.memory_budget_bytes,
            "payload_bytes_total": sum(s.payload_bytes for s in served_list),
            "queue_depth_total": sum(s.lock.queue_depth for s in served_list),
            "handles": handles,
        }

    def handle_metrics(self, _payload, _ctx) -> Dict[str, object]:
        """Registry snapshot + Prometheus text exposition for scrapers.

        The snapshot covers the whole process registry — server counters,
        per-handle counters, and the per-shard service counters — so one
        request is enough to chart the entire serving stack.
        """
        registry = obs_registry()
        return {
            "snapshot": registry.snapshot(),
            "prometheus": registry.prometheus_text(),
        }

    def handle_unregister(self, payload, ctx) -> bool:
        handle = payload
        with self._lock:
            served = self._instances.get(handle)
        if served is None:
            return False
        # Bounded wait: a handle mid-batch returns a typed, retryable error
        # instead of stalling this connection's thread indefinitely (the
        # old code popped the registry entry first and then blocked).
        if not served.lock.acquire(
            client=ctx.client if ctx is not None else None,
            timeout=self.unregister_wait,
        ):
            raise HandleBusyError(
                f"instance handle {handle!r} is busy; retry unregister later"
            )
        try:
            with self._lock:
                if self._instances.get(handle) is not served:
                    return False  # lost a race with another unregister/evict
                del self._instances[handle]
            served.close()
        finally:
            served.lock.release()
        return True

    # ------------------------------------------------------------------ #
    # Connection loop
    # ------------------------------------------------------------------ #
    def _reject_handshake(
        self, transport: SocketTransport, error_type: str, message: str
    ) -> None:
        self._c_handshakes_rejected.inc()
        self._send_reply(transport, ("error", (error_type, message, "")))

    def _handshake(self, transport: SocketTransport) -> Optional[str]:
        """Gate every connection on version + token before any dispatch.

        Returns the negotiated client id, or None when the connection was
        rejected (a typed error reply is sent best-effort first).  Because
        no request reaches a handler without this returning an id, *every*
        request kind — shutdown_server and unregister included — is
        unreachable for unauthenticated peers.
        """
        try:
            message = transport.recv()
        except WireFormatError as exc:
            # Old pickle clients (and fuzzers) land here: the frame is
            # length-prefixed but the body is not a v1 JSON envelope.
            self._reject_handshake(
                transport,
                "ProtocolVersionError",
                f"not a v{WIRE_VERSION} envelope frame ({exc}); "
                "pickle-era clients must upgrade to the JSON wire format",
            )
            return None
        except TransportError:
            return None
        try:
            kind, payload = message[0], message[1]
        except (TypeError, IndexError):
            kind, payload = None, None
        if kind != "handshake" or not isinstance(payload, dict):
            self._reject_handshake(
                transport,
                "AuthenticationError" if self.auth_token else "ProtocolVersionError",
                "connection must open with a handshake frame before any request",
            )
            return None
        version = payload.get("version")
        if version != WIRE_VERSION:
            self._reject_handshake(
                transport,
                "ProtocolVersionError",
                f"client wire version {version!r} is not supported; "
                f"this server speaks version {WIRE_VERSION}",
            )
            return None
        if self.auth_token is not None:
            token = payload.get("token")
            if not isinstance(token, str) or not hmac.compare_digest(
                token, self.auth_token
            ):
                self._reject_handshake(
                    transport,
                    "AuthenticationError",
                    "missing or invalid auth token",
                )
                return None
        client = payload.get("client")
        client_id = str(client) if client else f"conn-{self.connections_served}"
        accepted = self._send_reply(
            transport,
            (
                "ok",
                {
                    "version": WIRE_VERSION,
                    "pid": os.getpid(),
                    "auth_required": self.auth_token is not None,
                    "server": "repro-evaluation-server",
                },
            ),
        )
        return client_id if accepted else None

    def _send_reply(self, transport: SocketTransport, reply) -> bool:
        try:
            transport.send(reply)
            return True
        except WireFormatError as exc:
            # The *reply* failed to encode (handler returned something the
            # wire format cannot carry).  Tell the client rather than
            # leaving its request forever unanswered.
            try:
                transport.send(
                    ("error", ("WireFormatError", f"reply not encodable: {exc}", ""))
                )
                return True
            except (TransportError, WireFormatError):
                return False
        except TransportError:
            return False

    def _client_loop(self, transport: SocketTransport) -> None:
        """Serve one authenticated client connection until it disconnects.

        Replies are ``("ok", result)`` or ``("error", (type, message,
        traceback))``; an exception in a handler never kills the server.
        Client loss only ends the connection — the registered instances and
        their fleets stay warm for the next one.
        """
        with self._transports_lock:
            self._client_transports.add(transport)
        try:
            client_id = self._handshake(transport)
            if client_id is None:
                return
            transport.set_timeout(None)  # handshake deadline no longer applies
            while not self._shutdown.is_set():
                try:
                    message = transport.recv()
                except WireFormatError as exc:
                    # Malformed post-handshake frame: the stream is still
                    # aligned (framing is independent of the body), so
                    # answer with a typed error and keep serving.
                    if not self._send_reply(
                        transport, ("error", ("WireFormatError", str(exc), ""))
                    ):
                        break
                    continue
                except TransportError:
                    break
                kind, payload = message[0], message[1]
                trace_ctx = message[2] if len(message) > 2 else None
                if kind == "shutdown_server":
                    self._send_reply(transport, ("ok", None))
                    self.shutdown()
                    break
                ctx = _RequestContext(
                    client_id, getattr(transport, "last_recv_bytes", 0)
                )
                tracer = obs_tracer()
                # The reply send sits INSIDE the inflight window: a drain
                # that waited only for handlers to return could sever the
                # transport before the final reply flushed, turning
                # "finish in-flight batches" into a coin flip.
                with self._track_inflight():
                    handler = self._handlers.get(kind)
                    try:
                        with tracer.activate(trace_ctx):
                            with tracer.span(f"server.{kind}", client=client_id):
                                with self._h_request_seconds.time():
                                    if handler is None:
                                        # A wire-format violation, not a
                                        # server bug: the envelope named a
                                        # kind outside the allowlist table.
                                        raise WireFormatError(
                                            f"unknown request kind {kind!r}"
                                        )
                                    if (
                                        self._draining
                                        and kind not in _DRAIN_ALLOWED
                                    ):
                                        raise ServerDrainingError(
                                            "server is draining for shutdown; "
                                            "no new work is accepted"
                                        )
                                    reply = ("ok", handler(payload, ctx))
                    except Exception as exc:  # noqa: BLE001 - forwarded to client
                        reply = (
                            "error",
                            (type(exc).__name__, str(exc), traceback.format_exc()),
                        )
                    # Ship the spans this request produced (server-side and
                    # any folded in from the shard workers) back to the
                    # requesting client — drained per trace id so another
                    # tenant's spans can never ride along.
                    if isinstance(trace_ctx, dict):
                        records = tracer.drain(trace_ctx.get("trace_id"))
                        if records:
                            reply = (*reply, {"records": records})
                    delivered = self._send_reply(transport, reply)
                if not delivered:
                    break
        finally:
            with self._transports_lock:
                self._client_transports.discard(transport)
            transport.close()

    def __repr__(self) -> str:
        with self._lock:
            count = len(self._instances)
        return (
            f"ServiceServer({self.address}, {count} instances, "
            f"shards={self.shards}, {self.strategy!r})"
        )
