"""The persistent evaluation server: one warm service outliving many runs.

``python -m repro.distributed.service --serve HOST:PORT`` runs a
:class:`ServiceServer`: a long-lived process that owns worker fleets,
coverage engines, and saturation stores and serves them to any number of
learning runs.  Where the in-process :class:`~repro.distributed.service.EvaluationService`
dies with the run that spawned it (every run pays spawn + payload-ship +
saturation-warm-up again), the server keeps everything warm:

* clients **register instances under named handles** with a content hash of
  the data; a repeat run (or the next cross-validation fold, or another
  user's session over the same dataset) whose hash matches the registered
  one ships **no payload at all** and lands directly on the warm fleet;
* each handle owns one :class:`EvaluationService` (spawned at first load,
  reused forever after), so worker processes and their per-engine
  saturation stores survive across runs and across client connections;
* multiple concurrent sessions share the server: connections are served by
  one thread each, batches on *different* handles run in parallel, batches
  on the *same* handle serialize on that handle's lock (the underlying
  service fan-out is already concurrent internally).

The wire format is the same length-prefixed pickle framing the shard
workers speak (:mod:`repro.distributed.protocol`), with the same trust
model: pickle frames, trusted clients, trusted networks only.

Clients normally do not speak this protocol directly — they use
:class:`repro.session.LearningSession.connect` (or, one level down,
:class:`repro.distributed.client.ServiceClient`).
"""

from __future__ import annotations

import itertools
import os
import socket
import threading
import traceback
from typing import Dict, List, Optional, Set, Tuple

from .protocol import SocketTransport, TransportError, UnknownHandleError
from .service import TRANSPORTS, EvaluationService
from .sharding import DEFAULT_STRATEGY, SHARDING_STRATEGIES

Row = Tuple[object, ...]


class ServedInstance:
    """One registered instance: payload version + its warm worker fleet."""

    def __init__(self, handle: str):
        self.handle = str(handle)
        self.content_hash: Optional[str] = None
        self.payload = None
        self.service: Optional[EvaluationService] = None
        # Serializes batches per handle; the service's own fan-out is
        # concurrent internally, but its sticky assigner and reload check
        # are not safe under interleaved batches from two connections.
        self.lock = threading.RLock()
        self.loads = 0
        self.batches = 0
        self.register_hits = 0
        self.last_used = 0
        self.closed = False

    def close(self) -> None:
        # The closed flag guards the unregister/evict race: a batch that
        # fetched this object before removal and then acquires the lock
        # must not respawn a fleet nothing tracks anymore.  The payload is
        # dropped too, so a closed orphan can never look loadable or warm.
        self.closed = True
        self.payload = None
        self.content_hash = None
        if self.service is not None:
            self.service.close()
            self.service = None

    def stats(self) -> Dict[str, object]:
        service = self.service
        return {
            "handle": self.handle,
            "content_hash": self.content_hash,
            "loads": self.loads,
            "batches": self.batches,
            "register_hits": self.register_hits,
            "reloads_full": service.reloads_full if service else 0,
            "reloads_incremental": (
                service.reloads_incremental if service else 0
            ),
            "worker_pids": service.worker_pids() if service else [],
        }


class ServiceServer:
    """Accept loop + handle registry of the persistent evaluation server."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        shards: Optional[int] = None,
        strategy: str = DEFAULT_STRATEGY,
        transport: str = "pipe",
        max_instances: int = 32,
    ):
        if strategy not in SHARDING_STRATEGIES:
            raise ValueError(
                f"unknown sharding strategy {strategy!r}; "
                f"available: {list(SHARDING_STRATEGIES)}"
            )
        if transport not in TRANSPORTS:
            raise ValueError(
                f"unknown transport {transport!r}; available: {list(TRANSPORTS)}"
            )
        self.shards = shards
        self.strategy = strategy
        self.transport = transport
        self.max_instances = max(1, int(max_instances))
        self._instances: Dict[str, ServedInstance] = {}
        self._lock = threading.Lock()
        self._use_counter = itertools.count(1)
        self._shutdown = threading.Event()
        self.payloads_received = 0
        self.connections_served = 0
        self._listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._listener.bind((host, int(port)))
        self._listener.listen(16)

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    @property
    def address(self) -> str:
        host, port = self._listener.getsockname()
        return f"{host}:{port}"

    def serve_forever(self) -> None:
        """Accept client connections until :meth:`shutdown`."""
        self._listener.settimeout(0.5)
        try:
            while not self._shutdown.is_set():
                try:
                    conn, _peer = self._listener.accept()
                except socket.timeout:
                    continue
                except OSError:
                    break  # listener closed under us by shutdown()
                conn.settimeout(None)
                self.connections_served += 1
                # Daemon threads, deliberately untracked: a connection
                # lives until its client disconnects (or process exit);
                # shutdown() closes the fleets, not the idle sockets.
                threading.Thread(
                    target=self._client_loop,
                    args=(SocketTransport(conn),),
                    daemon=True,
                    name=f"repro-server-client-{self.connections_served}",
                ).start()
        finally:
            self._close_all()

    def start_in_thread(self) -> threading.Thread:
        """Run :meth:`serve_forever` on a daemon thread (tests, embedding)."""
        thread = threading.Thread(
            target=self.serve_forever, daemon=True, name="repro-server-accept"
        )
        thread.start()
        return thread

    def shutdown(self) -> None:
        """Stop accepting, drop every client, and close every fleet."""
        self._shutdown.set()
        try:
            self._listener.close()
        except OSError:
            pass

    def _close_all(self) -> None:
        with self._lock:
            served_list = list(self._instances.values())
            self._instances.clear()
        for served in served_list:
            with served.lock:
                served.close()

    # ------------------------------------------------------------------ #
    # Handle registry
    # ------------------------------------------------------------------ #
    def _touch(self, served: ServedInstance) -> ServedInstance:
        served.last_used = next(self._use_counter)
        return served

    def _get(self, handle: str) -> ServedInstance:
        with self._lock:
            served = self._instances.get(handle)
        if served is None:
            raise UnknownHandleError(
                f"unknown instance handle {handle!r}; register it first"
            )
        return self._touch(served)

    def _get_or_create(self, handle: str) -> ServedInstance:
        victims: List[ServedInstance] = []
        with self._lock:
            served = self._instances.get(handle)
            if served is None:
                victims = self._pop_lru_victims_locked()
                served = self._instances[handle] = ServedInstance(handle)
        # Fleet teardown can take seconds; do it OUTSIDE the registry lock
        # so one new registration never stalls every in-flight session.
        # Each victim's own lock was acquired (non-blocking) under the
        # registry lock, so no batch is mid-flight on it.
        for victim in victims:
            try:
                victim.close()
            finally:
                victim.lock.release()
        return self._touch(served)

    def _pop_lru_victims_locked(self) -> List[ServedInstance]:
        """Remove least-recently-used idle handles down to the cap.

        Returns the removed instances with their locks held; the caller
        closes them after releasing the registry lock.  Handles mid-batch
        (lock held elsewhere) are skipped — the registry then grows past
        the soft cap instead of blocking.
        """
        victims: List[ServedInstance] = []
        while len(self._instances) >= self.max_instances:
            for candidate in sorted(
                self._instances.values(), key=lambda s: s.last_used
            ):
                if candidate.lock.acquire(blocking=False):
                    del self._instances[candidate.handle]
                    victims.append(candidate)
                    break
            else:
                break  # everything busy
        return victims

    def _service_for(self, served: ServedInstance) -> EvaluationService:
        if served.closed:
            # Phrased like the registry miss so clients recover the same
            # way: re-register (which creates a fresh ServedInstance).
            raise UnknownHandleError(
                f"unknown instance handle {served.handle!r}; it was "
                f"unregistered or evicted while a request was in flight"
            )
        if served.payload is None:
            raise RuntimeError(
                f"instance handle {served.handle!r} was registered but no "
                f"payload has been loaded yet"
            )
        if served.service is None:
            served.service = EvaluationService(
                payload_fn=lambda: served.payload,
                shards=self.shards,
                strategy=self.strategy,
                transport=self.transport,
                state_token_fn=lambda: served.content_hash,
            )
            served.service.start()
        return served.service

    # ------------------------------------------------------------------ #
    # Request handlers
    # ------------------------------------------------------------------ #
    def handle_ping(self, _payload) -> str:
        return "pong"

    def handle_hello(self, _payload) -> Dict[str, object]:
        with self._lock:
            handles = list(self._instances)
        return {
            "pid": os.getpid(),
            "shards": self.shards,
            "strategy": self.strategy,
            "handles": handles,
        }

    def handle_register(self, payload) -> Dict[str, object]:
        """Probe a (handle, content hash) pair: is a payload ship needed?

        Content-hash data versioning is what makes repeat runs free: when
        the registered hash matches, the client skips the payload entirely
        and the warm fleet (including every saturation its workers have
        materialized) serves the new run as-is.
        """
        handle, content_hash = payload
        served = self._get_or_create(handle)
        with served.lock:
            warm = (
                served.content_hash == content_hash
                and served.payload is not None
            )
            if warm:
                served.register_hits += 1
            return {
                "needs_payload": not warm,
                "known": served.content_hash is not None,
            }

    def handle_load(self, payload) -> Dict[str, object]:
        """Install (or replace) a handle's payload and warm its fleet."""
        handle, content_hash, instance_payload = payload
        served = self._get_or_create(handle)
        with served.lock:
            served.payload = instance_payload
            served.content_hash = content_hash
            served.loads += 1
            self.payloads_received += 1
            service = self._service_for(served)
            # An already-running fleet sees the hash change through its
            # state token and full-reloads on the next batch; forcing the
            # sync here keeps "load" = "workers current" for the client.
            service._ensure_ready()
            tuples = sum(len(r) for r in instance_payload.rows.values())
        return {"handle": handle, "tuples": tuples, "loads": served.loads}

    def _check_version(
        self, served: ServedInstance, content_hash: Optional[str]
    ) -> None:
        """Reject a batch whose data version is not the one served.

        Two clients sharing one explicit handle with *different* data would
        otherwise silently evaluate against whichever payload loaded last.
        The error is phrased like the registry miss so the client recovers
        identically: re-register (re-shipping its own payload) and retry.
        """
        if content_hash is not None and served.content_hash != content_hash:
            raise UnknownHandleError(
                f"unknown instance handle version on {served.handle!r}: the "
                f"server holds a different data version; re-register"
            )

    def handle_coverage_batch(self, payload) -> List[List[int]]:
        """Subsumption/Castor coverage; returns global index lists per clause."""
        handle, content_hash, spec, clauses, examples, parallelism = payload
        served = self._get(handle)
        with served.lock:
            self._check_version(served, content_hash)
            service = self._service_for(served)
            covered_lists = service.covered_examples_batch(
                spec, clauses, examples, parallelism=max(1, int(parallelism))
            )
            served.batches += 1
        # One example->positions map instead of rescanning all examples per
        # clause; duplicates of an example share coverage, so every one of
        # its positions is emitted (identical to the per-clause scan).
        positions: Dict[object, List[int]] = {}
        for index, example in enumerate(examples):
            positions.setdefault(example, []).append(index)
        indices: List[List[int]] = []
        for covered in covered_lists:
            per_clause: List[int] = []
            for example in dict.fromkeys(covered):
                per_clause.extend(positions[example])
            per_clause.sort()
            indices.append(per_clause)
        return indices

    def handle_materialize_saturations(self, payload) -> List[object]:
        handle, content_hash, spec, examples, variablize, parallelism = payload
        served = self._get(handle)
        with served.lock:
            self._check_version(served, content_hash)
            service = self._service_for(served)
            clauses = service.materialize_saturations(
                spec,
                examples,
                variablize=bool(variablize),
                parallelism=max(1, int(parallelism)),
            )
            served.batches += 1
        return clauses

    def handle_query_batch(self, payload) -> List[Set[Row]]:
        handle, content_hash, clauses, candidates, parallelism = payload
        served = self._get(handle)
        with served.lock:
            self._check_version(served, content_hash)
            service = self._service_for(served)
            covered = service.covered_candidates_batch(
                clauses, candidates, parallelism=max(1, int(parallelism))
            )
            served.batches += 1
        return covered

    def handle_stats(self, payload) -> Dict[str, object]:
        handle = payload
        if handle is not None:
            return self._get(handle).stats()
        with self._lock:
            served_list = list(self._instances.values())
        return {
            "pid": os.getpid(),
            "payloads_received": self.payloads_received,
            "connections_served": self.connections_served,
            "instances": {s.handle: s.stats() for s in served_list},
        }

    def handle_unregister(self, payload) -> bool:
        handle = payload
        with self._lock:
            served = self._instances.pop(handle, None)
        if served is None:
            return False
        with served.lock:
            served.close()
        return True

    # ------------------------------------------------------------------ #
    # Connection loop
    # ------------------------------------------------------------------ #
    def _client_loop(self, transport: SocketTransport) -> None:
        """Serve one client connection until it disconnects.

        Mirrors the shard worker's loop: replies are ``("ok", result)`` or
        ``("error", (type, message, traceback))``; an exception in a handler
        never kills the server.  Client loss only ends the connection — the
        registered instances and their fleets stay warm for the next one.
        """
        try:
            while not self._shutdown.is_set():
                try:
                    message = transport.recv()
                except TransportError:
                    break
                try:
                    kind, payload = message
                except (TypeError, ValueError) as exc:
                    # A malformed frame gets an error reply like any other
                    # bad input instead of silently killing the connection.
                    try:
                        transport.send((
                            "error",
                            (
                                type(exc).__name__,
                                f"malformed request frame: {exc}",
                                traceback.format_exc(),
                            ),
                        ))
                    except TransportError:
                        break
                    continue
                if kind == "shutdown_server":
                    try:
                        transport.send(("ok", None))
                    except TransportError:
                        pass
                    self.shutdown()
                    break
                handler = getattr(self, f"handle_{kind}", None)
                try:
                    if handler is None:
                        raise ValueError(f"unknown request kind {kind!r}")
                    reply = ("ok", handler(payload))
                except Exception as exc:  # noqa: BLE001 - forwarded to client
                    reply = (
                        "error",
                        (type(exc).__name__, str(exc), traceback.format_exc()),
                    )
                try:
                    transport.send(reply)
                except TransportError:
                    break
        finally:
            transport.close()

    def __repr__(self) -> str:
        with self._lock:
            count = len(self._instances)
        return (
            f"ServiceServer({self.address}, {count} instances, "
            f"shards={self.shards}, {self.strategy!r})"
        )
