"""The evaluation service: a coordinator fanning coverage batches over shards.

:class:`EvaluationService` owns N worker processes (or remote workers), each
holding a full copy of the database instance and a **sticky slice of the
example set** (see :mod:`repro.distributed.sharding`).  A coverage batch —
N candidate clauses against one example list — is split along the example
axis: every shard tests all clauses against only its own examples, returns
one bitset per clause, and the coordinator ORs the bitsets back together in
input order.  Results are therefore invariant in the shard count, the
sharding strategy, and the parallelism setting; those knobs only move work.

Failure semantics (the lifecycle-hardening contract):

* a worker that dies mid-batch (killed, OOMed, segfaulted) is **respawned
  from its instance payload** and the in-flight shard request is retried
  exactly once;
* if the respawn or the retry fails too, :class:`ShardFailedError` surfaces
  to the caller with the shard index and the underlying transport error;
* an exception *inside* a healthy worker (a bug, not a crash) is
  deterministic, so it is never retried — it surfaces as
  :class:`WorkerError` carrying the remote traceback.
"""

from __future__ import annotations

import itertools
import multiprocessing
import os
import secrets
import signal
import socket
import threading
from concurrent.futures import ThreadPoolExecutor
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

from ...obs import registry as obs_registry, tracer as obs_tracer

from ..protocol import (
    SocketTransport,
    PipeTransport,
    TransportError,
    connect,
    send_auth_proof,
    verify_auth_proof,
)
from ..sharding import DEFAULT_STRATEGY, ShardAssigner, SHARDING_STRATEGIES
from ..worker import (
    SATURATION_SPEC_KINDS,
    SPEC_KINDS,
    InstancePayload,
    pipe_worker_main,
    socket_worker_main,
)

Row = Tuple[object, ...]

#: Transport selectors accepted by the service and the sharded backend.
TRANSPORTS = ("pipe", "socket")


class ShardFailedError(RuntimeError):
    """A shard stayed down after one respawn-and-retry cycle."""

    def __init__(self, shard: int, message: str):
        super().__init__(f"shard {shard} failed and could not be recovered: {message}")
        self.shard = shard


class WorkerError(RuntimeError):
    """An exception raised inside a worker (deterministic; not retried)."""

    def __init__(self, shard: int, kind: str, message: str, remote_traceback: str):
        super().__init__(f"shard {shard} raised {kind}: {message}")
        self.shard = shard
        self.kind = kind
        self.remote_traceback = remote_traceback


def default_shard_count() -> int:
    """Default worker count: one per core, capped (shards beyond the core
    count only add IPC overhead for CPU-bound SQLite work)."""
    return max(1, min(4, os.cpu_count() or 1))


#: Distinguishes the registry series of concurrently-live services (a
#: server process runs one fleet per registered handle).
_SERVICE_SEQ = itertools.count(1)


class WorkerHandle:
    """One shard's transport + (for local workers) its process.

    The handle also owns the shard's **reload/batch counters**.  They live
    here — on the coordinator, in the metrics registry — rather than in the
    worker process precisely so a worker crash + respawn cannot zero them:
    the handle object survives the respawn, so hit-rate metrics stay
    truthful under failure.
    """

    def __init__(self, index: int, metrics_scope: str = "unscoped"):
        self.index = index
        self.transport = None
        self.process: Optional[multiprocessing.process.BaseProcess] = None
        self.remote_address: Optional[str] = None
        self.remote_token: Optional[str] = None
        self.lock = threading.Lock()
        labels = {"service": metrics_scope, "shard": index}
        self._c_respawns = obs_registry().counter("service.shard.respawns", **labels)
        self._c_reloads_full = obs_registry().counter(
            "service.shard.reloads_full", **labels
        )
        self._c_reloads_incremental = obs_registry().counter(
            "service.shard.reloads_incremental", **labels
        )
        self._c_batches = obs_registry().counter("service.shard.batches", **labels)

    @property
    def respawns(self) -> int:
        return self._c_respawns.value

    @property
    def reloads_full(self) -> int:
        return self._c_reloads_full.value

    @property
    def reloads_incremental(self) -> int:
        return self._c_reloads_incremental.value

    @property
    def pid(self) -> Optional[int]:
        return self.process.pid if self.process is not None else None

    def request(self, message: Tuple[str, object]) -> object:
        """One request/reply round-trip; raises on transport or worker error.

        When a trace context is active on the calling thread, it is
        attached as the frame's third element and the worker's finished
        spans come back in the reply's third element — folded straight into
        this process's tracer buffer.
        """
        tracer = obs_tracer()
        trace_ctx = tracer.inject()
        if trace_ctx is not None:
            message = (*message, trace_ctx)
        with self.lock:
            if self.transport is None:
                raise TransportError(f"shard {self.index} has no live transport")
            self.transport.send(message)
            reply = self.transport.recv()  # repro: noqa[REP004] -- per-worker handle lock serializes send/recv pairs on one pipe/socket; a dead worker is detected by the coordinator's respawn-and-retry path, not by unblocking here
        status, payload = reply[0], reply[1]
        if len(reply) > 2 and isinstance(reply[2], dict):
            records = reply[2].get("records")
            if records:
                tracer.extend(records)
        if status == "ok":
            return payload
        kind, text, remote_traceback = payload
        raise WorkerError(self.index, kind, text, remote_traceback)

    def close_transport(self) -> None:
        if self.transport is not None:
            self.transport.close()
            self.transport = None

    def terminate(self) -> None:
        self.close_transport()
        if self.process is not None:
            if self.process.is_alive():
                self.process.terminate()
            self.process.join(timeout=5)
            self.process = None


class EvaluationService:
    """Coordinator for a fleet of shard workers.

    Parameters
    ----------
    payload_fn:
        Zero-argument callable producing the :class:`InstancePayload` workers
        (re)build their database from.  Called at every spawn, respawn, and
        reload, so it must reflect the *current* data.
    shards:
        Number of local workers (ignored for examples already pinned to
        attached remote workers).
    strategy:
        Sharding strategy (``hash``/``round-robin``/``size-balanced``).
    transport:
        ``"pipe"`` (multiprocessing pipes) or ``"socket"`` (workers dial a
        localhost TCP listener — the same codepath remote workers use).
    state_token_fn:
        Optional callable returning a cheap token of the source data's
        version; when it changes between batches every worker is reloaded,
        so mutations on the coordinator instance are always visible.
    diff_fn:
        Optional callable mapping the last-synced token to an **incremental
        relation diff** (a :class:`~repro.database.delta.Delta`, or the
        legacy ordered list of ``(op, relation, rows)`` entries) — when it
        returns one, live workers are updated with an ``apply_diff``
        request instead of a full payload reload, and workers repair their
        warm engine caches in place rather than dropping them.  Returning
        ``None`` means "cannot diff from that token" (new relation, log
        truncated, diff larger than the payload) and falls back to the full
        reload.  Respawned workers always rebuild from the full payload.
    """

    def __init__(
        self,
        payload_fn: Callable[[], InstancePayload],
        shards: Optional[int] = None,
        strategy: str = DEFAULT_STRATEGY,
        transport: str = "pipe",
        state_token_fn: Optional[Callable[[], object]] = None,
        diff_fn: Optional[Callable[[object], Optional[List[object]]]] = None,
    ):
        if strategy not in SHARDING_STRATEGIES:
            raise ValueError(
                f"unknown sharding strategy {strategy!r}; "
                f"available: {list(SHARDING_STRATEGIES)}"
            )
        if transport not in TRANSPORTS:
            raise ValueError(
                f"unknown transport {transport!r}; available: {list(TRANSPORTS)}"
            )
        self.payload_fn = payload_fn
        self.shards = (
            int(shards) if shards is not None else default_shard_count()
        )
        if self.shards < 1:
            raise ValueError(f"need at least one shard, got {self.shards}")
        self.strategy = strategy
        self.transport = transport
        self._state_token_fn = state_token_fn
        self._diff_fn = diff_fn
        self._synced_token: object = None
        # Registry-backed counters.  The sequence label keeps each service
        # instance on its own series, so a freshly constructed service reads
        # zero even when an earlier one used the same names.
        self._metrics_scope = str(next(_SERVICE_SEQ))
        _labels = {"service": self._metrics_scope}
        self._c_reloads_full = obs_registry().counter(
            "service.reloads_full", **_labels
        )
        self._c_reloads_incremental = obs_registry().counter(
            "service.reloads_incremental", **_labels
        )
        self._c_batches_served = obs_registry().counter(
            "service.batches_served", **_labels
        )
        # ``spawn`` keeps workers independent of coordinator threads and
        # inherited SQLite state (fork + live threads is a deadlock lottery).
        self._context = multiprocessing.get_context("spawn")
        self._handles: List[WorkerHandle] = []
        self._assigner: Optional[ShardAssigner] = None
        self._listener: Optional[socket.socket] = None
        self._executor: Optional[ThreadPoolExecutor] = None
        self._started = False
        self._lock = threading.Lock()
        # Serializes process spawn + (for sockets) listener accept, so two
        # shards respawning concurrently from fan-out threads can never
        # cross-pair a handle with the other shard's worker process.
        self._spawn_lock = threading.Lock()
        # Spawn nonce for socket workers: the worker protocol is pickle, so
        # the coordinator must never unpickle from a dialer that has not
        # proven it is the process we just spawned (the nonce travels in
        # the spawn args, never over the network in the clear).
        self._worker_secret = secrets.token_hex(16)

    # Counter reads stay plain integer attributes for callers/tests.
    @property
    def reloads_full(self) -> int:
        return self._c_reloads_full.value

    @property
    def reloads_incremental(self) -> int:
        return self._c_reloads_incremental.value

    @property
    def batches_served(self) -> int:
        return self._c_batches_served.value

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    def start(self) -> "EvaluationService":
        """Spawn the workers and ship them the instance payload.

        Exception-safe: a spawn failure mid-fleet terminates the workers
        already started and resets the service to cold, so a retried
        ``start()`` begins from scratch instead of stacking a second fleet
        on top of half of the first.
        """
        with self._lock:
            if self._started:
                return self
            try:
                if self.transport == "socket":
                    self._listener = socket.socket(
                        socket.AF_INET, socket.SOCK_STREAM
                    )
                    self._listener.bind(("127.0.0.1", 0))
                    self._listener.listen(self.shards)
                payload = self.payload_fn()
                self._synced_token = (
                    self._state_token_fn() if self._state_token_fn else None
                )
                for index in range(self.shards):
                    handle = WorkerHandle(index, self._metrics_scope)
                    # Registered before spawning so the except block below
                    # can terminate it even when the spawn half-completed.
                    self._handles.append(handle)
                    self._spawn_into(handle, payload)
                self._assigner = ShardAssigner(len(self._handles), self.strategy)
                self._executor = ThreadPoolExecutor(
                    max_workers=len(self._handles),
                    thread_name_prefix="shard-coordinator",
                )
                self._started = True
            except BaseException:
                for handle in self._handles:
                    handle.terminate()
                self._handles.clear()
                self._assigner = None
                if self._listener is not None:
                    self._listener.close()
                    self._listener = None
                if self._executor is not None:
                    self._executor.shutdown(wait=False)
                    self._executor = None
                raise
        return self

    def attach_remote(
        self, address: str, timeout: float = 10.0, token: Optional[str] = None
    ) -> int:
        """Attach a pre-started remote worker (``python -m
        repro.distributed.worker --serve HOST:PORT``) as an extra shard.

        Must be called before the first batch (the sticky assigner is sized
        at first use).  Returns the new shard's index.  A remote shard that
        fails is *reconnected* (the coordinator cannot respawn a process on
        another machine) and retried with the same once-only policy.  When
        the worker was started with ``--auth-token``, pass the matching
        ``token`` — the coordinator proves it before the worker will decode
        a single frame.
        """
        with self._lock:
            if not self._started:
                raise RuntimeError("start() the service before attaching workers")
            if self._assigner is not None and self._assigner._assignments:
                raise RuntimeError(
                    "cannot attach workers after examples have been sharded"
                )
            handle = WorkerHandle(len(self._handles), self._metrics_scope)
            handle.remote_address = address
            handle.remote_token = token
            handle.transport = connect(address, timeout=timeout)
            if token is not None:
                send_auth_proof(handle.transport._socket, token)
            self._init_worker(handle, self.payload_fn())
            self._handles.append(handle)
            self._assigner = ShardAssigner(len(self._handles), self.strategy)
            self._executor.shutdown(wait=True)
            self._executor = ThreadPoolExecutor(
                max_workers=len(self._handles),
                thread_name_prefix="shard-coordinator",
            )
            return handle.index

    def close(self) -> None:
        """Shut every worker down and release the coordinator resources.

        Shutdown is fire-and-forget: waiting for an ack could block behind
        a shard still grinding through an abandoned in-flight query (the
        compiled path has no backtrack budget), and ``terminate()`` is the
        backstop either way.  The started flag drops *before* the teardown
        so a batch thread racing this close sees its transport die and
        fails fast (``ShardFailedError``) instead of respawning an
        untracked worker into a closed service.
        """
        with self._lock:
            self._started = False
            for handle in self._handles:
                if handle.transport is not None and handle.lock.acquire(
                    timeout=1.0
                ):
                    try:
                        handle.transport.send(("shutdown", None))
                    except (TransportError, OSError):
                        pass
                    finally:
                        handle.lock.release()
                handle.terminate()
            self._handles.clear()
            if self._listener is not None:
                self._listener.close()
                self._listener = None
            if self._executor is not None:
                self._executor.shutdown(wait=False)
                self._executor = None
            self._started = False

    def __enter__(self) -> "EvaluationService":
        return self.start()

    def __exit__(self, *_exc) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    # Spawning / recovery
    # ------------------------------------------------------------------ #
    def _spawn_into(self, handle: WorkerHandle, payload: InstancePayload) -> None:
        """(Re)create the local worker process behind ``handle``."""
        with self._spawn_lock:
            self._spawn_into_locked(handle, payload)

    def _spawn_into_locked(
        self, handle: WorkerHandle, payload: InstancePayload
    ) -> None:
        if self.transport == "pipe":
            parent_conn, child_conn = self._context.Pipe(duplex=True)
            process = self._context.Process(
                target=pipe_worker_main,
                args=(child_conn,),
                daemon=True,
                name=f"repro-shard-{handle.index}",
            )
            process.start()
            child_conn.close()
            handle.transport = PipeTransport(parent_conn)
        else:
            host, port = self._listener.getsockname()
            process = self._context.Process(
                target=socket_worker_main,
                args=(host, port, self._worker_secret),
                daemon=True,
                name=f"repro-shard-{handle.index}",
            )
            process.start()
            self._listener.settimeout(30)
            conn = None
            # A stray dialer hitting the loopback listener must not be
            # mistaken for our worker: only a connection proving the spawn
            # nonce gets its pickle frames decoded.
            for _attempt in range(5):
                conn, _peer = self._listener.accept()
                if verify_auth_proof(conn, self._worker_secret):
                    break
                try:
                    conn.close()
                except OSError:
                    pass
                conn = None
            if conn is None:
                process.terminate()
                raise TransportError(
                    f"shard {handle.index}: no authenticated worker dial-back"
                )
            conn.settimeout(None)
            handle.transport = SocketTransport(conn)
        handle.process = process
        self._init_worker(handle, payload)

    def _init_worker(self, handle: WorkerHandle, payload: InstancePayload) -> None:
        info = handle.request(("init", payload))
        if not isinstance(info, dict) or "pid" not in info:
            raise TransportError(f"shard {handle.index} failed to initialize")

    def _respawn(self, handle: WorkerHandle) -> None:
        """Bring a dead shard back from its snapshot payload."""
        if not self._started:
            raise TransportError(
                f"service closed while shard {handle.index} was in flight"
            )
        handle.terminate()
        handle._c_respawns.inc()
        # A respawn rebuilds from the full payload, so it *is* a full reload
        # for this shard — counted on the surviving handle, not in the dead
        # worker, so the reload history is not lost with the process.
        handle._c_reloads_full.inc()
        payload = self.payload_fn()
        if handle.remote_address is not None:
            handle.transport = connect(handle.remote_address, timeout=10.0)
            token = getattr(handle, "remote_token", None)
            if token is not None:
                send_auth_proof(handle.transport._socket, token)
            self._init_worker(handle, payload)
        else:
            self._spawn_into(handle, payload)

    def _request_with_retry(
        self, handle: WorkerHandle, message: Tuple[str, object]
    ) -> object:
        """One shard request with the respawn-once failure policy."""
        try:
            return handle.request(message)
        except TransportError as first_error:
            try:
                self._respawn(handle)
                return handle.request(message)
            except (TransportError, OSError, EOFError) as exc:
                raise ShardFailedError(handle.index, str(exc)) from first_error

    # ------------------------------------------------------------------ #
    # Data freshness
    # ------------------------------------------------------------------ #
    def _ensure_ready(self) -> None:
        self.start()
        if self._state_token_fn is None:
            return
        token = self._state_token_fn()
        if token == self._synced_token:
            return
        diff = self._diff_fn(self._synced_token) if self._diff_fn else None
        if diff is not None:
            self._c_reloads_incremental.inc()
            message = ("apply_diff", (diff,))
        else:
            self._c_reloads_full.inc()
            message = ("reload", self.payload_fn())
        for handle in self._handles:
            try:
                handle.request(message)
                if diff is not None:
                    handle._c_reloads_incremental.inc()
                else:
                    handle._c_reloads_full.inc()
            except TransportError as first_error:
                try:
                    # A respawn rebuilds from the CURRENT full payload, so a
                    # worker lost mid-diff needs no diff replay afterwards.
                    self._respawn(handle)
                except (TransportError, OSError, EOFError) as exc:
                    # Same failure surface as a batch request: shard loss
                    # that survives the respawn becomes ShardFailedError.
                    raise ShardFailedError(handle.index, str(exc)) from first_error
        self._synced_token = token

    def sync(self) -> None:
        """Bring the worker fleet up to date with the source data *now*.

        The same freshness pass every batch runs lazily — exposed so a
        streaming caller (:meth:`LearningSession.update
        <repro.session.session.LearningSession.update>`) can push a delta
        to live workers eagerly instead of paying the sync on the next
        coverage request.  A cold (never-started) service is left cold:
        its workers will build from the current payload anyway.
        """
        if self._started:
            self._ensure_ready()

    # ------------------------------------------------------------------ #
    # Batched coverage
    # ------------------------------------------------------------------ #
    def _worker_parallelism(self, parallelism: int) -> int:
        """Per-worker thread fan-out for a caller-requested parallelism.

        The shard processes already are the parallelism, so the requested
        fan-out is divided across them — ``shards=4, parallelism=4`` runs 4
        single-threaded workers, not 16 threads.  Never affects results.
        """
        return max(1, int(parallelism) // max(1, len(self._handles)))

    def _scatter(
        self,
        kind: str,
        keys: Sequence[object],
        items: Sequence[object],
        payload_for: Callable[[List[object]], object],
    ) -> Tuple[List[List[int]], List[Tuple[int, object]]]:
        """Sticky example-axis fan-out shared by every per-item request kind.

        Partitions ``items`` by ``keys`` through the sticky assigner,
        queries every busy shard concurrently with the respawn-once retry
        policy, and returns the partition buckets plus ``(shard, reply)``
        pairs — keeping the retry and input-order-reassembly policy in one
        place for coverage and saturation batches alike.
        """
        buckets = self._assigner.partition(keys)
        # Executor threads do not inherit the caller's contextvars, so the
        # trace context is captured here and re-activated inside run_shard —
        # otherwise the per-shard spans would detach from the batch's trace.
        tracer = obs_tracer()
        trace_ctx = tracer.inject()

        def run_shard(shard: int) -> Tuple[int, object]:
            with tracer.activate(trace_ctx):
                with tracer.span(
                    "service.shard", shard=shard, kind=kind,
                    items=len(buckets[shard]),
                ):
                    slice_items = [items[i] for i in buckets[shard]]
                    reply = self._request_with_retry(
                        self._handles[shard], (kind, payload_for(slice_items))
                    )
            self._handles[shard]._c_batches.inc()
            return shard, reply

        busy = [s for s in range(len(buckets)) if buckets[s]]
        if len(busy) <= 1:
            replies = [run_shard(s) for s in busy]
        else:
            replies = list(self._executor.map(run_shard, busy))
        self._c_batches_served.inc()
        return buckets, replies

    def _fan_out(
        self,
        kind: str,
        keys: Sequence[object],
        items: Sequence[object],
        payload_for: Callable[[List[object]], object],
        clause_count: int,
    ) -> List[List[int]]:
        """Bitset variant of :meth:`_scatter`: merge per-shard masks.

        Returns, per clause, the list of *global* item indices covered —
        assembled from the per-shard bitsets, so the caller reconstructs
        results in input order regardless of shard count.
        """
        buckets, shard_masks = self._scatter(kind, keys, items, payload_for)
        covered_indices: List[List[int]] = [[] for _ in range(clause_count)]
        for shard, masks in shard_masks:
            indices = buckets[shard]
            for clause_index, mask in enumerate(masks):
                if not mask:
                    continue
                for j, global_index in enumerate(indices):
                    if (mask >> j) & 1:
                        covered_indices[clause_index].append(global_index)
        for per_clause in covered_indices:
            per_clause.sort()
        return covered_indices

    def covered_examples_batch(
        self,
        spec: Tuple[object, ...],
        clauses: Sequence[object],
        examples: Sequence[object],
        parallelism: int = 1,
    ) -> List[List[object]]:
        """Covered example subsets for N clauses, in input order.

        ``spec`` is a picklable engine recipe (``shard_spec()`` of a coverage
        engine); each worker instantiates it once and keeps it — and its
        saturation store — warm across batches and folds.
        """
        if not spec or spec[0] not in SPEC_KINDS:
            raise ValueError(
                f"unknown engine spec kind {spec[0] if spec else spec!r}; "
                f"available: {list(SPEC_KINDS)}"
            )
        clause_list = list(clauses)
        example_list = list(examples)
        if not clause_list:
            return []
        if not example_list:
            return [[] for _ in clause_list]
        self._ensure_ready()
        keys = [(e.target, e.values, e.positive) for e in example_list]
        worker_parallelism = self._worker_parallelism(parallelism)
        covered = self._fan_out(
            "coverage_batch",
            keys,
            example_list,
            lambda slice_items: (spec, clause_list, slice_items, worker_parallelism),
            len(clause_list),
        )
        return [
            [example_list[i] for i in indices] for indices in covered
        ]

    def materialize_saturations(
        self,
        spec: Tuple[object, ...],
        examples: Sequence[object],
        variablize: bool = False,
        parallelism: int = 1,
    ) -> List[object]:
        """Bottom clauses / saturations for a whole example set, in order.

        ``spec`` is a picklable builder recipe (``saturation_spec()`` of a
        bottom-clause builder); each worker instantiates it once and keeps
        its compiled IND/theory-constant metadata warm.  The example axis is
        split with the same sticky assignment coverage uses, so an example
        is always saturated on the shard that owns it, and the constructed
        clauses are shipped back and reassembled into input order.
        """
        if not spec or spec[0] not in SATURATION_SPEC_KINDS:
            raise ValueError(
                f"unknown saturation spec kind {spec[0] if spec else spec!r}; "
                f"available: {list(SATURATION_SPEC_KINDS)}"
            )
        example_list = list(examples)
        if not example_list:
            return []
        self._ensure_ready()
        keys = [(e.target, e.values, e.positive) for e in example_list]
        worker_parallelism = self._worker_parallelism(parallelism)
        buckets, shard_results = self._scatter(
            "materialize_saturations",
            keys,
            example_list,
            lambda slice_examples: (
                spec,
                slice_examples,
                bool(variablize),
                worker_parallelism,
            ),
        )
        results: List[object] = [None] * len(example_list)
        for shard, clauses in shard_results:
            for local_index, global_index in enumerate(buckets[shard]):
                results[global_index] = clauses[local_index]
        return results

    def covered_candidates_batch(
        self,
        clauses: Sequence[object],
        candidates: Sequence[Sequence[object]],
        parallelism: int = 1,
    ) -> List[Set[Row]]:
        """Query-based coverage of candidate head tuples, one set per clause.

        Unlike subsumption coverage this fans out the **clause axis**: a
        compiled query-coverage statement costs roughly the same however
        many candidates sit in the temp table, so splitting the candidates
        would make every shard pay the full per-clause compilation anyway.
        Every worker holds the full instance, so any worker can answer any
        clause against the whole candidate list; merging is just placing
        each clause's bitset back at its input position.
        """
        clause_list = list(clauses)
        candidate_list = [tuple(c) for c in candidates]
        if not clause_list:
            return []
        if not candidate_list:
            return [set() for _ in clause_list]
        self._ensure_ready()

        shard_count = min(len(self._handles), len(clause_list))
        chunks: List[List[int]] = [[] for _ in range(shard_count)]
        for index in range(len(clause_list)):
            chunks[index % shard_count].append(index)
        worker_parallelism = self._worker_parallelism(parallelism)
        tracer = obs_tracer()
        trace_ctx = tracer.inject()

        def run_shard(shard: int) -> Tuple[int, List[int]]:
            with tracer.activate(trace_ctx):
                with tracer.span(
                    "service.shard", shard=shard, kind="query_batch",
                    items=len(chunks[shard]),
                ):
                    sub_clauses = [clause_list[i] for i in chunks[shard]]
                    masks = self._request_with_retry(
                        self._handles[shard],
                        (
                            "query_batch",
                            (sub_clauses, candidate_list, worker_parallelism),
                        ),
                    )
            self._handles[shard]._c_batches.inc()
            return shard, masks

        if shard_count <= 1:
            shard_masks = [run_shard(0)]
        else:
            shard_masks = list(self._executor.map(run_shard, range(shard_count)))

        results: List[Set[Row]] = [set() for _ in clause_list]
        for shard, masks in shard_masks:
            for mask, clause_index in zip(masks, chunks[shard]):
                if not mask:
                    continue
                results[clause_index] = {
                    candidate_list[j]
                    for j in range(len(candidate_list))
                    if (mask >> j) & 1
                }
        self._c_batches_served.inc()
        return results

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    def worker_pids(self) -> List[Optional[int]]:
        return [handle.pid for handle in self._handles]

    def stats(self) -> List[Dict[str, object]]:
        """Per-shard worker statistics (pid, engines, materialized saturations).

        The reload/batch/respawn counters merged in here live on the
        coordinator-side handles, so they survive a worker crash + respawn
        — the respawned worker's own view would restart from zero.
        """
        self._ensure_ready()
        rows = []
        for handle in self._handles:
            row = dict(self._request_with_retry(handle, ("stats", None)))
            row.update(
                shard=handle.index,
                respawns=handle.respawns,
                reloads_full=handle.reloads_full,
                reloads_incremental=handle.reloads_incremental,
                batches=handle._c_batches.value,
            )
            rows.append(row)
        return rows

    def __repr__(self) -> str:
        state = "started" if self._started else "cold"
        return (
            f"EvaluationService({self.shards} shards, {self.strategy!r}, "
            f"{self.transport!r}, {state})"
        )


def main(argv: Optional[Sequence[str]] = None) -> int:
    """``python -m repro.distributed.service --serve HOST:PORT``.

    Runs the **persistent evaluation server**
    (:class:`~repro.distributed.server.ServiceServer`): worker fleets,
    engines, and saturation stores stay warm across any number of learning
    runs; clients connect with ``LearningSession.connect(address)`` and
    register instances under content-hashed handles so repeat runs ship no
    payload.  See ``docs/session.md``.
    """
    import argparse

    from ..server import ServiceServer

    parser = argparse.ArgumentParser(
        description="persistent evaluation server for repro learning sessions"
    )
    parser.add_argument(
        "--serve", metavar="HOST:PORT", required=True,
        help="listen for learning sessions on this address "
             "(port 0 picks a free port, printed on startup)",
    )
    parser.add_argument(
        "--shards", type=int, default=None,
        help="worker processes per registered instance "
             "(default: one per core, capped at 4)",
    )
    parser.add_argument(
        "--strategy", default=DEFAULT_STRATEGY,
        choices=sorted(SHARDING_STRATEGIES),
        help="example-sharding strategy for the worker fleets",
    )
    parser.add_argument(
        "--worker-transport", default="pipe", choices=TRANSPORTS,
        help="transport between the server and its local workers",
    )
    parser.add_argument(
        "--max-instances", type=int, default=32,
        help="registered-instance cap; least-recently-used idle handles "
             "are evicted beyond it",
    )
    parser.add_argument(
        "--auth-token", default=None,
        help="require clients to present this token in their handshake; "
             "every request (shutdown and unregister included) is rejected "
             "with a typed error without it",
    )
    parser.add_argument(
        "--memory-budget-mb", type=float, default=None,
        help="payload-byte budget across all registered instances; "
             "least-recently-used idle handles are evicted beyond it "
             "(default: count cap only)",
    )
    parser.add_argument(
        "--max-queue", type=int, default=64,
        help="per-handle admission cap: requests beyond this many waiters "
             "get a typed ServerBusyError",
    )
    parser.add_argument(
        "--client-quota", type=int, default=8,
        help="per-client cap on requests queued on one handle; beyond it "
             "the client gets a typed QuotaExceededError",
    )
    args = parser.parse_args(argv)
    from ..protocol import parse_address

    # Spans this process records on behalf of clients carry the server label.
    obs_tracer().process = "server"
    host, port = parse_address(args.serve)
    server = ServiceServer(
        host,
        port,
        shards=args.shards,
        strategy=args.strategy,
        transport=args.worker_transport,
        max_instances=args.max_instances,
        auth_token=args.auth_token,
        memory_budget_bytes=(
            None
            if args.memory_budget_mb is None
            else int(args.memory_budget_mb * 1024 * 1024)
        ),
        max_queue=args.max_queue,
        client_quota=args.client_quota,
    )

    # SIGTERM = graceful drain: stop accepting, finish in-flight batches,
    # then exit 0.  serve_forever() returns once the drain completes.
    def _drain_on_sigterm(_signum, _frame):
        server.request_drain()

    try:
        signal.signal(signal.SIGTERM, _drain_on_sigterm)
    except ValueError:
        pass  # not on the main thread (embedded use); SIGTERM stays default

    print(
        f"repro evaluation server pid={os.getpid()} listening on "
        f"{server.address}",
        flush=True,
    )
    try:
        server.serve_forever()
    finally:
        server.shutdown()
    return 0
