"""``python -m repro.distributed.service`` — the persistent server CLI.

A real ``__main__`` module (rather than an ``if __name__`` guard in the
package body): the package is imported by ``repro.distributed.__init__``,
so runpy would otherwise re-execute the module it already imported and
warn about unpredictable behaviour on every server start.
"""

import sys

from . import main

if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    sys.exit(main())
