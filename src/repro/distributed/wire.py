"""Versioned, non-executable wire format for the client/server socket seam.

PR 5's persistent evaluation server shipped every control frame as a pickle,
which means any socket that can reach the server can execute arbitrary bytes
during ``pickle.loads``.  This module replaces that seam with a tagged-JSON
envelope::

    {"v": 1, "kind": "<request kind>", "payload": <tagged value>}

Scalars (``str``/``int``/``float``/``bool``/``None``) pass through as JSON
scalars.  Every container and every domain object becomes a *tagged array*
whose first element names the shape (``"T"`` tuple, ``"L"`` list, ``"S"``
set, ``"F"`` frozenset, ``"D"`` dict, ``"B"`` base64 bytes, plus one tag per
domain value type).  Raw JSON objects appear only as the outer envelope, so a
decoder never has to guess whether a ``dict`` is data or structure.

Decoding is a strict whitelist: unknown tags, malformed arity, or values a
domain constructor rejects raise :class:`WireFormatError` — nothing on this
path ever reaches ``pickle.loads``.  Encoding is deterministic (set members
are ordered by their encoded form) so two structurally-identical payloads
produce identical bytes; the server's batch coalescer keys on that digest.

The trusted in-process pipe/loopback path to shard workers intentionally
keeps the pickle codec (see ``protocol.PickleCodec``): workers are spawned by
the coordinator, and the loopback socket variant is nonce-verified before any
pickle flows.
"""

from __future__ import annotations

import base64
import binascii
import hashlib
import json
from typing import Any, Callable, Dict, List, Tuple

WIRE_VERSION = 1

# Nesting deeper than this is rejected outright.  Legitimate payloads are a
# handful of levels deep (envelope -> tuple -> rows -> tuple); the guard is
# for hostile frames such as ["L",["L",["L", ...]]] * 100k which would
# otherwise turn the recursive decoder into a stack bomb.
MAX_WIRE_DEPTH = 48


class WireFormatError(ValueError):
    """A frame violates the versioned wire format.

    Raised for malformed JSON, unknown tags, bad arity, values a domain
    constructor rejects, or nesting past :data:`MAX_WIRE_DEPTH`.  The type
    name crosses the wire, so clients can match on it.
    """


def _domain_types() -> Dict[type, str]:
    """Map domain value types to their wire tags.

    Imported lazily so ``protocol.py`` (and the worker bootstrap path) never
    pulls the logic/learning packages just to frame a pickle.
    """
    from ..database.constraints import FunctionalDependency, InclusionDependency
    from ..database.delta import Delta
    from ..database.schema import RelationSchema, Schema
    from ..learning.bottom_clause import BottomClauseConfig
    from ..learning.examples import Example
    from ..logic.atoms import Atom
    from ..logic.clauses import HornClause
    from ..logic.terms import Constant, Variable
    from .worker import InstancePayload

    return {
        Variable: "var",
        Constant: "const",
        Atom: "atom",
        HornClause: "clause",
        Example: "example",
        RelationSchema: "relschema",
        Schema: "schema",
        FunctionalDependency: "fd",
        InclusionDependency: "ind",
        BottomClauseConfig: "bcconfig",
        InstancePayload: "instpayload",
        Delta: "delta",
    }


_TYPE_TAGS: Dict[type, str] = {}
_DECODERS: Dict[str, Callable[[List[Any], int], Any]] = {}


def _ensure_tables() -> None:
    if not _TYPE_TAGS:
        _TYPE_TAGS.update(_domain_types())
        _DECODERS.update(_build_decoders())


# ---------------------------------------------------------------------------
# Encoding


def encode_value(value: Any, depth: int = 0) -> Any:
    """Encode ``value`` into the tagged-JSON representation."""
    if depth > MAX_WIRE_DEPTH:
        raise WireFormatError(f"value nests deeper than {MAX_WIRE_DEPTH} levels")
    # bool before int: bool is an int subclass but must stay a JSON bool.
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    kind = type(value)
    if kind is tuple:
        return ["T", *(encode_value(v, depth + 1) for v in value)]
    if kind is list:
        return ["L", *(encode_value(v, depth + 1) for v in value)]
    if kind in (set, frozenset):
        tag = "S" if kind is set else "F"
        encoded = [encode_value(v, depth + 1) for v in value]
        # Deterministic member order: identical sets must encode to
        # identical bytes so coalescing digests are stable across clients.
        encoded.sort(key=lambda item: json.dumps(item, separators=(",", ":")))
        return [tag, *encoded]
    if kind is dict:
        return [
            "D",
            *(
                [encode_value(k, depth + 1), encode_value(v, depth + 1)]
                for k, v in value.items()
            ),
        ]
    if kind is bytes:
        return ["B", base64.b64encode(value).decode("ascii")]
    _ensure_tables()
    tag = _TYPE_TAGS.get(kind)
    if tag is None:
        raise WireFormatError(
            f"type {kind.__name__!r} is not representable on the wire"
        )
    return [tag, *_encode_domain(tag, value, depth + 1)]


def _encode_domain(tag: str, value: Any, depth: int) -> List[Any]:
    enc = lambda v: encode_value(v, depth)  # noqa: E731
    if tag == "var":
        return [value.name]
    if tag == "const":
        return [enc(value.value)]
    if tag == "atom":
        return [value.predicate, enc(list(value.terms))]
    if tag == "clause":
        return [enc(value.head), enc(list(value.body))]
    if tag == "example":
        return [value.target, enc(list(value.values)), value.positive]
    if tag == "relschema":
        return [value.name, enc(list(value.attributes))]
    if tag == "schema":
        return [
            value.name,
            enc(list(value.relations)),
            enc(list(value.functional_dependencies)),
            enc(list(value.inclusion_dependencies)),
        ]
    if tag == "fd":
        return [value.relation, enc(list(value.lhs)), enc(list(value.rhs))]
    if tag == "ind":
        return [
            value.left,
            enc(list(value.left_attrs)),
            value.right,
            enc(list(value.right_attrs)),
            value.with_equality,
        ]
    if tag == "bcconfig":
        return [
            value.max_depth,
            value.max_distinct_variables,
            value.max_literals_per_relation_per_tuple,
            value.max_total_literals,
            value.theory_constant_threshold,
        ]
    if tag == "delta":
        # Delta rows are flat tuples of scalars in practice; reuse the
        # payload row fast path rather than per-cell recursion.
        return [
            [
                op,
                relation,
                [_encode_row(row, depth) for row in rows],
            ]
            for op, relation, rows in value.ops
        ]
    if tag == "instpayload":
        # Rows dominate payload size; encode them with a scalar fast path
        # (a row is a flat tuple of scalars) instead of per-cell recursion.
        rows_obj = {
            name: [_encode_row(row, depth) for row in rows]
            for name, rows in value.rows.items()
        }
        return [
            enc(value.schema),
            [[name, rows] for name, rows in rows_obj.items()],
            value.backend,
            value.pool_size,
        ]
    raise WireFormatError(f"unknown domain tag {tag!r}")  # pragma: no cover


def _encode_row(row: Tuple[Any, ...], depth: int) -> List[Any]:
    out: List[Any] = []
    for cell in row:
        if cell is None or isinstance(cell, (bool, int, float, str)):
            out.append(cell)
        else:
            out.append(["V", encode_value(cell, depth + 1)])
    return out


# ---------------------------------------------------------------------------
# Decoding


def decode_value(obj: Any, depth: int = 0) -> Any:
    """Decode a tagged-JSON value; raise :class:`WireFormatError` if invalid."""
    if depth > MAX_WIRE_DEPTH:
        raise WireFormatError(f"frame nests deeper than {MAX_WIRE_DEPTH} levels")
    if obj is None or isinstance(obj, (bool, int, float, str)):
        return obj
    if isinstance(obj, list):
        if not obj or not isinstance(obj[0], str):
            raise WireFormatError("tagged array must start with a string tag")
        _ensure_tables()
        decoder = _DECODERS.get(obj[0])
        if decoder is None:
            raise WireFormatError(f"unknown wire tag {obj[0]!r}")
        try:
            return decoder(obj[1:], depth + 1)
        except WireFormatError:
            raise
        except (TypeError, ValueError, KeyError, IndexError, AttributeError) as exc:
            raise WireFormatError(f"malformed {obj[0]!r} value: {exc}") from exc
    # Raw JSON objects are reserved for the envelope; inside a payload they
    # are always an error, which keeps data and structure unambiguous.
    raise WireFormatError(f"JSON type {type(obj).__name__!r} is not valid payload")


def _build_decoders() -> Dict[str, Callable[[List[Any], int], Any]]:
    from ..database.constraints import FunctionalDependency, InclusionDependency
    from ..database.delta import Delta
    from ..database.schema import RelationSchema, Schema
    from ..learning.bottom_clause import BottomClauseConfig
    from ..learning.examples import Example
    from ..logic.atoms import Atom
    from ..logic.clauses import HornClause
    from ..logic.terms import Constant, Variable
    from .worker import InstancePayload

    def _arity(items: List[Any], n: int, tag: str) -> List[Any]:
        if len(items) != n:
            raise WireFormatError(f"tag {tag!r} expects {n} fields, got {len(items)}")
        return items

    def _str(value: Any, what: str) -> str:
        if not isinstance(value, str):
            raise WireFormatError(f"{what} must be a string")
        return value

    def dec_tuple(items, depth):
        return tuple(decode_value(v, depth) for v in items)

    def dec_list(items, depth):
        return [decode_value(v, depth) for v in items]

    def dec_set(items, depth):
        return {decode_value(v, depth) for v in items}

    def dec_frozenset(items, depth):
        return frozenset(decode_value(v, depth) for v in items)

    def dec_dict(items, depth):
        out = {}
        for pair in items:
            if not isinstance(pair, list) or len(pair) != 2:
                raise WireFormatError("dict entry must be a [key, value] pair")
            out[decode_value(pair[0], depth)] = decode_value(pair[1], depth)
        return out

    def dec_bytes(items, depth):
        (encoded,) = _arity(items, 1, "B")
        try:
            return base64.b64decode(_str(encoded, "bytes payload"), validate=True)
        except binascii.Error as exc:
            raise WireFormatError(f"invalid base64 bytes: {exc}") from exc

    def dec_var(items, depth):
        (name,) = _arity(items, 1, "var")
        return Variable(_str(name, "variable name"))

    def dec_const(items, depth):
        (value,) = _arity(items, 1, "const")
        return Constant(decode_value(value, depth))

    def dec_atom(items, depth):
        predicate, terms = _arity(items, 2, "atom")
        return Atom(_str(predicate, "predicate"), decode_value(terms, depth))

    def dec_clause(items, depth):
        head, body = _arity(items, 2, "clause")
        return HornClause(decode_value(head, depth), decode_value(body, depth))

    def dec_example(items, depth):
        target, values, positive = _arity(items, 3, "example")
        if not isinstance(positive, bool):
            raise WireFormatError("example polarity must be a bool")
        return Example(
            _str(target, "example target"), decode_value(values, depth), positive
        )

    def dec_relschema(items, depth):
        name, attributes = _arity(items, 2, "relschema")
        return RelationSchema(_str(name, "relation name"), decode_value(attributes, depth))

    def dec_schema(items, depth):
        name, relations, fds, inds = _arity(items, 4, "schema")
        return Schema(
            decode_value(relations, depth),
            functional_dependencies=decode_value(fds, depth),
            inclusion_dependencies=decode_value(inds, depth),
            name=_str(name, "schema name"),
        )

    def dec_fd(items, depth):
        relation, lhs, rhs = _arity(items, 3, "fd")
        return FunctionalDependency(
            _str(relation, "fd relation"),
            decode_value(lhs, depth),
            decode_value(rhs, depth),
        )

    def dec_ind(items, depth):
        left, left_attrs, right, right_attrs, with_equality = _arity(items, 5, "ind")
        if not isinstance(with_equality, bool):
            raise WireFormatError("ind equality flag must be a bool")
        return InclusionDependency(
            _str(left, "ind left"),
            decode_value(left_attrs, depth),
            _str(right, "ind right"),
            decode_value(right_attrs, depth),
            with_equality=with_equality,
        )

    def dec_bcconfig(items, depth):
        fields = _arity(items, 5, "bcconfig")
        for i, field in enumerate(fields):
            optional = i < 2  # max_depth / max_distinct_variables may be None
            if field is None and optional:
                continue
            if not isinstance(field, int) or isinstance(field, bool):
                raise WireFormatError("bcconfig fields must be integers")
        return BottomClauseConfig(*fields)

    def dec_row(cells: List[Any], depth: int) -> Tuple[Any, ...]:
        out = []
        for cell in cells:
            if cell is None or isinstance(cell, (bool, int, float, str)):
                out.append(cell)
            elif isinstance(cell, list) and len(cell) == 2 and cell[0] == "V":
                out.append(decode_value(cell[1], depth))
            else:
                raise WireFormatError("row cell must be a scalar or [\"V\", value]")
        return tuple(out)

    def dec_delta(items, depth):
        ops = []
        for entry in items:
            if not isinstance(entry, list) or len(entry) != 3:
                raise WireFormatError("delta op must be [op, relation, rows]")
            op, relation, encoded_rows = entry
            if op not in ("add", "remove"):
                raise WireFormatError(f"delta op must be 'add' or 'remove', got {op!r}")
            if not isinstance(encoded_rows, list):
                raise WireFormatError("delta rows must be a list")
            rows = [
                dec_row(row, depth) if isinstance(row, list) else _bad_row()
                for row in encoded_rows
            ]
            ops.append((op, _str(relation, "delta relation"), tuple(rows)))
        return Delta(ops)

    def dec_instpayload(items, depth):
        schema, relations, backend, pool_size = _arity(items, 4, "instpayload")
        if backend is not None and not isinstance(backend, str):
            raise WireFormatError("payload backend must be a string or null")
        if pool_size is not None and (
            not isinstance(pool_size, int) or isinstance(pool_size, bool)
        ):
            raise WireFormatError("payload pool_size must be an int or null")
        if not isinstance(relations, list):
            raise WireFormatError("payload relations must be a list")
        rows: Dict[str, List[Tuple[Any, ...]]] = {}
        for entry in relations:
            if not isinstance(entry, list) or len(entry) != 2:
                raise WireFormatError("payload relation entry must be [name, rows]")
            name, encoded_rows = entry
            if not isinstance(encoded_rows, list):
                raise WireFormatError("payload rows must be a list")
            rows[_str(name, "relation name")] = [
                dec_row(row, depth) if isinstance(row, list) else _bad_row()
                for row in encoded_rows
            ]
        return InstancePayload(
            decode_value(schema, depth), rows, backend=backend, pool_size=pool_size
        )

    def _bad_row():
        raise WireFormatError("payload row must be an array of cells")

    return {
        "T": dec_tuple,
        "L": dec_list,
        "S": dec_set,
        "F": dec_frozenset,
        "D": dec_dict,
        "B": dec_bytes,
        "var": dec_var,
        "const": dec_const,
        "atom": dec_atom,
        "clause": dec_clause,
        "example": dec_example,
        "relschema": dec_relschema,
        "schema": dec_schema,
        "fd": dec_fd,
        "ind": dec_ind,
        "bcconfig": dec_bcconfig,
        "instpayload": dec_instpayload,
        "delta": dec_delta,
    }


# ---------------------------------------------------------------------------
# Envelope

#: Envelope keys a trace context may carry.  ``trace_id``/``parent_id``
#: propagate the caller's span context into the peer; ``records`` is the
#: reply direction — finished spans shipped back to the caller.
_TRACE_KEYS = frozenset({"trace_id", "parent_id", "records"})


def _validate_trace(trace: Any) -> Dict[str, Any]:
    """Check a trace envelope field against the observability contract.

    The trace rides *outside* the tagged payload (plain JSON object), so it
    gets its own strict shape check: ids must be strings, records must be a
    list of JSON objects, and nothing else is accepted.  Returns the
    validated dict.
    """
    if not isinstance(trace, dict):
        raise WireFormatError("envelope 'trace' must be a JSON object")
    extra = set(trace) - _TRACE_KEYS
    if extra:
        raise WireFormatError(f"unexpected trace keys: {sorted(extra)!r}")
    for field in ("trace_id", "parent_id"):
        if field in trace and not isinstance(trace[field], str):
            raise WireFormatError(f"trace {field!r} must be a string")
    records = trace.get("records")
    if records is not None:
        if not isinstance(records, list) or not all(
            isinstance(entry, dict) for entry in records
        ):
            raise WireFormatError("trace records must be a list of objects")
    return trace


def dumps(message: Tuple[str, Any]) -> bytes:
    """Encode a message into an envelope frame body.

    ``message`` is ``(kind, payload)`` or ``(kind, payload, trace)`` — the
    optional third element is the observability trace context (span ids on
    requests, finished span records on replies) and travels as a plain JSON
    ``"trace"`` envelope key, outside the tagged payload.  A ``None``/empty
    trace encodes exactly like the two-element form, so untraced requests
    are byte-identical to the pre-trace wire format.
    """
    trace = None
    if isinstance(message, tuple) and len(message) == 3:
        kind, payload, trace = message
        if trace is not None:
            trace = _validate_trace(trace)
    else:
        try:
            kind, payload = message
        except (TypeError, ValueError) as exc:
            raise WireFormatError(
                f"message must be a (kind, payload[, trace]) tuple: {exc}"
            ) from exc
    if not isinstance(kind, str):
        raise WireFormatError("message kind must be a string")
    try:
        envelope = {"v": WIRE_VERSION, "kind": kind, "payload": encode_value(payload)}
        if trace:
            envelope["trace"] = trace
        return json.dumps(envelope, separators=(",", ":")).encode()
    except RecursionError as exc:  # pragma: no cover - MAX_WIRE_DEPTH fires first
        raise WireFormatError("payload nests too deeply to encode") from exc


def loads(data: bytes) -> Tuple[str, Any]:
    """Decode an envelope frame body into ``(kind, payload[, trace])``.

    Never executes embedded bytes: the body must be UTF-8 JSON with the
    ``{"v", "kind", "payload"}`` shape (plus an optional ``"trace"``
    context object), and the payload must decode through the tag whitelist.
    Anything else raises :class:`WireFormatError`.

    Returns the two-element tuple for untraced frames — the overwhelmingly
    common case, and what every pre-trace caller unpacks — and a
    three-element tuple when the peer attached a trace context.
    """
    try:
        envelope = json.loads(data.decode())
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise WireFormatError(f"frame body is not valid JSON: {exc}") from exc
    except RecursionError as exc:
        raise WireFormatError("frame body nests too deeply") from exc
    if not isinstance(envelope, dict):
        raise WireFormatError("frame body must be a JSON object envelope")
    version = envelope.get("v")
    if version != WIRE_VERSION:
        raise WireFormatError(
            f"unsupported wire version {version!r} (server speaks {WIRE_VERSION})"
        )
    kind = envelope.get("kind")
    if not isinstance(kind, str) or not kind:
        raise WireFormatError("envelope 'kind' must be a non-empty string")
    extra = set(envelope) - {"v", "kind", "payload", "trace"}
    if extra:
        raise WireFormatError(f"unexpected envelope keys: {sorted(extra)!r}")
    trace = envelope.get("trace")
    if trace is not None:
        trace = _validate_trace(trace)
    try:
        payload = decode_value(envelope.get("payload"))
    except RecursionError as exc:
        raise WireFormatError("frame payload nests too deeply") from exc
    if trace:
        return kind, payload, trace
    return kind, payload


class JsonWireCodec:
    """Transport codec speaking the versioned tagged-JSON envelope."""

    name = "json-v1"

    @staticmethod
    def encode(message: Tuple[str, Any]) -> bytes:
        return dumps(message)

    @staticmethod
    def decode(data: bytes) -> Tuple[str, Any]:
        return loads(data)


def payload_digest(kind: str, payload: Any) -> str:
    """Stable digest of a request for batch coalescing.

    Two requests with structurally identical payloads digest identically
    because :func:`encode_value` orders set members deterministically.
    """
    return hashlib.sha256(dumps((kind, payload))).hexdigest()
