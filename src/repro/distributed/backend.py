"""The ``sqlite-sharded`` backend: storage here, batched evaluation out there.

:class:`ShardedSQLiteBackend` is a drop-in registry backend
(``DatabaseInstance(schema, backend="sqlite-sharded")``): storage, single
statement evaluation, and the snapshot read pool are inherited unchanged
from :class:`~repro.database.sqlite_backend.PooledSQLiteBackend`.  What
changes is *batched* coverage: the backend lazily owns an
:class:`~repro.distributed.service.EvaluationService` and routes

* ``covered_head_tuples_batch`` (query-based coverage of a candidate set)
  through the service's ``query_batch`` path, and
* subsumption batches (via
  :class:`~repro.learning.coverage.BatchCoverageEngine`, which probes for
  :meth:`coverage_service`) through the ``coverage_batch`` path,

so a generation of candidate clauses is scored by N worker processes in
parallel.  Results are invariant in the shard count, strategy, and
parallelism, and match the other backends — with one narrow exception
inherited from the compiled-vs-Python distinction: workers always decide
subsumption with the exact SQL path (required for shard-count
invariance), while in-process engines fall back to the backtrack-budgeted
Python engine below ``COMPILED_MIN_EXAMPLES`` examples, so a
budget-exhausting clause on a tiny batch can be decided exactly here but
conservatively "uncovered" there (see ``docs/backends.md``).

Mutations keep going to the primary connection; the service watches the
backend's data-version token and reloads the workers before the next batch
whenever relation contents changed.
"""

from __future__ import annotations

import weakref
from typing import List, Optional, Sequence, Set, Tuple

from ..database.delta import Delta
from ..database.schema import Schema
from ..database.sqlite_backend import PooledSQLiteBackend
from ..logic.clauses import HornClause
from .service import TRANSPORTS, EvaluationService, default_shard_count
from .sharding import DEFAULT_STRATEGY, SHARDING_STRATEGIES
from .worker import InstancePayload

Row = Tuple[object, ...]


def _close_service(service: EvaluationService) -> None:
    service.close()


class ShardedSQLiteBackend(PooledSQLiteBackend):
    """Pooled SQLite storage plus a sharded multi-process evaluation service."""

    name = "sqlite-sharded"

    #: Mutation-log caps: beyond this many change records — or this many
    #: total logged rows, whichever trips first — the log's floor advances
    #: (older diffs become impossible) instead of growing unbounded.  The
    #: row cap matters because one ``add_all`` entry holds a full copy of
    #: every inserted row.
    MAX_MUTATION_LOG_ENTRIES = 4096
    MAX_MUTATION_LOG_ROWS = 65536

    def __init__(
        self,
        connection=None,
        pool_size: Optional[int] = None,
        shards: Optional[int] = None,
        strategy: str = DEFAULT_STRATEGY,
        transport: str = "pipe",
        worker_backend: str = "sqlite-pooled",
        worker_pool_size: Optional[int] = None,
    ):
        super().__init__(connection, pool_size)
        if shards is not None and int(shards) < 1:
            raise ValueError(f"need at least one shard, got {shards}")
        self.shards = int(shards) if shards is not None else default_shard_count()
        self.strategy = str(strategy)
        self.transport = str(transport)
        self.worker_backend = str(worker_backend)
        self.worker_pool_size = worker_pool_size
        self._instance_schema: Optional[Schema] = None
        self._service: Optional[EvaluationService] = None
        self._service_finalizer = None
        # Ordered relation-change log backing incremental worker reloads:
        # ``(data_version after the change, Delta)`` entries.  ``_log_floor``
        # is the version up to which changes are NOT in the log — diffs can
        # only be cut for tokens at or above it.
        self._mutation_log: List[Tuple[int, Delta]] = []
        self._log_floor = 0
        self._log_rows = 0
        # Delta-batch seam (DatabaseInstance.transaction): while a batch is
        # open, per-mutation change records accumulate here and are written
        # as ONE coalesced log entry at the end of the batch.
        self._batch_depth = 0
        self._batch_ops: List[Tuple[str, str, Tuple[Row, ...]]] = []
        self._batch_poisoned = False

    # ------------------------------------------------------------------ #
    # Mutation log (incremental worker reloads)
    # ------------------------------------------------------------------ #
    def _bump_data_version(
        self, change: Optional[Tuple[str, str, Tuple[Row, ...]]] = None
    ) -> None:
        super()._bump_data_version()
        if self._batch_depth > 0:
            if change is None:
                self._batch_poisoned = True
            else:
                self._batch_ops.append(change)
            return
        if change is None:
            # A mutation without a change record cannot be replayed; diffs
            # crossing this version must fall back to a full reload.
            self._clear_mutation_log()
            return
        self._append_log_entry(Delta([change]))

    def begin_delta_batch(self) -> None:
        """Start buffering change records (one log entry per batch)."""
        self._batch_depth += 1

    def end_delta_batch(self) -> None:
        """Flush the buffered batch as a single coalesced log entry."""
        if self._batch_depth == 0:
            return
        self._batch_depth -= 1
        if self._batch_depth > 0:
            return
        ops, self._batch_ops = self._batch_ops, []
        poisoned, self._batch_poisoned = self._batch_poisoned, False
        if poisoned:
            self._clear_mutation_log()
            return
        if ops:
            self._append_log_entry(Delta(ops).coalesced())

    def _append_log_entry(self, delta: Delta) -> None:
        if delta.is_empty:
            return
        self._mutation_log.append((self._data_version, delta))
        self._log_rows += delta.row_count
        while self._mutation_log and (
            len(self._mutation_log) > self.MAX_MUTATION_LOG_ENTRIES
            or self._log_rows > self.MAX_MUTATION_LOG_ROWS
        ):
            version, logged = self._mutation_log.pop(0)
            self._log_rows -= logged.row_count
            self._log_floor = version

    def _clear_mutation_log(self) -> None:
        self._mutation_log.clear()
        self._log_rows = 0
        self._log_floor = self._data_version

    def collect_diff(
        self, since_token: Optional[Tuple[int, int]]
    ) -> Optional[Delta]:
        """The ordered :class:`Delta` since a pool-state token, or ``None``.

        ``None`` — ship the full payload instead — when the token predates
        the log floor, the relation set changed (the token's first element),
        or the diff would ship at least as many rows as the payload itself.
        """
        if not since_token:
            return None
        relation_count, version = since_token
        if relation_count != len(self._relations) or version < self._log_floor:
            return None
        combined = Delta()
        for logged_version, delta in self._mutation_log:
            if logged_version > version:
                combined = combined.then(delta)
        payload_rows = sum(len(relation) for relation in self._relations.values())
        if combined.row_count >= payload_rows:
            return None
        return combined

    # ------------------------------------------------------------------ #
    # Wiring
    # ------------------------------------------------------------------ #
    def bind_instance_schema(self, schema: Schema) -> None:
        """Hook called by :class:`~repro.database.instance.DatabaseInstance`.

        Workers rebuild the instance from the payload, and saturation
        construction reads schema constraints (theory-constant inference
        looks at FDs/INDs), so the payload must carry the *real* schema —
        not one reconstructed from bare relation schemas.
        """
        self._instance_schema = schema

    def _payload(self) -> InstancePayload:
        schema = self._instance_schema
        if schema is None:
            # Constraint-free fallback; sufficient for pure query evaluation.
            schema = Schema(
                [relation.schema for relation in self._relations.values()],
                name="sharded-payload",
            )
        rows = {
            name: list(relation.rows)
            for name, relation in self._relations.items()
        }
        # A full payload supersedes every logged change for this backend's
        # (single) service: any worker built from it is current, and
        # stragglers synced to an older token simply fall back to a full
        # reload via the log-floor check.  Clearing here keeps the log from
        # pinning a duplicate of the initial bulk load in memory.
        self._clear_mutation_log()
        return InstancePayload(
            schema,
            rows,
            backend=self.worker_backend,
            pool_size=self.worker_pool_size,
        )

    def configure_sharding(
        self,
        shards: Optional[int] = None,
        strategy: Optional[str] = None,
        transport: Optional[str] = None,
    ) -> None:
        """Re-shape the service (harness/benchmark ``shards=`` knob).

        When the requested topology differs from the current one, a running
        service is shut down and respawned lazily on the next batch.
        Re-applying the current settings is a no-op, so learners that call
        this at the top of every ``learn()`` (e.g. one call per
        cross-validation fold) keep their warm workers and saturation
        stores instead of respawning the fleet each time.
        """
        # Validate everything before touching any state: a typo must not
        # leave the config half-applied or tear down a warm fleet.
        if shards is not None and int(shards) < 1:
            raise ValueError(f"need at least one shard, got {shards}")
        if strategy is not None and strategy not in SHARDING_STRATEGIES:
            raise ValueError(
                f"unknown sharding strategy {strategy!r}; "
                f"available: {list(SHARDING_STRATEGIES)}"
            )
        if transport is not None and transport not in TRANSPORTS:
            raise ValueError(
                f"unknown transport {transport!r}; available: {list(TRANSPORTS)}"
            )
        changed = False
        if shards is not None:
            changed |= self.shards != int(shards)
            self.shards = int(shards)
        if strategy is not None:
            changed |= self.strategy != str(strategy)
            self.strategy = str(strategy)
        if transport is not None:
            changed |= self.transport != str(transport)
            self.transport = str(transport)
        if changed and self._service is not None:
            if self._service_finalizer is not None:
                self._service_finalizer.detach()
                self._service_finalizer = None
            self._service.close()
            self._service = None

    def coverage_service(self) -> EvaluationService:
        """The lazily-started evaluation service behind this backend."""
        if self._service is None:
            # The service must not hold the backend strongly: its callbacks
            # sit in the finalizer registry (via the service), and a bound
            # method would keep the backend reachable forever — the
            # finalizer below could then never fire and every dropped
            # instance would leak its worker fleet.
            backend_ref = weakref.ref(self)

            def payload_fn() -> InstancePayload:
                backend = backend_ref()
                if backend is None:
                    raise RuntimeError(
                        "sharded backend was garbage-collected mid-spawn"
                    )
                return backend._payload()

            def state_token_fn() -> object:
                backend = backend_ref()
                return None if backend is None else backend._pool_state()

            def diff_fn(since_token: object) -> Optional[List[object]]:
                backend = backend_ref()
                return None if backend is None else backend.collect_diff(since_token)

            self._service = EvaluationService(
                payload_fn,
                shards=self.shards,
                strategy=self.strategy,
                transport=self.transport,
                state_token_fn=state_token_fn,
                diff_fn=diff_fn,
            )
            # Workers must not outlive the backend (tests build many
            # instances; daemonized processes still cost memory and pids).
            self._service_finalizer = weakref.finalize(
                self, _close_service, self._service
            )
        return self._service

    def close(self) -> None:
        """Shut down the service (and its workers) and the snapshot pool.

        The primary connection stays open: relations remain readable, and a
        later batch simply respawns the service/pool lazily.
        """
        if self._service_finalizer is not None:
            self._service_finalizer.detach()
            self._service_finalizer = None
        if self._service is not None:
            self._service.close()
            self._service = None
        self.pool.close()

    # ------------------------------------------------------------------ #
    # Batched evaluation (probed by QueryEvaluator)
    # ------------------------------------------------------------------ #
    def covered_head_tuples_batch(
        self,
        clauses: Sequence[HornClause],
        candidates: Sequence[Sequence[object]],
        parallelism: Optional[int] = None,
    ) -> List[Optional[Set[Row]]]:
        """Fan the candidate axis of the batch across the shard workers.

        Workers resolve non-compilable clauses locally (they own full
        instances), so unlike the single-process backends this never returns
        ``None`` fallback markers.
        """
        clause_list = list(clauses)
        if len(clause_list) * len(candidates) == 0:
            return [set() for _ in clause_list]
        service = self.coverage_service()
        covered = service.covered_candidates_batch(
            clause_list, candidates, parallelism=max(1, int(parallelism or 1))
        )
        return list(covered)

    def __repr__(self) -> str:
        started = self._service is not None and self._service._started
        return (
            f"ShardedSQLiteBackend({len(self._relations)} relations, "
            f"shards={self.shards}, strategy={self.strategy!r}, "
            f"transport={self.transport!r}, "
            f"service={'started' if started else 'cold'})"
        )
