"""Clause minimization via θ-reduction (Section 7.5.5).

A body literal ``L`` of clause ``C`` is *redundant* when ``C`` is equivalent
to ``C - {L}``; because removing a literal can only generalize the clause,
``C - {L}`` always subsumes ``C``, so it suffices to check that ``C``
θ-subsumes ``C - {L}``.  Castor minimizes bottom clauses and learned clauses
with this procedure; the paper reports 13–19% bottom-clause size reductions.
"""

from __future__ import annotations

from typing import List, Optional

from .clauses import HornClause
from .subsumption import SubsumptionEngine


def remove_duplicate_literals(clause: HornClause) -> HornClause:
    """Drop exact duplicate body literals, keeping the first occurrence."""
    return clause.without_duplicates()


def minimize_clause(
    clause: HornClause, engine: Optional[SubsumptionEngine] = None
) -> HornClause:
    """Remove syntactically redundant body literals from ``clause``.

    Implements the theta-transformation approximation used by Castor: for
    each literal ``L`` (scanned from the end so that later, more specific
    literals are considered for removal first) check whether the clause with
    ``L`` removed is still subsumed by the original clause — equivalently,
    whether the original clause θ-subsumes the reduced clause, since removal
    only ever generalizes.  The literal is dropped when the reduced clause is
    equivalent to the original.
    """
    engine = engine or SubsumptionEngine()
    current = remove_duplicate_literals(clause)
    index = len(current.body) - 1
    while index >= 0:
        candidate = current.remove_literal_at(index)
        # Removing a literal can break head-connectivity or safety; only keep
        # the removal if the reduced clause is equivalent to the original.
        if candidate.body and engine.equivalent(candidate, current):
            current = candidate
        index -= 1
        if index >= len(current.body):
            index = len(current.body) - 1
    return current


def minimize_definition_clauses(
    clauses: List[HornClause], engine: Optional[SubsumptionEngine] = None
) -> List[HornClause]:
    """Minimize every clause and drop clauses subsumed by another clause.

    The redundancy check across clauses keeps the first (earlier-learned)
    clause of any subsuming pair, matching the covering loop's behaviour of
    preferring clauses learned earlier.
    """
    engine = engine or SubsumptionEngine()
    minimized = [minimize_clause(clause, engine) for clause in clauses]
    kept: List[HornClause] = []
    for clause in minimized:
        if any(engine.subsumes(existing, clause) for existing in kept):
            continue
        kept = [existing for existing in kept if not engine.subsumes(clause, existing)]
        kept.append(clause)
    return kept
