"""Least general generalization (lgg) of clauses — Plotkin's operator.

Golem's relative least general generalization (rlgg, Section 6.3) is the lgg
of two saturations (ground bottom clauses).  The lgg of two terms is a
variable when they differ, the term itself when they are equal; the lgg of
two compatible atoms applies this pointwise; the lgg of two clauses pairs up
compatible body literals (same predicate and arity) in all possible ways.

The size of ``lgg(C1, C2)`` is bounded by ``|C1| * |C2|``, which is exactly
why Golem does not scale (Section 6.3) — the implementation here is faithful
to that behaviour, and callers are expected to cap clause sizes.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from .atoms import Atom
from .clauses import HornClause
from .terms import Term, Variable


class _VariableFactory:
    """Produce one fresh variable per distinct pair of generalized terms."""

    def __init__(self) -> None:
        self._cache: Dict[Tuple[Term, Term], Variable] = {}
        self._counter = 0

    def variable_for(self, left: Term, right: Term) -> Variable:
        key = (left, right)
        existing = self._cache.get(key)
        if existing is not None:
            return existing
        self._counter += 1
        fresh = Variable(f"G{self._counter}")
        self._cache[key] = fresh
        return fresh


def lgg_terms(left: Term, right: Term, factory: _VariableFactory) -> Term:
    """lgg of two terms: the term itself when equal, else a (cached) fresh variable."""
    if left == right:
        return left
    return factory.variable_for(left, right)


def lgg_atoms(left: Atom, right: Atom, factory: _VariableFactory) -> Optional[Atom]:
    """lgg of two atoms; None when they are incompatible (predicate/arity differ)."""
    if left.predicate != right.predicate or left.arity != right.arity:
        return None
    terms = [lgg_terms(a, b, factory) for a, b in zip(left.terms, right.terms)]
    return Atom(left.predicate, terms)


def lgg_clauses(
    left: HornClause, right: HornClause, max_body_literals: Optional[int] = None
) -> Optional[HornClause]:
    """lgg of two Horn clauses.

    Returns None when the heads are incompatible.  The body of the result is
    the set of pairwise lggs of compatible body literals; duplicates are
    removed.  ``max_body_literals`` truncates the result (Golem uses such a
    cap to stay tractable); literals produced earlier — from earlier body
    positions — are preferred, which keeps the operator deterministic.
    """
    factory = _VariableFactory()
    head = lgg_atoms(left.head, right.head, factory)
    if head is None:
        return None
    body: List[Atom] = []
    seen = set()
    for atom_left in left.body:
        for atom_right in right.body:
            generalized = lgg_atoms(atom_left, atom_right, factory)
            if generalized is None or generalized in seen:
                continue
            seen.add(generalized)
            body.append(generalized)
            if max_body_literals is not None and len(body) >= max_body_literals:
                return HornClause(head, body)
    return HornClause(head, body)


def rlgg(
    saturation_left: HornClause,
    saturation_right: HornClause,
    max_body_literals: Optional[int] = None,
) -> Optional[HornClause]:
    """Relative lgg of two saturations (ground bottom clauses).

    Golem computes the rlgg of a pair of positive examples as the lgg of
    their saturations relative to the background database (Theorem 6.4 shows
    this operator itself is schema independent).  The head-connected part of
    the result is returned so that the clause remains evaluable.
    """
    generalized = lgg_clauses(saturation_left, saturation_right, max_body_literals)
    if generalized is None:
        return None
    connected_body = generalized.head_connected_body()
    return HornClause(generalized.head, connected_body)
