"""Horn clauses and Horn definitions.

A :class:`HornClause` is ``head :- body`` where the head is a single positive
atom and the body is an *ordered* sequence of positive atoms (the ordering
matters for ProGolem/Castor's ARMG operator, see Section 6.4 of the paper).
A :class:`HornDefinition` is a set of Horn clauses sharing the same head
predicate — a union of conjunctive queries.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence, Set, Tuple

from .atoms import Atom, collect_constants, collect_variables
from .substitution import Substitution
from .terms import Constant, Variable


class HornClause:
    """A definite Horn clause ``head :- body`` over function-free atoms.

    The clause is treated as an *ordered clause*: the body is a tuple whose
    order is preserved and significant for the bottom-up generalization
    operators.  Equality, however, compares head and the body as a multiset,
    because two clauses that differ only in literal order are logically
    identical for coverage purposes.
    """

    __slots__ = ("head", "body", "_hash")

    def __init__(self, head: Atom, body: Sequence[Atom] = ()):
        if not isinstance(head, Atom):
            raise TypeError("clause head must be an Atom")
        self.head = head
        self.body: Tuple[Atom, ...] = tuple(body)
        for atom in self.body:
            if not isinstance(atom, Atom):
                raise TypeError("clause body must contain Atoms")
        self._hash = hash((self.head, frozenset(self.body)))

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def length(self) -> int:
        """Number of body literals (the paper's notion of clause length)."""
        return len(self.body)

    def variables(self) -> List[Variable]:
        """Distinct variables of the clause, head first, in order of appearance."""
        return collect_variables([self.head, *self.body])

    def body_variables(self) -> List[Variable]:
        """Distinct variables appearing in the body."""
        return collect_variables(self.body)

    def head_variables(self) -> List[Variable]:
        """Distinct variables appearing in the head."""
        return self.head.variables()

    def constants(self) -> List[Constant]:
        """Distinct constants of the clause in order of appearance."""
        return collect_constants([self.head, *self.body])

    def is_ground(self) -> bool:
        """True when the clause contains no variables."""
        return self.head.is_ground() and all(a.is_ground() for a in self.body)

    def is_safe(self) -> bool:
        """True when every head variable also appears in the body (Section 7.3)."""
        body_vars = set(self.body_variables())
        return all(v in body_vars for v in self.head_variables())

    def predicates(self) -> Set[str]:
        """The set of body predicate symbols used by this clause."""
        return {atom.predicate for atom in self.body}

    # ------------------------------------------------------------------ #
    # Structural measures
    # ------------------------------------------------------------------ #
    def variable_depths(self) -> Dict[Variable, int]:
        """Compute the depth of each variable as defined in Section 6.1.

        Head variables have depth 0; a body-only variable ``x`` has depth
        ``min(depth(v) for v in Ux) + 1`` where ``Ux`` ranges over variables
        co-occurring with ``x`` in some body literal.  Variables not connected
        to the head get depth ``len(body)`` (effectively infinite but finite
        for reporting).
        """
        depths: Dict[Variable, int] = {v: 0 for v in self.head_variables()}
        all_vars = set(self.variables())
        # Relaxation loop: depths can only shrink, at most |vars| iterations.
        changed = True
        while changed:
            changed = False
            for atom in self.body:
                atom_vars = atom.variables()
                known = [depths[v] for v in atom_vars if v in depths]
                if not known:
                    continue
                candidate = min(known) + 1
                for var in atom_vars:
                    current = depths.get(var)
                    if current is None or candidate < current:
                        if current is None or candidate < current:
                            depths[var] = min(candidate, current) if current is not None else candidate
                            changed = True
        fallback = len(self.body) + 1
        for var in all_vars:
            depths.setdefault(var, fallback)
        return depths

    def depth(self) -> int:
        """Depth of the clause: maximum literal depth (Section 6.1)."""
        if not self.body:
            return 0
        depths = self.variable_depths()
        literal_depths = []
        for atom in self.body:
            atom_vars = atom.variables()
            if atom_vars:
                literal_depths.append(max(depths[v] for v in atom_vars))
            else:
                literal_depths.append(0)
        return max(literal_depths)

    def is_head_connected(self) -> bool:
        """True when every body literal is connected to the head via shared variables."""
        return len(self.head_connected_body()) == len(self.body)

    def head_connected_body(self) -> List[Atom]:
        """Return the body literals reachable from the head through variable chains.

        Order of the original body is preserved.  Literals with no variables
        at all (fully ground) are considered connected, matching the behaviour
        of bottom-clause construction which only adds literals that mention a
        known constant.
        """
        connected_vars: Set[Variable] = set(self.head_variables())
        indexed_body = list(enumerate(self.body))
        kept_indices: Set[int] = set()
        changed = True
        while changed:
            changed = False
            for index, atom in indexed_body:
                if index in kept_indices:
                    continue
                atom_vars = set(atom.variables())
                if not atom_vars or atom_vars & connected_vars:
                    kept_indices.add(index)
                    connected_vars |= atom_vars
                    changed = True
        return [atom for index, atom in indexed_body if index in kept_indices]

    # ------------------------------------------------------------------ #
    # Transformation
    # ------------------------------------------------------------------ #
    def apply(self, substitution: Substitution) -> "HornClause":
        """Apply a substitution to head and body."""
        return HornClause(
            self.head.apply(substitution), [a.apply(substitution) for a in self.body]
        )

    def with_body(self, body: Sequence[Atom]) -> "HornClause":
        """Return a clause with the same head and a new body."""
        return HornClause(self.head, body)

    def add_literal(self, atom: Atom) -> "HornClause":
        """Return a clause with ``atom`` appended to the body."""
        return HornClause(self.head, [*self.body, atom])

    def remove_literal_at(self, index: int) -> "HornClause":
        """Return a clause with the body literal at ``index`` removed."""
        new_body = list(self.body)
        del new_body[index]
        return HornClause(self.head, new_body)

    def without_duplicates(self) -> "HornClause":
        """Return a clause whose body has duplicate literals removed (order kept)."""
        seen: Set[Atom] = set()
        body = []
        for atom in self.body:
            if atom not in seen:
                seen.add(atom)
                body.append(atom)
        return HornClause(self.head, body)

    def standardize_apart(self, suffix: str) -> "HornClause":
        """Rename every variable by appending ``_suffix``; returns the new clause."""
        renaming: Substitution = {
            var: Variable(f"{var.name}_{suffix}") for var in self.variables()
        }
        return self.apply(renaming)

    def normalize_variables(self, prefix: str = "V") -> "HornClause":
        """Rename variables canonically (V0, V1, ...) in order of appearance.

        Two clauses that are variants of each other (identical up to variable
        renaming, with the same literal order) normalize to equal clauses.
        """
        renaming: Substitution = {}
        for index, var in enumerate(self.variables()):
            renaming[var] = Variable(f"{prefix}{index}")
        return self.apply(renaming)

    # ------------------------------------------------------------------ #
    # Dunder methods
    # ------------------------------------------------------------------ #
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, HornClause):
            return NotImplemented
        return self.head == other.head and sorted(
            map(str, self.body)
        ) == sorted(map(str, other.body))

    def __hash__(self) -> int:
        return self._hash

    def __len__(self) -> int:
        return len(self.body)

    def __repr__(self) -> str:
        return f"HornClause({self.head!r}, {list(self.body)!r})"

    def __str__(self) -> str:
        if not self.body:
            return f"{self.head}."
        body = ", ".join(str(a) for a in self.body)
        return f"{self.head} :- {body}."


class HornDefinition:
    """A Horn definition: a set of Horn clauses with the same head predicate."""

    __slots__ = ("target", "clauses")

    def __init__(self, target: str, clauses: Sequence[HornClause] = ()):
        self.target = str(target)
        self.clauses: List[HornClause] = []
        for clause in clauses:
            self.add(clause)

    def add(self, clause: HornClause) -> None:
        """Add a clause; its head predicate must match the definition target."""
        if clause.head.predicate != self.target:
            raise ValueError(
                f"clause head {clause.head.predicate!r} does not match target {self.target!r}"
            )
        self.clauses.append(clause)

    def is_empty(self) -> bool:
        return not self.clauses

    def is_safe(self) -> bool:
        """True when every clause in the definition is safe."""
        return all(clause.is_safe() for clause in self.clauses)

    def predicates(self) -> Set[str]:
        """Union of body predicates used across all clauses."""
        result: Set[str] = set()
        for clause in self.clauses:
            result |= clause.predicates()
        return result

    def total_length(self) -> int:
        """Total number of body literals across all clauses."""
        return sum(clause.length for clause in self.clauses)

    def normalize(self) -> "HornDefinition":
        """Return a definition with each clause's variables canonically renamed."""
        return HornDefinition(
            self.target, [clause.normalize_variables() for clause in self.clauses]
        )

    def __iter__(self):
        return iter(self.clauses)

    def __len__(self) -> int:
        return len(self.clauses)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, HornDefinition):
            return NotImplemented
        return self.target == other.target and sorted(
            str(c.normalize_variables()) for c in self.clauses
        ) == sorted(str(c.normalize_variables()) for c in other.clauses)

    def __hash__(self) -> int:
        return hash((self.target, len(self.clauses)))

    def __repr__(self) -> str:
        return f"HornDefinition({self.target!r}, {self.clauses!r})"

    def __str__(self) -> str:
        if not self.clauses:
            return f"<empty definition for {self.target}>"
        return "\n".join(str(clause) for clause in self.clauses)


def clause_from_example(example: Atom, body: Iterable[Atom] = ()) -> HornClause:
    """Build a clause whose head is the (usually ground) example atom."""
    return HornClause(example, list(body))
