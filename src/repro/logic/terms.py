"""Terms of the first-order language: variables and constants.

The relational-learning algorithms in this package manipulate Datalog
(function-free Horn) clauses, so a term is either a :class:`Variable` or a
:class:`Constant`.  Both are small immutable value objects that hash and
compare by name/value, which lets higher layers use them freely as members of
sets and dictionary keys (substitutions, variable maps, indexes).
"""

from __future__ import annotations

from typing import Union


class Term:
    """Abstract base class for logical terms."""

    __slots__ = ()

    def is_variable(self) -> bool:
        """Return True when this term is a variable."""
        raise NotImplementedError

    def is_constant(self) -> bool:
        """Return True when this term is a constant."""
        return not self.is_variable()


class Variable(Term):
    """A logical variable, identified by its name.

    Variable names follow the Datalog convention used throughout the paper:
    lowercase single letters or words (``x``, ``y``, ``v12``).  Names compare
    case-sensitively.
    """

    __slots__ = ("name",)

    def __init__(self, name: str):
        if not name:
            raise ValueError("variable name must be a non-empty string")
        self.name = str(name)

    def is_variable(self) -> bool:
        return True

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Variable) and other.name == self.name

    def __hash__(self) -> int:
        return hash(("var", self.name))

    def __repr__(self) -> str:
        return f"Variable({self.name!r})"

    def __str__(self) -> str:
        return self.name


class Constant(Term):
    """A constant (a database value).

    The wrapped ``value`` may be a string, int, or float.  Two constants are
    equal when their wrapped values are equal; ``Constant(1)`` and
    ``Constant("1")`` are therefore distinct.
    """

    __slots__ = ("value",)

    def __init__(self, value: Union[str, int, float]):
        if isinstance(value, (Variable, Constant)):
            raise TypeError("Constant value must be a plain value, not a Term")
        self.value = value

    def is_variable(self) -> bool:
        return False

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Constant) and other.value == self.value

    def __hash__(self) -> int:
        return hash(("const", self.value))

    def __repr__(self) -> str:
        return f"Constant({self.value!r})"

    def __str__(self) -> str:
        return str(self.value)


def make_term(value: Union[Term, str, int, float]) -> Term:
    """Coerce ``value`` into a :class:`Term`.

    Strings that start with an uppercase letter or an underscore followed by
    digits are *not* treated specially: the convention used by the parser is
    that variables are created explicitly.  This helper simply wraps plain
    values as constants and passes terms through unchanged.
    """
    if isinstance(value, Term):
        return value
    return Constant(value)


def fresh_variable_factory(prefix: str = "v"):
    """Return a callable producing fresh, never-repeating variables.

    The factory is used by bottom-clause construction and the lgg operator,
    both of which must invent new variable names that do not collide with any
    existing variable in the clause under construction.
    """
    counter = {"n": 0}

    def fresh() -> Variable:
        counter["n"] += 1
        return Variable(f"{prefix}{counter['n']}")

    return fresh
