"""Atoms and literals.

An *atom* is ``R(u1, ..., un)`` where ``R`` is a relation (predicate) symbol
and each ``ui`` is a term.  A *literal* is an atom or its negation; Horn
clauses in this package only ever contain positive body literals (Datalog
without negation), but the negation flag is kept for completeness and for the
query-based learners that reason about counter-examples.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence, Tuple, Union

from .terms import Constant, Term, Variable, make_term


class Atom:
    """A predicate applied to a tuple of terms: ``R(t1, ..., tn)``."""

    __slots__ = ("predicate", "terms", "_hash")

    def __init__(self, predicate: str, terms: Sequence[Union[Term, str, int, float]]):
        if not predicate:
            raise ValueError("predicate name must be non-empty")
        self.predicate = str(predicate)
        self.terms: Tuple[Term, ...] = tuple(make_term(t) for t in terms)
        self._hash = hash((self.predicate, self.terms))

    @property
    def arity(self) -> int:
        """Number of arguments of the atom."""
        return len(self.terms)

    def variables(self) -> List[Variable]:
        """Return the variables of the atom, in order of first occurrence."""
        seen = []
        for term in self.terms:
            if isinstance(term, Variable) and term not in seen:
                seen.append(term)
        return seen

    def constants(self) -> List[Constant]:
        """Return the constants of the atom, in order of first occurrence."""
        seen = []
        for term in self.terms:
            if isinstance(term, Constant) and term not in seen:
                seen.append(term)
        return seen

    def is_ground(self) -> bool:
        """True when every term is a constant."""
        return all(isinstance(t, Constant) for t in self.terms)

    def apply(self, substitution: Dict[Variable, Term]) -> "Atom":
        """Return a new atom with ``substitution`` applied to every term."""
        new_terms = [
            substitution.get(t, t) if isinstance(t, Variable) else t for t in self.terms
        ]
        return Atom(self.predicate, new_terms)

    def rename_predicate(self, new_predicate: str) -> "Atom":
        """Return a copy of this atom with a different predicate symbol."""
        return Atom(new_predicate, self.terms)

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Atom)
            and other.predicate == self.predicate
            and other.terms == self.terms
        )

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        return f"Atom({self.predicate!r}, {list(self.terms)!r})"

    def __str__(self) -> str:
        args = ", ".join(str(t) for t in self.terms)
        return f"{self.predicate}({args})"


class Literal:
    """An atom with a polarity.

    Positive literals appear in clause heads and (in Datalog) clause bodies.
    Negative literals are used by the query-based oracle machinery when
    representing interpretations.
    """

    __slots__ = ("atom", "positive")

    def __init__(self, atom: Atom, positive: bool = True):
        if not isinstance(atom, Atom):
            raise TypeError("Literal wraps an Atom")
        self.atom = atom
        self.positive = bool(positive)

    @property
    def predicate(self) -> str:
        return self.atom.predicate

    @property
    def terms(self) -> Tuple[Term, ...]:
        return self.atom.terms

    @property
    def arity(self) -> int:
        return self.atom.arity

    def variables(self) -> List[Variable]:
        return self.atom.variables()

    def is_ground(self) -> bool:
        return self.atom.is_ground()

    def negate(self) -> "Literal":
        """Return the literal with opposite polarity."""
        return Literal(self.atom, not self.positive)

    def apply(self, substitution: Dict[Variable, Term]) -> "Literal":
        return Literal(self.atom.apply(substitution), self.positive)

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Literal)
            and other.positive == self.positive
            and other.atom == self.atom
        )

    def __hash__(self) -> int:
        return hash((self.positive, self.atom))

    def __repr__(self) -> str:
        return f"Literal({self.atom!r}, positive={self.positive})"

    def __str__(self) -> str:
        return str(self.atom) if self.positive else f"not {self.atom}"


def atoms_share_variable(a: Atom, b: Atom) -> bool:
    """Return True when atoms ``a`` and ``b`` have at least one common variable."""
    vars_a = set(a.variables())
    if not vars_a:
        return False
    return any(v in vars_a for v in b.variables())


def collect_variables(atoms: Iterable[Atom]) -> List[Variable]:
    """Collect distinct variables from ``atoms`` in order of first occurrence."""
    seen: List[Variable] = []
    for atom in atoms:
        for var in atom.variables():
            if var not in seen:
                seen.append(var)
    return seen


def collect_constants(atoms: Iterable[Atom]) -> List[Constant]:
    """Collect distinct constants from ``atoms`` in order of first occurrence."""
    seen: List[Constant] = []
    for atom in atoms:
        for const in atom.constants():
            if const not in seen:
                seen.append(const)
    return seen
