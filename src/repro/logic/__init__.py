"""First-order logic substrate: terms, atoms, clauses, subsumption, lgg.

This package is the foundation both for the in-memory relational engine
(conjunctive-query evaluation) and for every learner (clause construction,
generalization, coverage testing).
"""

from .atoms import Atom, Literal, atoms_share_variable, collect_constants, collect_variables
from .clauses import HornClause, HornDefinition, clause_from_example
from .lgg import lgg_atoms, lgg_clauses, lgg_terms, rlgg
from .minimize import minimize_clause, minimize_definition_clauses, remove_duplicate_literals
from .parser import (
    ClauseParseError,
    format_clause,
    format_definition,
    parse_atom,
    parse_clause,
    parse_definition,
    parse_term,
)
from .substitution import (
    Substitution,
    apply_substitution,
    compose,
    match_atom_to_ground,
    restrict,
    unify_atoms,
    unify_terms,
)
from .subsumption import SubsumptionEngine, clauses_equivalent, theta_subsumes
from .terms import Constant, Term, Variable, fresh_variable_factory, make_term

__all__ = [
    "Atom",
    "ClauseParseError",
    "Constant",
    "HornClause",
    "HornDefinition",
    "Literal",
    "SubsumptionEngine",
    "Substitution",
    "Term",
    "Variable",
    "apply_substitution",
    "atoms_share_variable",
    "clause_from_example",
    "clauses_equivalent",
    "collect_constants",
    "collect_variables",
    "compose",
    "format_clause",
    "format_definition",
    "fresh_variable_factory",
    "lgg_atoms",
    "lgg_clauses",
    "lgg_terms",
    "make_term",
    "match_atom_to_ground",
    "minimize_clause",
    "minimize_definition_clauses",
    "parse_atom",
    "parse_clause",
    "parse_definition",
    "parse_term",
    "remove_duplicate_literals",
    "restrict",
    "rlgg",
    "theta_subsumes",
    "unify_atoms",
    "unify_terms",
]
