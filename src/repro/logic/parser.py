"""Parsing and pretty-printing of Datalog atoms, clauses, and definitions.

The concrete syntax mirrors what the paper prints::

    advisedBy(x, y) :- publication(z, x), publication(z, y).
    hivActive(c) :- compound(c, a), element_c(a).

Tokens starting with a lowercase letter are treated as *variables* when they
are single letters or letter+digits (``x``, ``y``, ``v12``) and as constants
otherwise — except that anything quoted (``'post_generals'``) or numeric is
always a constant, and an explicit uppercase first letter also denotes a
variable (Prolog convention).  This dual convention keeps both the paper's
examples and Prolog-style clauses parseable.  For programmatic construction
prefer the :mod:`repro.logic.atoms` API; the parser exists for examples,
tests, and human-readable experiment configuration.
"""

from __future__ import annotations

import re
from typing import List, Union

from .atoms import Atom
from .clauses import HornClause, HornDefinition
from .terms import Constant, Term, Variable

_ATOM_RE = re.compile(r"\s*([A-Za-z_][A-Za-z0-9_]*)\s*\(([^)]*)\)\s*")
_VARIABLE_RE = re.compile(r"^[a-z][0-9]*$|^[A-Z][A-Za-z0-9_]*$")
_NUMBER_RE = re.compile(r"^-?[0-9]+(\.[0-9]+)?$")


class ClauseParseError(ValueError):
    """Raised when a clause or atom string cannot be parsed."""


def parse_term(token: str) -> Term:
    """Parse a single term token into a Variable or Constant."""
    token = token.strip()
    if not token:
        raise ClauseParseError("empty term")
    if token.startswith("'") and token.endswith("'") and len(token) >= 2:
        return Constant(token[1:-1])
    if token.startswith('"') and token.endswith('"') and len(token) >= 2:
        return Constant(token[1:-1])
    if _NUMBER_RE.match(token):
        if "." in token:
            return Constant(float(token))
        return Constant(int(token))
    if _VARIABLE_RE.match(token):
        return Variable(token)
    return Constant(token)


def parse_atom(text: str) -> Atom:
    """Parse an atom like ``publication(z, x)``."""
    match = _ATOM_RE.fullmatch(text)
    if not match:
        raise ClauseParseError(f"cannot parse atom: {text!r}")
    predicate, arg_text = match.group(1), match.group(2)
    arg_text = arg_text.strip()
    if not arg_text:
        return Atom(predicate, [])
    terms = [parse_term(token) for token in _split_arguments(arg_text)]
    return Atom(predicate, terms)


def _split_arguments(arg_text: str) -> List[str]:
    """Split an argument list on commas, respecting quoted constants."""
    parts: List[str] = []
    current = []
    in_quote = None
    for char in arg_text:
        if in_quote:
            current.append(char)
            if char == in_quote:
                in_quote = None
        elif char in "'\"":
            in_quote = char
            current.append(char)
        elif char == ",":
            parts.append("".join(current))
            current = []
        else:
            current.append(char)
    if current:
        parts.append("".join(current))
    return [part.strip() for part in parts if part.strip()]


def _split_body_atoms(body_text: str) -> List[str]:
    """Split a clause body into atom strings on commas outside parentheses."""
    atoms: List[str] = []
    depth = 0
    current = []
    for char in body_text:
        if char == "(":
            depth += 1
            current.append(char)
        elif char == ")":
            depth -= 1
            current.append(char)
        elif char == "," and depth == 0:
            atoms.append("".join(current))
            current = []
        else:
            current.append(char)
    if "".join(current).strip():
        atoms.append("".join(current))
    return [a.strip() for a in atoms if a.strip()]


def parse_clause(text: str) -> HornClause:
    """Parse a clause in ``head :- body.`` or ``head <- body.`` or fact form."""
    text = text.strip()
    if text.endswith("."):
        text = text[:-1]
    separator = None
    for candidate in (":-", "<-", "←"):
        if candidate in text:
            separator = candidate
            break
    if separator is None:
        return HornClause(parse_atom(text), [])
    head_text, body_text = text.split(separator, 1)
    head = parse_atom(head_text)
    body_text = body_text.strip()
    if not body_text or body_text.lower() == "true":
        return HornClause(head, [])
    body = [parse_atom(atom_text) for atom_text in _split_body_atoms(body_text)]
    return HornClause(head, body)


def parse_definition(text: str, target: Union[str, None] = None) -> HornDefinition:
    """Parse a multi-line Horn definition; blank lines and ``%`` comments ignored."""
    clauses: List[HornClause] = []
    for line in text.splitlines():
        line = line.strip()
        if not line or line.startswith("%") or line.startswith("#"):
            continue
        clauses.append(parse_clause(line))
    if not clauses:
        raise ClauseParseError("definition contains no clauses")
    inferred_target = target or clauses[0].head.predicate
    return HornDefinition(inferred_target, clauses)


def format_clause(clause: HornClause) -> str:
    """Render a clause in the ``head :- body.`` syntax accepted by the parser."""
    return str(clause)


def format_definition(definition: HornDefinition) -> str:
    """Render a definition, one clause per line."""
    return str(definition)
