"""θ-subsumption engine (the role played by Resumer2 in the paper).

Clause ``C`` θ-subsumes clause ``D`` iff there is a substitution θ such that
``Cθ ⊆ D`` (comparing head to head and body literals to body literals as
sets).  Coverage testing in bottom-up learners reduces to θ-subsumption
between a candidate clause and the *ground bottom clause* of an example
(Section 7.5.3), so this module is the hottest path of the whole library.

The implementation is a backtracking search with:

* per-literal candidate pre-filtering,
* a :class:`GroundClauseIndex` — a hash index over the specific clause's
  literals keyed by predicate and by ``(predicate, position, term)`` — so that
  once some variables are bound, the remaining candidates are retrieved by
  index lookup instead of scanning (this mirrors how the paper's VoltDB-backed
  coverage tests exploit RDBMS indexes),
* dynamic most-constrained-first literal selection (the literal with the
  fewest remaining candidates under the current bindings is matched next),
* a backtrack budget so pathological clauses cannot stall a learning run;
  exhausting the budget conservatively reports "does not subsume".
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set, Tuple

from .atoms import Atom
from .clauses import HornClause
from .substitution import Substitution, match_atom_to_ground
from .terms import Constant, Term, Variable


class GroundClauseIndex:
    """Hash index over the body literals of a (typically ground) clause.

    ``by_predicate`` maps a predicate/arity pair to its literals;
    ``by_position`` maps ``(predicate, arity, position, term)`` to the
    literals whose ``position``-th argument equals ``term``.  Building the
    index once per saturation and reusing it across the many coverage tests
    of a learning run is the optimization that Castor's in-memory-RDBMS
    design point corresponds to.
    """

    __slots__ = ("clause", "by_predicate", "by_position")

    def __init__(self, clause: HornClause):
        self.clause = clause
        self.by_predicate: Dict[Tuple[str, int], List[Atom]] = {}
        self.by_position: Dict[Tuple[str, int, int, Term], List[Atom]] = {}
        for atom in clause.body:
            key = (atom.predicate, atom.arity)
            self.by_predicate.setdefault(key, []).append(atom)
            for position, term in enumerate(atom.terms):
                self.by_position.setdefault(
                    (atom.predicate, atom.arity, position, term), []
                ).append(atom)

    def candidates(self, pattern: Atom, theta: Substitution) -> List[Atom]:
        """Literals that could match ``pattern`` under the current bindings.

        Every pattern argument that is a constant or an already-bound variable
        narrows the candidate set through the positional index; the smallest
        such set is returned (unfiltered arguments are checked later by the
        full match).
        """
        key = (pattern.predicate, pattern.arity)
        best = self.by_predicate.get(key)
        if best is None:
            return []
        for position, term in enumerate(pattern.terms):
            if isinstance(term, Variable):
                term = theta.get(term)
                if term is None:
                    continue
            narrowed = self.by_position.get(
                (pattern.predicate, pattern.arity, position, term)
            )
            if narrowed is None:
                return []
            if len(narrowed) < len(best):
                best = narrowed
        return best


class SubsumptionEngine:
    """Decide θ-subsumption between Horn clauses.

    The engine is stateless with respect to clauses; a single shared instance
    can be used from multiple threads.  ``max_backtracks`` bounds the search.
    """

    def __init__(self, max_backtracks: int = 5_000):
        self.max_backtracks = int(max_backtracks)

    # ------------------------------------------------------------------ #
    # Public API
    # ------------------------------------------------------------------ #
    def subsumes(
        self,
        general: HornClause,
        specific: HornClause,
        index: Optional[GroundClauseIndex] = None,
    ) -> bool:
        """Return True when ``general`` θ-subsumes ``specific``."""
        return self.subsumption_substitution(general, specific, index) is not None

    def subsumption_substitution(
        self,
        general: HornClause,
        specific: HornClause,
        index: Optional[GroundClauseIndex] = None,
    ) -> Optional[Substitution]:
        """Return a witnessing substitution θ with ``general·θ ⊆ specific``.

        The heads must unify by one-way matching (variables of ``general``
        bind to terms of ``specific``); every body literal of ``general`` must
        then map onto some body literal of ``specific``.  A pre-built
        ``index`` of the specific clause may be supplied to amortize indexing
        across repeated tests against the same saturation.
        """
        theta = match_atom_to_ground(general.head, specific.head)
        if theta is None:
            return None
        body = list(general.body)
        if not body:
            return theta
        if index is None or index.clause is not specific:
            index = GroundClauseIndex(specific)
        budget = [self.max_backtracks]
        return self._search(body, index, theta, budget)

    def covers_example(
        self,
        clause: HornClause,
        ground_bottom: HornClause,
        index: Optional[GroundClauseIndex] = None,
    ) -> bool:
        """Coverage test used by bottom-up learners (Section 7.5.3).

        A candidate clause covers example ``e`` iff it θ-subsumes the ground
        bottom clause of ``e``.
        """
        return self.subsumes(clause, ground_bottom, index)

    def equivalent(self, a: HornClause, b: HornClause) -> bool:
        """Clause equivalence under θ-subsumption (both directions)."""
        return self.subsumes(a, b) and self.subsumes(b, a)

    # ------------------------------------------------------------------ #
    # Search internals
    # ------------------------------------------------------------------ #
    def _search(
        self,
        remaining: List[Atom],
        index: GroundClauseIndex,
        theta: Substitution,
        budget: List[int],
    ) -> Optional[Substitution]:
        if not remaining:
            return theta

        # Dynamic most-constrained-first selection: the literal with the
        # fewest candidates under the current bindings is matched next, which
        # both detects dead ends early and keeps the branching factor small.
        best_position = 0
        best_candidates: Optional[List[Atom]] = None
        for position, pattern in enumerate(remaining):
            candidates = index.candidates(pattern, theta)
            if not candidates:
                return None
            if best_candidates is None or len(candidates) < len(best_candidates):
                best_candidates = candidates
                best_position = position
                if len(candidates) == 1:
                    break

        pattern = remaining[best_position]
        rest = remaining[:best_position] + remaining[best_position + 1 :]
        for candidate in best_candidates or []:
            if budget[0] <= 0:
                return None
            budget[0] -= 1
            extended = match_atom_to_ground(pattern, candidate, theta)
            if extended is None:
                continue
            result = self._search(rest, index, extended, budget)
            if result is not None:
                return result
        return None


_DEFAULT_ENGINE = SubsumptionEngine()


def theta_subsumes(general: HornClause, specific: HornClause) -> bool:
    """Module-level convenience wrapper around a shared engine."""
    return _DEFAULT_ENGINE.subsumes(general, specific)


def clauses_equivalent(a: HornClause, b: HornClause) -> bool:
    """True when the clauses θ-subsume each other."""
    return _DEFAULT_ENGINE.equivalent(a, b)
