"""θ-subsumption engine (the role played by Resumer2 in the paper).

Clause ``C`` θ-subsumes clause ``D`` iff there is a substitution θ such that
``Cθ ⊆ D`` (comparing head to head and body literals to body literals as
sets).  Coverage testing in bottom-up learners reduces to θ-subsumption
between a candidate clause and the *ground bottom clause* of an example
(Section 7.5.3), so this module is the hottest path of the whole library.

Two engines are provided:

* :class:`SubsumptionEngine` — the production kernel.  Terms and predicates
  of the specific clause are **interned to integer ids** once per
  :class:`GroundClauseIndex`, so the inner matching loop compares plain ints
  instead of hashing :class:`~repro.logic.terms.Term` objects; bindings live
  in a flat slot array with trail-based undo (no per-candidate substitution
  dict copies); the backtracking search runs on an **explicit stack** (no
  recursion, no ``remaining[:i] + remaining[i+1:]`` list churn); the general
  clause's body is decomposed into **variable-connected components** solved
  independently (a product of small searches instead of one big one); and
  candidate lists are **memoized per (pattern, bound-profile)** within a
  search.  Decisions are identical to the reference engine whenever the
  backtrack budget is not exhausted.
* :class:`ReferenceSubsumptionEngine` — the original recursive,
  Term-at-a-time engine, kept as the executable specification: the property
  suite and the subsumption microbench pit the kernel against it pair by
  pair.

Both engines share :class:`GroundClauseIndex` — a hash index over the
specific clause's literals keyed by predicate and by ``(predicate, position,
term)`` — so that once some variables are bound, the remaining candidates
are retrieved by index lookup instead of scanning (this mirrors how the
paper's VoltDB-backed coverage tests exploit RDBMS indexes).  Both use
dynamic most-constrained-first literal selection and a backtrack budget so
pathological clauses cannot stall a learning run; exhausting the budget
conservatively reports "does not subsume", increments the
``subsumption.budget_exhausted`` registry counter, and warns once per
process.
"""

from __future__ import annotations

import threading
import warnings
from functools import lru_cache
from typing import Dict, List, Optional, Sequence, Tuple

from ..obs import registry as obs_registry
from .atoms import Atom
from .clauses import HornClause
from .substitution import Substitution, match_atom_to_ground
from .terms import Term, Variable


class _EncodedClause:
    """A general clause compiled against one index's intern tables.

    ``patterns[i]`` is ``(pred_id, codes, var_slots)`` for the i-th body
    literal: ``codes`` holds one int per argument — a non-negative interned
    term id for constants, ``-(slot + 1)`` for variables — and ``var_slots``
    the distinct variable slots the literal mentions (the memo profile).
    ``components`` groups body-literal positions into variable-connected
    components; literals in different components share no free variable, so
    the search solves each independently.
    """

    __slots__ = (
        "satisfiable",
        "var_count",
        "head_slot_items",
        "slot_items",
        "patterns",
        "components",
    )

    def __init__(
        self,
        satisfiable: bool,
        var_count: int = 0,
        head_slot_items: Tuple[Tuple[Variable, int], ...] = (),
        slot_items: Tuple[Tuple[Variable, int], ...] = (),
        patterns: Tuple[Tuple[int, Tuple[int, ...], Tuple[int, ...]], ...] = (),
        components: Tuple[Tuple[int, ...], ...] = (),
    ):
        self.satisfiable = satisfiable
        self.var_count = var_count
        self.head_slot_items = head_slot_items
        self.slot_items = slot_items
        self.patterns = patterns
        self.components = components


_UNSATISFIABLE = _EncodedClause(False)


class _ClauseShape:
    """The index-independent part of a general clause's encoding.

    Variable slot numbering, literal patterns, and the variable-connected
    components depend only on the clause itself, so they are computed once
    per clause (module-level LRU) and shared by every index the clause is
    tested against; :meth:`GroundClauseIndex._build_encoding` only has to
    translate predicate keys and constants into that index's intern ids.
    ``patterns[i]`` is ``(pred_key, codes, var_slots)`` with variables coded
    as ``-(slot + 1)`` and constants as non-negative positions into
    ``constants``.
    """

    __slots__ = (
        "var_count",
        "head_slot_count",
        "slot_items",
        "constants",
        "patterns",
        "components",
    )

    def __init__(self, general: HornClause):
        slot_of: Dict[Variable, int] = {}
        for term in general.head.terms:
            if isinstance(term, Variable) and term not in slot_of:
                slot_of[term] = len(slot_of)
        head_slot_count = len(slot_of)
        constant_of: Dict[Term, int] = {}
        constants: List[Term] = []
        patterns: List[Tuple[Tuple[str, int], Tuple[int, ...], Tuple[int, ...]]] = []
        for atom in general.body:
            codes: List[int] = []
            var_slots: List[int] = []
            for term in atom.terms:
                if isinstance(term, Variable):
                    slot = slot_of.get(term)
                    if slot is None:
                        slot = slot_of[term] = len(slot_of)
                    codes.append(-(slot + 1))
                    if slot not in var_slots:
                        var_slots.append(slot)
                else:
                    position = constant_of.get(term)
                    if position is None:
                        position = constant_of[term] = len(constants)
                        constants.append(term)
                    codes.append(position)
            patterns.append(
                ((atom.predicate, len(atom.terms)), tuple(codes), tuple(var_slots))
            )

        # Variable-connected components over *free* (non-head) slots: head
        # slots are bound before the search starts, so sharing one does not
        # couple two literals.
        parent = list(range(len(patterns)))

        def find(i: int) -> int:
            while parent[i] != i:
                parent[i] = parent[parent[i]]
                i = parent[i]
            return i

        slot_owner: Dict[int, int] = {}
        for i, (_, _, var_slots) in enumerate(patterns):
            for slot in var_slots:
                if slot < head_slot_count:
                    continue
                owner = slot_owner.get(slot)
                if owner is None:
                    slot_owner[slot] = i
                else:
                    root_a, root_b = find(i), find(owner)
                    if root_a != root_b:
                        parent[root_a] = root_b
        grouped: Dict[int, List[int]] = {}
        for i in range(len(patterns)):
            grouped.setdefault(find(i), []).append(i)
        self.var_count = len(slot_of)
        self.head_slot_count = head_slot_count
        self.slot_items = tuple(slot_of.items())
        self.constants = tuple(constants)
        self.patterns = tuple(patterns)
        self.components = tuple(
            tuple(group) for group in sorted(grouped.values(), key=lambda g: g[0])
        )


@lru_cache(maxsize=4096)
def _clause_shape(general: HornClause) -> _ClauseShape:
    return _ClauseShape(general)


class GroundClauseIndex:
    """Interned hash index over the body literals of a (typically ground) clause.

    Every term and predicate of the clause is interned to an integer id at
    construction; the positional index maps ``(pred_id, position, term_id)``
    to the literals whose ``position``-th argument is that term, so candidate
    retrieval and matching run entirely on ints.  Building the index once per
    saturation and reusing it across the many coverage tests of a learning
    run is the optimization that Castor's in-memory-RDBMS design point
    corresponds to.

    General clauses are compiled against the index's intern tables by
    :meth:`encode` (cached per clause — repeated tests of the same candidate
    against the same saturation skip re-encoding).  The legacy Term-level
    ``by_predicate`` / ``by_position`` views used by
    :class:`ReferenceSubsumptionEngine` are built lazily on first access.
    """

    __slots__ = (
        "clause",
        "_term_ids",
        "_terms",
        "_pred_ids",
        "_atoms",
        "_atom_args",
        "_atoms_by_pred",
        "_pos_index",
        "_encoded",
        "_encode_lock",
        "_legacy_by_predicate",
        "_legacy_by_position",
    )

    def __init__(self, clause: HornClause):
        self.clause = clause
        term_ids: Dict[Term, int] = {}
        terms: List[Term] = []
        pred_ids: Dict[Tuple[str, int], int] = {}
        atoms: List[Atom] = []
        atom_args: List[Tuple[int, ...]] = []
        atoms_by_pred: Dict[int, List[int]] = {}
        pos_index: Dict[Tuple[int, int, int], List[int]] = {}
        for atom in clause.body:
            pred_key = (atom.predicate, len(atom.terms))
            pred_id = pred_ids.get(pred_key)
            if pred_id is None:
                pred_id = pred_ids[pred_key] = len(pred_ids)
            atom_index = len(atoms)
            atoms.append(atom)
            args = []
            for term in atom.terms:
                term_id = term_ids.get(term)
                if term_id is None:
                    term_id = len(terms)
                    terms.append(term)
                    term_ids[term] = term_id
                args.append(term_id)
            args_tuple = tuple(args)
            atom_args.append(args_tuple)
            atoms_by_pred.setdefault(pred_id, []).append(atom_index)
            for position, term_id in enumerate(args_tuple):
                pos_index.setdefault((pred_id, position, term_id), []).append(
                    atom_index
                )
        # Head terms are interned too: head matching binds general-clause
        # variables to them, and those bindings need stable ids even when the
        # term never occurs in the body (searches through such a binding then
        # fail via a positional-index miss, as they must).
        for term in clause.head.terms:
            if term not in term_ids:
                terms.append(term)
                term_ids[term] = len(terms) - 1
        self._term_ids = term_ids
        self._terms = terms
        self._pred_ids = pred_ids
        self._atoms = atoms
        self._atom_args = atom_args
        self._atoms_by_pred = atoms_by_pred
        self._pos_index = pos_index
        self._encoded: Dict[HornClause, _EncodedClause] = {}
        self._encode_lock = threading.Lock()
        self._legacy_by_predicate: Optional[Dict[Tuple[str, int], List[Atom]]] = None
        self._legacy_by_position: Optional[Dict[Tuple[str, int, int, Term], List[Atom]]] = None

    # ------------------------------------------------------------------ #
    # Interned representation
    # ------------------------------------------------------------------ #
    def intern_id(self, term: Term) -> int:
        """Stable integer id of ``term``, interning it on first sight.

        Terms absent from the indexed clause get fresh ids with no positional
        entries, so lookups through them fail exactly as Term-level matching
        would.
        """
        term_id = self._term_ids.get(term)
        if term_id is None:
            with self._encode_lock:
                term_id = self._term_ids.get(term)
                if term_id is None:
                    self._terms.append(term)
                    term_id = len(self._terms) - 1
                    self._term_ids[term] = term_id
        return term_id

    def encode(self, general: HornClause) -> _EncodedClause:
        """Compile ``general`` against this index's intern tables (cached)."""
        encoded = self._encoded.get(general)
        if encoded is None:
            with self._encode_lock:
                encoded = self._encoded.get(general)
                if encoded is None:
                    encoded = self._build_encoding(general)
                    self._encoded[general] = encoded
        return encoded

    def _build_encoding(self, general: HornClause) -> _EncodedClause:
        """Translate the clause's (cached) shape into this index's ids.

        Runs under ``_encode_lock`` (see :meth:`encode`), which also covers
        the interning of constants absent from the specific clause.
        """
        shape = _clause_shape(general)
        pred_ids = self._pred_ids
        term_ids = self._term_ids
        constant_ids: List[int] = []
        for term in shape.constants:
            term_id = term_ids.get(term)
            if term_id is None:
                # Constant absent from the specific clause; interning keeps
                # the code well-defined while positional lookups through it
                # miss, failing the literal as they must.
                self._terms.append(term)
                term_id = len(self._terms) - 1
                term_ids[term] = term_id
            constant_ids.append(term_id)
        patterns: List[Tuple[int, Tuple[int, ...], Tuple[int, ...]]] = []
        for pred_key, codes, var_slots in shape.patterns:
            pred_id = pred_ids.get(pred_key)
            if pred_id is None:
                # No body literal of the specific clause has this predicate:
                # the general clause can never map onto it.
                return _UNSATISFIABLE
            patterns.append(
                (
                    pred_id,
                    tuple(
                        code if code < 0 else constant_ids[code] for code in codes
                    ),
                    var_slots,
                )
            )
        return _EncodedClause(
            True,
            var_count=shape.var_count,
            head_slot_items=shape.slot_items[: shape.head_slot_count],
            slot_items=shape.slot_items,
            patterns=tuple(patterns),
            components=shape.components,
        )

    # ------------------------------------------------------------------ #
    # Legacy Term-level views (reference engine + compatibility)
    # ------------------------------------------------------------------ #
    def _build_legacy(self) -> None:
        by_predicate: Dict[Tuple[str, int], List[Atom]] = {}
        by_position: Dict[Tuple[str, int, int, Term], List[Atom]] = {}
        for atom in self._atoms:
            key = (atom.predicate, atom.arity)
            by_predicate.setdefault(key, []).append(atom)
            for position, term in enumerate(atom.terms):
                by_position.setdefault(
                    (atom.predicate, atom.arity, position, term), []
                ).append(atom)
        self._legacy_by_predicate = by_predicate
        self._legacy_by_position = by_position

    @property
    def by_predicate(self) -> Dict[Tuple[str, int], List[Atom]]:
        if self._legacy_by_predicate is None:
            self._build_legacy()
        return self._legacy_by_predicate  # type: ignore[return-value]

    @property
    def by_position(self) -> Dict[Tuple[str, int, int, Term], List[Atom]]:
        if self._legacy_by_position is None:
            self._build_legacy()
        return self._legacy_by_position  # type: ignore[return-value]

    def candidates(self, pattern: Atom, theta: Substitution) -> List[Atom]:
        """Literals that could match ``pattern`` under the current bindings.

        Every pattern argument that is a constant or an already-bound variable
        narrows the candidate set through the positional index; the smallest
        such set is returned (unfiltered arguments are checked later by the
        full match).
        """
        key = (pattern.predicate, pattern.arity)
        best = self.by_predicate.get(key)
        if best is None:
            return []
        for position, term in enumerate(pattern.terms):
            if isinstance(term, Variable):
                term = theta.get(term)
                if term is None:
                    continue
            narrowed = self.by_position.get(
                (pattern.predicate, pattern.arity, position, term)
            )
            if narrowed is None:
                return []
            if len(narrowed) < len(best):
                best = narrowed
        return best


# --------------------------------------------------------------------- #
# Budget-exhaustion accounting (shared by both engines)
# --------------------------------------------------------------------- #
_budget_lock = threading.Lock()
_budget_warned = False


def _note_budget_exhausted(max_backtracks: int) -> None:
    """Count (and warn once about) a conservatively-failed search.

    Budget exhaustion silently reporting "does not subsume" is a
    correctness-adjacent event: a learner may discard a clause it should
    have kept.  The ``subsumption.budget_exhausted`` registry series makes
    the silence observable, and the first occurrence per process warns.
    The counter is looked up per event (exhaustion is rare) so test-only
    registry resets never orphan a cached series.
    """
    global _budget_warned
    obs_registry().counter("subsumption.budget_exhausted").inc()
    if not _budget_warned:
        with _budget_lock:
            if not _budget_warned:
                _budget_warned = True
                warnings.warn(
                    "θ-subsumption backtrack budget exhausted "
                    f"(max_backtracks={max_backtracks}); conservatively "
                    "reporting 'does not subsume'.  Further exhaustions are "
                    "counted on the 'subsumption.budget_exhausted' registry "
                    "series without warning again.",
                    RuntimeWarning,
                    stacklevel=4,
                )


def budget_exhausted_count() -> int:
    """Process-wide number of searches that hit the backtrack budget."""
    return obs_registry().counter("subsumption.budget_exhausted").value


class SubsumptionEngine:
    """Decide θ-subsumption between Horn clauses (interned fast kernel).

    The engine is stateless with respect to clauses; a single shared instance
    can be used from multiple threads.  ``max_backtracks`` bounds the search:
    exhausting it conservatively reports "does not subsume" (and bumps the
    ``subsumption.budget_exhausted`` registry counter).
    """

    def __init__(self, max_backtracks: int = 5_000):
        self.max_backtracks = int(max_backtracks)

    # ------------------------------------------------------------------ #
    # Public API
    # ------------------------------------------------------------------ #
    def subsumes(
        self,
        general: HornClause,
        specific: HornClause,
        index: Optional[GroundClauseIndex] = None,
    ) -> bool:
        """Return True when ``general`` θ-subsumes ``specific``."""
        return self.subsumption_substitution(general, specific, index) is not None

    def subsumption_substitution(
        self,
        general: HornClause,
        specific: HornClause,
        index: Optional[GroundClauseIndex] = None,
    ) -> Optional[Substitution]:
        """Return a witnessing substitution θ with ``general·θ ⊆ specific``.

        The heads must unify by one-way matching (variables of ``general``
        bind to terms of ``specific``); every body literal of ``general`` must
        then map onto some body literal of ``specific``.  A pre-built
        ``index`` of the specific clause may be supplied to amortize indexing
        across repeated tests against the same saturation.
        """
        theta = match_atom_to_ground(general.head, specific.head)
        if theta is None:
            return None
        if not general.body:
            return theta
        if index is None or index.clause is not specific:
            index = GroundClauseIndex(specific)
        encoded = index.encode(general)
        if not encoded.satisfiable:
            return None

        bindings = [-1] * encoded.var_count
        for variable, slot in encoded.head_slot_items:
            bindings[slot] = index.intern_id(theta[variable])

        budget = self.max_backtracks
        memo: Dict[Tuple[int, Tuple[int, ...]], Sequence[int]] = {}
        for component in encoded.components:
            matched, budget = _solve_component(
                index, encoded, component, bindings, memo, budget
            )
            if budget < 0:
                _note_budget_exhausted(self.max_backtracks)
                return None
            if not matched:
                return None

        terms = index._terms
        for variable, slot in encoded.slot_items:
            bound = bindings[slot]
            if bound >= 0 and variable not in theta:
                theta[variable] = terms[bound]
        return theta

    def covers_example(
        self,
        clause: HornClause,
        ground_bottom: HornClause,
        index: Optional[GroundClauseIndex] = None,
    ) -> bool:
        """Coverage test used by bottom-up learners (Section 7.5.3).

        A candidate clause covers example ``e`` iff it θ-subsumes the ground
        bottom clause of ``e``.
        """
        return self.subsumes(clause, ground_bottom, index)

    def equivalent(self, a: HornClause, b: HornClause) -> bool:
        """Clause equivalence under θ-subsumption (both directions)."""
        return self.subsumes(a, b) and self.subsumes(b, a)


def _solve_component(
    index: GroundClauseIndex,
    encoded: _EncodedClause,
    component: Tuple[int, ...],
    bindings: List[int],
    memo: Dict[Tuple[int, Tuple[int, ...]], Sequence[int]],
    budget: int,
) -> Tuple[bool, int]:
    """Match one variable-connected component of the general clause's body.

    Explicit-stack backtracking with dynamic most-constrained-first literal
    selection; ``bindings`` is mutated in place (successful matches leave
    their bindings for the witness, failures are rolled back via per-frame
    trails).  Returns ``(matched, remaining_budget)``; a negative remaining
    budget signals exhaustion (the caller reports "does not subsume").
    """
    patterns = encoded.patterns
    atom_args = index._atom_args
    pos_index = index._pos_index
    atoms_by_pred = index._atoms_by_pred

    remaining = list(component)
    # Frames: [atom_position, insert_position, candidates, next_candidate, trail]
    stack: List[list] = []

    # Hot closure: captured values are passed as default args so the loop
    # body runs on fast local loads instead of cell dereferences.
    def select_and_push(
        remaining=remaining,
        stack=stack,
        patterns=patterns,
        bindings=bindings,
        memo=memo,
        memo_get=memo.get,
        atoms_by_pred=atoms_by_pred,
        pos_index_get=pos_index.get,
    ) -> bool:
        """Pick the most-constrained remaining literal; False on a dead end."""
        best_i = 0
        best: Optional[Sequence[int]] = None
        best_len = 0
        for i, atom_position in enumerate(remaining):
            pred_id, codes, var_slots = patterns[atom_position]
            key = (atom_position, tuple([bindings[slot] for slot in var_slots]))
            cands = memo_get(key)
            if cands is None:
                cands = atoms_by_pred[pred_id]
                for position, code in enumerate(codes):
                    if code < 0:
                        value = bindings[-1 - code]
                        if value < 0:
                            continue
                    else:
                        value = code
                    narrowed = pos_index_get((pred_id, position, value))
                    if narrowed is None:
                        cands = ()
                        break
                    if len(narrowed) < len(cands):
                        cands = narrowed
                memo[key] = cands
            if not cands:
                return False
            if best is None or len(cands) < best_len:
                best = cands
                best_len = len(cands)
                best_i = i
                if best_len == 1:
                    break
        stack.append([remaining.pop(best_i), best_i, best, 0, None])
        return True

    if not remaining:
        return True, budget
    if not select_and_push():
        return False, budget

    while stack:
        frame = stack[-1]
        trail = frame[4]
        if trail is not None:
            for slot in trail:
                bindings[slot] = -1
            frame[4] = None
        cands = frame[2]
        next_candidate = frame[3]
        if next_candidate >= len(cands):
            stack.pop()
            remaining.insert(frame[1], frame[0])
            continue
        if budget <= 0:
            return False, -1
        budget -= 1
        frame[3] = next_candidate + 1

        codes = patterns[frame[0]][1]
        args = atom_args[cands[next_candidate]]
        trail = []
        matched = True
        for code, value in zip(codes, args):
            if code < 0:
                slot = -1 - code
                bound = bindings[slot]
                if bound < 0:
                    bindings[slot] = value
                    trail.append(slot)
                elif bound != value:
                    matched = False
                    break
            elif code != value:
                matched = False
                break
        if not matched:
            for slot in trail:
                bindings[slot] = -1
            continue
        if not remaining:
            return True, budget
        frame[4] = trail
        if not select_and_push():
            continue
    return False, budget


class ReferenceSubsumptionEngine:
    """The original recursive, Term-at-a-time engine (executable spec).

    Kept verbatim as the baseline the fast kernel is validated and benched
    against: identical public API, identical verdicts (modulo backtrack
    budget accounting, which both engines report conservatively).
    """

    def __init__(self, max_backtracks: int = 5_000):
        self.max_backtracks = int(max_backtracks)

    def subsumes(
        self,
        general: HornClause,
        specific: HornClause,
        index: Optional[GroundClauseIndex] = None,
    ) -> bool:
        """Return True when ``general`` θ-subsumes ``specific``."""
        return self.subsumption_substitution(general, specific, index) is not None

    def subsumption_substitution(
        self,
        general: HornClause,
        specific: HornClause,
        index: Optional[GroundClauseIndex] = None,
    ) -> Optional[Substitution]:
        """Return a witnessing substitution θ with ``general·θ ⊆ specific``."""
        theta = match_atom_to_ground(general.head, specific.head)
        if theta is None:
            return None
        body = list(general.body)
        if not body:
            return theta
        if index is None or index.clause is not specific:
            index = GroundClauseIndex(specific)
        budget = [self.max_backtracks]
        result = self._search(body, index, theta, budget)
        if result is None and budget[0] <= 0:
            _note_budget_exhausted(self.max_backtracks)
        return result

    def covers_example(
        self,
        clause: HornClause,
        ground_bottom: HornClause,
        index: Optional[GroundClauseIndex] = None,
    ) -> bool:
        """Coverage test used by bottom-up learners (Section 7.5.3)."""
        return self.subsumes(clause, ground_bottom, index)

    def equivalent(self, a: HornClause, b: HornClause) -> bool:
        """Clause equivalence under θ-subsumption (both directions)."""
        return self.subsumes(a, b) and self.subsumes(b, a)

    # ------------------------------------------------------------------ #
    # Search internals
    # ------------------------------------------------------------------ #
    def _search(
        self,
        remaining: List[Atom],
        index: GroundClauseIndex,
        theta: Substitution,
        budget: List[int],
    ) -> Optional[Substitution]:
        if not remaining:
            return theta

        # Dynamic most-constrained-first selection: the literal with the
        # fewest candidates under the current bindings is matched next, which
        # both detects dead ends early and keeps the branching factor small.
        best_position = 0
        best_candidates: Optional[List[Atom]] = None
        for position, pattern in enumerate(remaining):
            candidates = index.candidates(pattern, theta)
            if not candidates:
                return None
            if best_candidates is None or len(candidates) < len(best_candidates):
                best_candidates = candidates
                best_position = position
                if len(candidates) == 1:
                    break

        pattern = remaining[best_position]
        rest = remaining[:best_position] + remaining[best_position + 1 :]
        for candidate in best_candidates or []:
            if budget[0] <= 0:
                return None
            budget[0] -= 1
            extended = match_atom_to_ground(pattern, candidate, theta)
            if extended is None:
                continue
            result = self._search(rest, index, extended, budget)
            if result is not None:
                return result
        return None


_DEFAULT_ENGINE = SubsumptionEngine()


def theta_subsumes(general: HornClause, specific: HornClause) -> bool:
    """Module-level convenience wrapper around a shared engine."""
    return _DEFAULT_ENGINE.subsumes(general, specific)


def clauses_equivalent(a: HornClause, b: HornClause) -> bool:
    """True when the clauses θ-subsume each other."""
    return _DEFAULT_ENGINE.equivalent(a, b)
