"""Substitutions and unification for function-free terms.

A substitution maps variables to terms.  Because the language is
function-free (Datalog), unification is simple: a variable can bind to a
constant or to another variable, and occurs-check is unnecessary.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Sequence, Tuple

from .atoms import Atom
from .terms import Constant, Term, Variable

Substitution = Dict[Variable, Term]


def apply_substitution(term: Term, substitution: Substitution) -> Term:
    """Apply ``substitution`` to a single term (identity for constants)."""
    if isinstance(term, Variable):
        return substitution.get(term, term)
    return term


def compose(first: Substitution, second: Substitution) -> Substitution:
    """Compose two substitutions: ``compose(f, s)(x) == s(f(x))``.

    Bindings of ``second`` for variables not bound by ``first`` are kept.
    """
    result: Substitution = {}
    for var, term in first.items():
        result[var] = apply_substitution(term, second)
    for var, term in second.items():
        if var not in result:
            result[var] = term
    return result


def restrict(substitution: Substitution, variables: Iterable[Variable]) -> Substitution:
    """Restrict a substitution to the given set of variables."""
    wanted = set(variables)
    return {v: t for v, t in substitution.items() if v in wanted}


def is_ground_substitution(substitution: Substitution) -> bool:
    """True when every binding maps to a constant."""
    return all(isinstance(t, Constant) for t in substitution.values())


def unify_terms(
    a: Term, b: Term, substitution: Optional[Substitution] = None
) -> Optional[Substitution]:
    """Unify two terms under an existing substitution.

    Returns the extended substitution, or None when unification fails.  The
    input substitution is not modified.
    """
    theta: Substitution = dict(substitution or {})
    a = apply_substitution(a, theta)
    b = apply_substitution(b, theta)
    if a == b:
        return theta
    if isinstance(a, Variable):
        theta[a] = b
        return theta
    if isinstance(b, Variable):
        theta[b] = a
        return theta
    return None


def unify_term_sequences(
    seq_a: Sequence[Term], seq_b: Sequence[Term], substitution: Optional[Substitution] = None
) -> Optional[Substitution]:
    """Unify two equal-length term sequences, or return None."""
    if len(seq_a) != len(seq_b):
        return None
    theta: Optional[Substitution] = dict(substitution or {})
    for term_a, term_b in zip(seq_a, seq_b):
        theta = unify_terms(term_a, term_b, theta)
        if theta is None:
            return None
    return theta


def unify_atoms(
    a: Atom, b: Atom, substitution: Optional[Substitution] = None
) -> Optional[Substitution]:
    """Unify two atoms (same predicate and arity), or return None."""
    if a.predicate != b.predicate or a.arity != b.arity:
        return None
    return unify_term_sequences(a.terms, b.terms, substitution)


def match_atom_to_ground(
    pattern: Atom, ground: Atom, substitution: Optional[Substitution] = None
) -> Optional[Substitution]:
    """One-way matching: bind variables of ``pattern`` to constants of ``ground``.

    Unlike unification, variables occurring in ``ground`` are not bound; the
    call fails if ``ground`` is not actually ground where needed.  This is the
    operation used by θ-subsumption and by coverage testing.
    """
    if pattern.predicate != ground.predicate or pattern.arity != ground.arity:
        return None
    theta: Substitution = dict(substitution or {})
    for pat_term, ground_term in zip(pattern.terms, ground.terms):
        if isinstance(pat_term, Variable):
            bound = theta.get(pat_term)
            if bound is None:
                theta[pat_term] = ground_term
            elif bound != ground_term:
                return None
        else:
            if pat_term != ground_term:
                return None
    return theta


def variables_to_fresh_copies(
    variables: Iterable[Variable], suffix: str
) -> Tuple[Substitution, Substitution]:
    """Build a renaming of ``variables`` to fresh copies and its inverse.

    Used to standardize clauses apart before unification-based operations.
    """
    renaming: Substitution = {}
    inverse: Substitution = {}
    for var in variables:
        fresh = Variable(f"{var.name}_{suffix}")
        renaming[var] = fresh
        inverse[fresh] = var
    return renaming, inverse
