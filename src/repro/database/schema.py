"""Relation schemas and database schemas.

A :class:`RelationSchema` is a relation symbol with an ordered attribute list
(``sort(R)`` in the paper).  A :class:`Schema` is a pair ``(R, Σ)`` of
relation schemas and constraints (functional and inclusion dependencies).
The schema object also knows how to compute its inclusion classes, which is
the metadata Castor consumes.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from .constraints import (
    FunctionalDependency,
    InclusionClass,
    InclusionDependency,
    compute_inclusion_classes,
)


class RelationSchema:
    """A relation symbol with its ordered attribute names."""

    __slots__ = ("name", "attributes")

    def __init__(self, name: str, attributes: Sequence[str]):
        self.name = str(name)
        self.attributes: Tuple[str, ...] = tuple(str(a) for a in attributes)
        if not self.name:
            raise ValueError("relation name must be non-empty")
        if len(set(self.attributes)) != len(self.attributes):
            raise ValueError(f"duplicate attribute names in relation {self.name!r}")

    @property
    def arity(self) -> int:
        return len(self.attributes)

    def position_of(self, attribute: str) -> int:
        """Index of ``attribute`` within the relation's sort."""
        try:
            return self.attributes.index(attribute)
        except ValueError as exc:
            raise KeyError(
                f"attribute {attribute!r} not in relation {self.name!r}"
            ) from exc

    def positions_of(self, attributes: Sequence[str]) -> Tuple[int, ...]:
        """Indexes of several attributes, in the given order."""
        return tuple(self.position_of(a) for a in attributes)

    def shares_attributes_with(self, other: "RelationSchema") -> Tuple[str, ...]:
        """Attributes common to both relations (in this relation's order)."""
        other_attrs = set(other.attributes)
        return tuple(a for a in self.attributes if a in other_attrs)

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, RelationSchema)
            and other.name == self.name
            and other.attributes == self.attributes
        )

    def __hash__(self) -> int:
        return hash((self.name, self.attributes))

    def __repr__(self) -> str:
        return f"RelationSchema({self.name!r}, {list(self.attributes)!r})"

    def __str__(self) -> str:
        return f"{self.name}({', '.join(self.attributes)})"


class Schema:
    """A database schema: relation schemas plus constraints.

    The schema exposes the metadata the learning algorithms rely on:

    * relation lookup by name (used by bottom-clause construction);
    * the INDs involving each relation (used by Castor);
    * inclusion classes (Definition 7.1), computed lazily and cached.
    """

    def __init__(
        self,
        relations: Iterable[RelationSchema],
        functional_dependencies: Iterable[FunctionalDependency] = (),
        inclusion_dependencies: Iterable[InclusionDependency] = (),
        name: str = "schema",
    ):
        self.name = str(name)
        self._relations: Dict[str, RelationSchema] = {}
        for relation in relations:
            if relation.name in self._relations:
                raise ValueError(f"duplicate relation {relation.name!r} in schema")
            self._relations[relation.name] = relation
        self.functional_dependencies: List[FunctionalDependency] = list(
            functional_dependencies
        )
        self.inclusion_dependencies: List[InclusionDependency] = list(
            inclusion_dependencies
        )
        self._validate_constraints()
        self._inclusion_classes_cache: Dict[bool, List[InclusionClass]] = {}

    # ------------------------------------------------------------------ #
    # Relation access
    # ------------------------------------------------------------------ #
    @property
    def relations(self) -> List[RelationSchema]:
        """All relation schemas, in insertion order."""
        return list(self._relations.values())

    @property
    def relation_names(self) -> List[str]:
        return list(self._relations.keys())

    def relation(self, name: str) -> RelationSchema:
        """Look up a relation schema by name."""
        try:
            return self._relations[name]
        except KeyError as exc:
            raise KeyError(f"relation {name!r} not in schema {self.name!r}") from exc

    def has_relation(self, name: str) -> bool:
        return name in self._relations

    def __contains__(self, name: str) -> bool:
        return self.has_relation(name)

    def __len__(self) -> int:
        return len(self._relations)

    # ------------------------------------------------------------------ #
    # Constraints
    # ------------------------------------------------------------------ #
    def _validate_constraints(self) -> None:
        for fd in self.functional_dependencies:
            relation = self.relation(fd.relation)
            for attribute in (*fd.lhs, *fd.rhs):
                relation.position_of(attribute)
        for ind in self.inclusion_dependencies:
            left, right = self.relation(ind.left), self.relation(ind.right)
            left.positions_of(ind.left_attrs)
            right.positions_of(ind.right_attrs)

    def inds_involving(self, relation: str) -> List[InclusionDependency]:
        """All INDs mentioning ``relation`` on either side."""
        return [ind for ind in self.inclusion_dependencies if ind.involves(relation)]

    def equality_inds(self) -> List[InclusionDependency]:
        """INDs with equality only."""
        return [ind for ind in self.inclusion_dependencies if ind.with_equality]

    def subset_inds(self) -> List[InclusionDependency]:
        """Subset-form (general) INDs only."""
        return [ind for ind in self.inclusion_dependencies if not ind.with_equality]

    def inclusion_classes(self, include_subset_inds: bool = False) -> List[InclusionClass]:
        """Inclusion classes of the schema (Definition 7.1 / Section 7.4)."""
        cached = self._inclusion_classes_cache.get(include_subset_inds)
        if cached is None:
            cached = compute_inclusion_classes(
                self.relation_names,
                self.inclusion_dependencies,
                include_subset_inds=include_subset_inds,
            )
            self._inclusion_classes_cache[include_subset_inds] = cached
        return cached

    def inclusion_class_of(
        self, relation: str, include_subset_inds: bool = False
    ) -> Optional[InclusionClass]:
        """The inclusion class containing ``relation`` (None for singletons)."""
        for inclusion_class in self.inclusion_classes(include_subset_inds):
            if inclusion_class.contains(relation) and len(inclusion_class) > 1:
                return inclusion_class
        return None

    # ------------------------------------------------------------------ #
    # Construction helpers
    # ------------------------------------------------------------------ #
    def with_constraints(
        self,
        functional_dependencies: Optional[Iterable[FunctionalDependency]] = None,
        inclusion_dependencies: Optional[Iterable[InclusionDependency]] = None,
        name: Optional[str] = None,
    ) -> "Schema":
        """Return a copy of this schema with different constraint sets."""
        return Schema(
            self.relations,
            functional_dependencies
            if functional_dependencies is not None
            else self.functional_dependencies,
            inclusion_dependencies
            if inclusion_dependencies is not None
            else self.inclusion_dependencies,
            name=name or self.name,
        )

    def with_subset_inds_only(self, name: Optional[str] = None) -> "Schema":
        """Return a copy where every IND with equality is downgraded to subset form.

        Used by the Table 12 experiment (general decomposition/composition).
        """
        downgraded = [ind.as_subset() for ind in self.inclusion_dependencies]
        return self.with_constraints(
            inclusion_dependencies=downgraded, name=name or f"{self.name}-subset-inds"
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Schema):
            return NotImplemented
        return (
            set(self.relations) == set(other.relations)
            and set(self.functional_dependencies) == set(other.functional_dependencies)
            and set(self.inclusion_dependencies) == set(other.inclusion_dependencies)
        )

    def __repr__(self) -> str:
        return f"Schema({self.name!r}, {len(self)} relations)"

    def __str__(self) -> str:
        lines = [f"schema {self.name}:"]
        lines.extend(f"  {relation}" for relation in self.relations)
        if self.functional_dependencies:
            lines.append("  FDs:")
            lines.extend(f"    {fd}" for fd in self.functional_dependencies)
        if self.inclusion_dependencies:
            lines.append("  INDs:")
            lines.extend(f"    {ind}" for ind in self.inclusion_dependencies)
        return "\n".join(lines)
