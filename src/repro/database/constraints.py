"""Schema constraints: functional dependencies and inclusion dependencies.

Inclusion dependencies (INDs) are the constraint class Castor integrates into
learning.  An IND ``R[X] ⊆ S[Y]`` states that the projection of ``R`` on
attributes ``X`` is contained in the projection of ``S`` on ``Y``; when the
containment holds in both directions the paper writes ``R[X] = S[Y]`` and
calls it an *IND with equality*.  Inclusion classes (Definition 7.1) group
relations connected by INDs with equality over their shared attributes; they
drive Castor's bottom-clause construction, ARMG, and negative reduction.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Sequence, Set, Tuple


class FunctionalDependency:
    """A functional dependency ``relation: lhs -> rhs``."""

    __slots__ = ("relation", "lhs", "rhs")

    def __init__(self, relation: str, lhs: Sequence[str], rhs: Sequence[str]):
        self.relation = str(relation)
        self.lhs: Tuple[str, ...] = tuple(lhs)
        self.rhs: Tuple[str, ...] = tuple(rhs)
        if not self.lhs or not self.rhs:
            raise ValueError("functional dependency needs non-empty sides")

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, FunctionalDependency)
            and other.relation == self.relation
            and other.lhs == self.lhs
            and other.rhs == self.rhs
        )

    def __hash__(self) -> int:
        return hash((self.relation, self.lhs, self.rhs))

    def __repr__(self) -> str:
        return f"FunctionalDependency({self.relation!r}, {self.lhs!r}, {self.rhs!r})"

    def __str__(self) -> str:
        return f"{self.relation}: {','.join(self.lhs)} -> {','.join(self.rhs)}"


class InclusionDependency:
    """An inclusion dependency ``left[left_attrs] ⊆ right[right_attrs]``.

    ``with_equality=True`` marks the paper's IND-with-equality form
    ``left[X] = right[Y]`` (both containments hold).
    """

    __slots__ = ("left", "left_attrs", "right", "right_attrs", "with_equality")

    def __init__(
        self,
        left: str,
        left_attrs: Sequence[str],
        right: str,
        right_attrs: Sequence[str],
        with_equality: bool = False,
    ):
        self.left = str(left)
        self.right = str(right)
        self.left_attrs: Tuple[str, ...] = tuple(left_attrs)
        self.right_attrs: Tuple[str, ...] = tuple(right_attrs)
        self.with_equality = bool(with_equality)
        if len(self.left_attrs) != len(self.right_attrs):
            raise ValueError("IND attribute lists must have equal length")
        if not self.left_attrs:
            raise ValueError("IND needs at least one attribute")

    # ------------------------------------------------------------------ #
    def reversed(self) -> "InclusionDependency":
        """The IND with left and right swapped (same equality flag)."""
        return InclusionDependency(
            self.right, self.right_attrs, self.left, self.left_attrs, self.with_equality
        )

    def involves(self, relation: str) -> bool:
        """True when ``relation`` appears on either side."""
        return relation in (self.left, self.right)

    def other_side(self, relation: str) -> Tuple[str, Tuple[str, ...], Tuple[str, ...]]:
        """Given one side's relation name, return (other relation, this side's attrs, other side's attrs)."""
        if relation == self.left:
            return self.right, self.left_attrs, self.right_attrs
        if relation == self.right:
            return self.left, self.right_attrs, self.left_attrs
        raise ValueError(f"relation {relation!r} not part of this IND")

    def as_subset(self) -> "InclusionDependency":
        """Return a copy with the equality flag cleared (general/subset form)."""
        return InclusionDependency(
            self.left, self.left_attrs, self.right, self.right_attrs, with_equality=False
        )

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, InclusionDependency)
            and other.left == self.left
            and other.right == self.right
            and other.left_attrs == self.left_attrs
            and other.right_attrs == self.right_attrs
            and other.with_equality == self.with_equality
        )

    def __hash__(self) -> int:
        return hash(
            (self.left, self.left_attrs, self.right, self.right_attrs, self.with_equality)
        )

    def __repr__(self) -> str:
        op = "=" if self.with_equality else "⊆"
        return (
            f"InclusionDependency({self.left}[{','.join(self.left_attrs)}] {op} "
            f"{self.right}[{','.join(self.right_attrs)}])"
        )

    def __str__(self) -> str:
        op = "=" if self.with_equality else "<="
        return (
            f"{self.left}[{','.join(self.left_attrs)}] {op} "
            f"{self.right}[{','.join(self.right_attrs)}]"
        )


class InclusionClass:
    """A maximal set of relations connected by INDs with equality (Definition 7.1).

    The class stores the member relation names and the connecting INDs so
    Castor can walk from a tuple of one member to the joining tuples of the
    other members during bottom-clause construction.
    """

    __slots__ = ("members", "inds")

    def __init__(self, members: Iterable[str], inds: Iterable[InclusionDependency]):
        self.members: FrozenSet[str] = frozenset(members)
        self.inds: Tuple[InclusionDependency, ...] = tuple(inds)

    def contains(self, relation: str) -> bool:
        return relation in self.members

    def inds_for(self, relation: str) -> List[InclusionDependency]:
        """INDs of this class that involve ``relation``."""
        return [ind for ind in self.inds if ind.involves(relation)]

    def __eq__(self, other: object) -> bool:
        return isinstance(other, InclusionClass) and other.members == self.members

    def __hash__(self) -> int:
        return hash(self.members)

    def __repr__(self) -> str:
        return f"InclusionClass({sorted(self.members)!r})"

    def __len__(self) -> int:
        return len(self.members)


def compute_inclusion_classes(
    relations: Iterable[str],
    inds: Iterable[InclusionDependency],
    include_subset_inds: bool = False,
) -> List[InclusionClass]:
    """Partition relations into inclusion classes.

    By default only INDs *with equality* connect relations (Definition 7.1).
    With ``include_subset_inds=True`` subset-form INDs connect as well — this
    is the extension of Section 7.4 used for general decomposition/
    composition.  Relations not connected to any other relation form
    singleton classes with no INDs.
    """
    relation_list = list(dict.fromkeys(relations))
    parent: Dict[str, str] = {name: name for name in relation_list}

    def find(name: str) -> str:
        while parent[name] != name:
            parent[name] = parent[parent[name]]
            name = parent[name]
        return name

    def union(a: str, b: str) -> None:
        root_a, root_b = find(a), find(b)
        if root_a != root_b:
            parent[root_b] = root_a

    usable_inds: List[InclusionDependency] = []
    for ind in inds:
        if not ind.with_equality and not include_subset_inds:
            continue
        if ind.left not in parent or ind.right not in parent:
            continue
        usable_inds.append(ind)
        union(ind.left, ind.right)

    groups: Dict[str, Set[str]] = {}
    for name in relation_list:
        groups.setdefault(find(name), set()).add(name)

    classes: List[InclusionClass] = []
    for members in groups.values():
        class_inds = [
            ind for ind in usable_inds if ind.left in members and ind.right in members
        ]
        classes.append(InclusionClass(members, class_inds))
    classes.sort(key=lambda c: sorted(c.members))
    return classes


def inds_are_cyclic(inds: Sequence[InclusionDependency]) -> bool:
    """Detect cyclic INDs with equality (Definition 7.3).

    A set of INDs with equality is cyclic when a sequence of INDs returns to
    the starting relation while switching join attributes along the way.  We
    detect this by building an undirected multigraph whose edges are labeled
    by the join attribute sets and looking for a cycle that uses at least two
    distinct labels — which is the situation that would force Castor to scan
    many tuples (Section 7.1).
    """
    edges: List[Tuple[str, str, FrozenSet[str]]] = []
    for ind in inds:
        if not ind.with_equality:
            continue
        edges.append((ind.left, ind.right, frozenset(ind.left_attrs)))

    adjacency: Dict[str, List[Tuple[str, FrozenSet[str], int]]] = {}
    for index, (left, right, label) in enumerate(edges):
        adjacency.setdefault(left, []).append((right, label, index))
        adjacency.setdefault(right, []).append((left, label, index))

    visited: Set[str] = set()
    for start in adjacency:
        if start in visited:
            continue
        # DFS keeping the edge we arrived by; a back edge to an ancestor forms
        # a cycle, which is "cyclic" in the paper's sense when labels differ.
        stack: List[Tuple[str, int, List[FrozenSet[str]]]] = [(start, -1, [])]
        ancestors: Dict[str, List[FrozenSet[str]]] = {}
        while stack:
            node, via_edge, labels = stack.pop()
            if node in ancestors:
                cycle_labels = set(labels) | set(ancestors[node])
                if len(cycle_labels) > 1:
                    return True
                continue
            ancestors[node] = labels
            visited.add(node)
            for neighbor, label, edge_index in adjacency.get(node, []):
                if edge_index == via_edge:
                    continue
                stack.append((neighbor, edge_index, labels + [label]))
    return False
