"""Pluggable storage/evaluation backends for database instances.

The paper's Castor gets its performance from delegating storage and the hot
evaluation loops (bottom-clause lookups, coverage queries) to an in-memory
RDBMS (VoltDB, Section 7).  This module defines the seam that makes the
substrate swappable:

* :class:`RelationBackend` — the per-relation storage interface (insert,
  delete, indexed lookup by value and by ``(position, value)``, projection);
* :class:`Backend` — the per-instance factory that creates relation stores
  and may additionally expose *set-at-a-time* query evaluation (see
  :mod:`repro.database.sqlite_backend`);
* a name registry so callers can select a backend with a plain string
  (``"memory"``, ``"sqlite"``, ``"sqlite-pooled"``, or the multi-process
  ``"sqlite-sharded"``), e.g.
  ``DatabaseInstance(schema, backend="sqlite")`` or an experiment-harness
  ``--backend`` knob.

The dict-based :class:`~repro.database.instance.RelationInstance` is the
``memory`` backend's relation store; it remains the default.
"""

from __future__ import annotations

import warnings
from typing import (
    Any,
    Callable,
    Dict,
    Iterable,
    Iterator,
    Optional,
    Protocol,
    Sequence,
    Set,
    Tuple,
    Union,
    runtime_checkable,
)

from .schema import RelationSchema

Row = Tuple[object, ...]


@runtime_checkable
class RelationBackend(Protocol):
    """Storage interface one relation's extension must provide.

    Implementations hold a set of positional tuples and answer the indexed
    lookups bottom-clause construction and join evaluation rely on.
    """

    schema: RelationSchema

    def add(self, row: Sequence[object]) -> None:
        """Insert a tuple; exact duplicates are ignored."""
        ...

    def add_all(self, rows: Iterable[Sequence[object]]) -> None:
        ...

    def remove(self, row: Sequence[object]) -> None:
        """Delete a tuple; raises KeyError if absent."""
        ...

    @property
    def rows(self) -> Set[Row]:
        ...

    def tuples_containing(self, value: object) -> Set[Row]:
        """All tuples mentioning ``value`` in any column."""
        ...

    def tuples_with(self, position: int, value: object) -> Set[Row]:
        """All tuples with ``value`` in column ``position``."""
        ...

    def tuples_matching(self, bindings: Dict[int, object]) -> Set[Row]:
        """Tuples matching all ``position -> value`` bindings."""
        ...

    def project(self, attributes: Sequence[str]) -> Set[Row]:
        ...

    def distinct_values(self, attribute: str) -> Set[object]:
        ...

    def __len__(self) -> int:
        ...

    def __iter__(self) -> Iterator[Row]:
        ...

    def __contains__(self, row: Sequence[object]) -> bool:
        ...


class Backend(Protocol):
    """Factory for relation stores, one instance per :class:`DatabaseInstance`.

    A backend may additionally support *compiled* set-at-a-time query
    evaluation by setting ``supports_compiled_queries = True`` and providing
    the hooks :class:`~repro.database.query.QueryEvaluator` probes for
    (``satisfiable``, ``count_bindings``, ``head_tuples``,
    ``covered_head_tuples``, ``iter_bindings``).  Backends without the flag
    are evaluated through the generic tuple-at-a-time backtracking join.

    A backend may also support *saturation queries* — the frontier expansion
    step of bottom-clause construction — by setting
    ``supports_saturation_queries = True`` and providing
    ``neighbors_of_batch(values)``, which answers "which tuples (of any
    relation) mention any of these values" for one whole frontier in a
    single set-at-a-time call (the stored-procedure analogue of Section
    7.5.2).  Backends without the capability are served by the generic
    per-relation loop in
    :meth:`~repro.database.instance.DatabaseInstance.neighbors_of_batch`.
    """

    name: str
    supports_compiled_queries: bool
    supports_saturation_queries: bool
    #: True when the backend tolerates reads from multiple threads at once
    #: (each read on its own connection, or no connections at all).  The
    #: learners consult this before overlapping phases — e.g. prefetching
    #: saturation materialization on a worker thread while the main thread
    #: keeps querying.  The plain single-connection SQLite backend is NOT
    #: concurrent-read-safe; the memory, pooled, and sharded backends are.
    supports_concurrent_reads: bool

    def make_relation(self, schema: RelationSchema) -> RelationBackend:
        """Create the (empty) store for one relation of the instance."""
        ...

    def neighbors_of_batch(
        self, values: Sequence[object]
    ) -> Dict[object, list]:
        """``value -> [(relation name, tuple)]`` for every requested value.

        Only meaningful when ``supports_saturation_queries``; the lists
        contain every tuple mentioning the value in any column, in no
        particular order (callers that need determinism sort).
        """
        ...


class MemoryBackend:
    """The default backend: hash-indexed Python sets (one per relation).

    On top of the per-relation indexes the backend maintains one
    *cross-relation* ``value -> {(relation, tuple)}`` index, kept current by
    the relation stores' mutation callbacks, so a saturation frontier lookup
    is a single dict hit per value instead of a scan over all relations.
    """

    name = "memory"
    supports_compiled_queries = False
    supports_saturation_queries = True
    supports_concurrent_reads = True

    def __init__(self) -> None:
        self._relations: Dict[str, "RelationBackend"] = {}
        self._by_value: Dict[object, Set[Tuple[str, Row]]] = {}
        self._bound = False
        # Bumped on every effective insert/delete; cheap contents-version
        # token (mirrors the SQLite family's data version) so caches keyed
        # on an instance can notice mutations.
        self.data_version = 0

    def bind_instance_schema(self, schema: Any) -> None:
        """Hook called by :class:`~repro.database.instance.DatabaseInstance`
        once its relations exist.  The backend is stateful now (the
        cross-relation index), so a second instance must not share it —
        even with disjoint relation names, its tuples would leak into the
        first instance's value index."""
        del schema
        if self._bound:
            raise ValueError(
                "a MemoryBackend object serves exactly one DatabaseInstance"
            )
        self._bound = True

    def make_relation(self, schema: RelationSchema) -> RelationBackend:
        from .instance import RelationInstance

        if self._bound or schema.name in self._relations:
            raise ValueError(
                f"cannot add relation {schema.name!r}: a MemoryBackend "
                "object serves exactly one DatabaseInstance"
            )
        name = schema.name

        def on_change(row: Row, added: bool) -> None:
            self.data_version += 1
            for value in set(row):
                entries = self._by_value.setdefault(value, set())
                if added:
                    entries.add((name, row))
                else:
                    entries.discard((name, row))
                    if not entries:
                        del self._by_value[value]

        relation = RelationInstance(schema, on_change=on_change)
        self._relations[name] = relation
        return relation

    def neighbors_of(self, value: object) -> list:
        """All ``(relation, tuple)`` pairs mentioning ``value`` — one dict hit."""
        return list(self._by_value.get(value, ()))

    def neighbors_of_batch(
        self, values: Sequence[object]
    ) -> Dict[object, list]:
        """Frontier expansion from the cross-relation index (no relation scan)."""
        return {value: list(self._by_value.get(value, ())) for value in values}


BackendFactory = Callable[[], Backend]

_REGISTRY: Dict[str, BackendFactory] = {}


def register_backend(name: str, factory: BackendFactory) -> None:
    """Register a backend factory under a selector name."""
    _REGISTRY[str(name)] = factory


def backend_names() -> Tuple[str, ...]:
    """Names accepted by :func:`create_backend` (and ``--backend`` knobs)."""
    return tuple(sorted(_REGISTRY))


def create_backend(backend: Union[str, Backend, None]) -> Backend:
    """Resolve a backend selector into a fresh backend object.

    Accepts ``None`` (the default memory backend), a registered name, or an
    already-constructed backend object (returned as-is — note a backend
    object serves exactly one :class:`DatabaseInstance`; instances never
    share relation stores).
    """
    if backend is None:
        backend = "memory"
    if not isinstance(backend, str):
        return backend
    try:
        factory = _REGISTRY[backend]
    except KeyError as exc:
        raise ValueError(
            f"unknown backend {backend!r}; available: {list(backend_names())}"
        ) from exc
    return factory()


# Best-effort knobs stay best-effort across the whole stack, but silently
# ignoring an explicit setting hides typos and wasted configuration — every
# layer (this registry, the session config, the distributed client) says so
# once per distinct situation through this shared registry.
_WARNED: Set[str] = set()


def warn_once(message: str, stacklevel: int = 3) -> None:
    """Emit ``message`` as a RuntimeWarning once per process."""
    if message in _WARNED:
        return
    _WARNED.add(message)
    warnings.warn(message, RuntimeWarning, stacklevel=stacklevel)


def configure_backend_sharding(backend: Backend, shards: Optional[int]) -> bool:
    """Best-effort ``shards`` knob, shared by learners/harness/benchmarks.

    Configures the worker count on backends that expose a sharded
    evaluation service (``configure_sharding``).  An explicit ``shards`` on
    a backend without one warns once per backend name — never silently
    ignored, never an error (the knob only moves work, results are
    identical).  Returns whether the setting was applied.
    """
    if shards is None:
        return True
    configure = getattr(backend, "configure_sharding", None)
    if configure is None:
        warn_once(
            f"backend {getattr(backend, 'name', '?')!r} has no sharded "
            f"evaluation service; ignoring shards={shards}"
        )
        return False
    configure(shards=shards)
    return True


def _sqlite_factory() -> Backend:
    from .sqlite_backend import SQLiteBackend

    return SQLiteBackend()


def _sqlite_pooled_factory() -> Backend:
    from .sqlite_backend import PooledSQLiteBackend

    return PooledSQLiteBackend()


def _sqlite_sharded_factory() -> Backend:
    from ..distributed.backend import ShardedSQLiteBackend

    return ShardedSQLiteBackend()


def _sqlite_remote_factory() -> Backend:
    # Unconfigured until ``configure_remote``/``LearningSession.connect``
    # binds it to a persistent evaluation server; storage works regardless.
    from ..distributed.client import RemoteBackend

    return RemoteBackend()


register_backend("memory", MemoryBackend)
register_backend("sqlite", _sqlite_factory)
register_backend("sqlite-pooled", _sqlite_pooled_factory)
register_backend("sqlite-sharded", _sqlite_sharded_factory)
register_backend("sqlite-remote", _sqlite_remote_factory)
