"""In-memory relational database engine (the paper's VoltDB substrate).

Provides schemas with FD/IND constraints, indexed relation instances,
relational algebra over named rows, conjunctive-query evaluation, and CSV
persistence.
"""

from .backend import (
    Backend,
    MemoryBackend,
    RelationBackend,
    backend_names,
    create_backend,
    register_backend,
)
from .algebra import (
    join_is_globally_consistent,
    join_is_pairwise_consistent,
    named_rows,
    natural_join_many,
    natural_join_rows,
    project_rows,
    rows_to_tuples,
    select_rows,
)
from .constraints import (
    FunctionalDependency,
    InclusionClass,
    InclusionDependency,
    compute_inclusion_classes,
    inds_are_cyclic,
)
from .csv_io import load_instance, load_schema, relation_counts, save_instance
from .delta import Delta, as_delta
from .instance import DatabaseInstance, RelationInstance
from .query import QueryEvaluator, evaluate_clause, evaluate_definition
from .schema import RelationSchema, Schema

from .sqlite_backend import (
    PooledSQLiteBackend,
    SaturationStore,
    SQLiteBackend,
    SQLiteReadPool,
    SQLiteRelation,
)

__all__ = [
    "Backend",
    "DatabaseInstance",
    "Delta",
    "as_delta",
    "MemoryBackend",
    "PooledSQLiteBackend",
    "RelationBackend",
    "SQLiteBackend",
    "SQLiteReadPool",
    "SQLiteRelation",
    "SaturationStore",
    "backend_names",
    "create_backend",
    "register_backend",
    "FunctionalDependency",
    "InclusionClass",
    "InclusionDependency",
    "QueryEvaluator",
    "RelationInstance",
    "RelationSchema",
    "Schema",
    "compute_inclusion_classes",
    "evaluate_clause",
    "evaluate_definition",
    "inds_are_cyclic",
    "join_is_globally_consistent",
    "join_is_pairwise_consistent",
    "load_instance",
    "load_schema",
    "named_rows",
    "natural_join_many",
    "natural_join_rows",
    "project_rows",
    "relation_counts",
    "rows_to_tuples",
    "save_instance",
    "select_rows",
]
