"""Conjunctive-query (Horn clause) evaluation over database instances.

``evaluate_clause`` computes the result of applying a Horn clause to a
database instance: the set of head-tuple instantiations whose body is
satisfied by the instance (the paper's ``h_R(I)``, Section 3.2.2).  The
evaluator is a backtracking index-nested-loop join that consults the relation
hash indexes for every bound position, so selective constants and join
variables prune early.

The same machinery powers:
* labeling examples from a hidden ground-truth definition (datasets),
* definition-equivalence checks across schema transformations,
* FOIL's coverage counts over the extensional database.

When the instance's backend supports compiled queries (the SQLite backend),
the evaluator delegates to single set-at-a-time SQL statements instead of
the Python backtracking join; bodies the backend cannot compile fall back
to the generic path transparently.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from ..logic.atoms import Atom
from ..logic.clauses import HornClause, HornDefinition
from ..logic.terms import Constant, Term, Variable
from .instance import DatabaseInstance
from .sqlite_backend import CompilationNotSupported

Binding = Dict[Variable, object]


class QueryEvaluator:
    """Evaluate Horn clauses / definitions against a :class:`DatabaseInstance`."""

    def __init__(self, instance: DatabaseInstance, max_results: Optional[int] = None):
        self.instance = instance
        self.max_results = max_results
        backend = getattr(instance, "backend", None)
        self._compiled = (
            backend
            if backend is not None
            and getattr(backend, "supports_compiled_queries", False)
            else None
        )

    # ------------------------------------------------------------------ #
    # Public API
    # ------------------------------------------------------------------ #
    def evaluate_clause(self, clause: HornClause) -> Set[Tuple[object, ...]]:
        """All head tuples produced by ``clause`` on the instance.

        Unsafe clauses (head variables not bound by the body) raise
        ``ValueError`` because their result would be infinite (Section 7.3).
        """
        if not clause.is_safe():
            raise ValueError(f"cannot evaluate unsafe clause: {clause}")
        if self._compiled is not None and clause.body:
            try:
                return self._compiled.head_tuples(clause, self.max_results)
            except CompilationNotSupported:
                pass
        results: Set[Tuple[object, ...]] = set()
        for binding in self.bindings_for_body(clause.body):
            head_tuple = tuple(
                self._term_value(term, binding) for term in clause.head.terms
            )
            results.add(head_tuple)
            if self.max_results is not None and len(results) >= self.max_results:
                break
        return results

    def evaluate_definition(self, definition: HornDefinition) -> Set[Tuple[object, ...]]:
        """Union of the results of every clause in the definition."""
        results: Set[Tuple[object, ...]] = set()
        for clause in definition:
            results |= self.evaluate_clause(clause)
        return results

    def body_is_satisfiable(self, body: Sequence[Atom], binding: Optional[Binding] = None) -> bool:
        """True when the body has at least one satisfying assignment."""
        if self._compiled is not None:
            try:
                return self._compiled.satisfiable(body, binding)
            except CompilationNotSupported:
                pass
        for _ in self.bindings_for_body(body, binding):
            return True
        return False

    def clause_covers_tuple(
        self, clause: HornClause, head_values: Sequence[object]
    ) -> bool:
        """True when ``clause`` derives the given head tuple on the instance.

        Head variables are bound to the given values; head constants must
        match.  This is the "does clause C cover example e" question answered
        extensionally (as opposed to via θ-subsumption of saturations).
        """
        if len(head_values) != clause.head.arity:
            return False
        binding: Binding = {}
        for term, value in zip(clause.head.terms, head_values):
            if isinstance(term, Constant):
                if term.value != value:
                    return False
            else:
                existing = binding.get(term)
                if existing is not None and existing != value:
                    return False
                binding[term] = value
        return self.body_is_satisfiable(clause.body, binding)

    def definition_covers_tuple(
        self, definition: HornDefinition, head_values: Sequence[object]
    ) -> bool:
        """True when any clause of the definition derives the head tuple."""
        return any(
            self.clause_covers_tuple(clause, head_values) for clause in definition
        )

    def covered_tuples(
        self, clause: HornClause, candidates: Sequence[Sequence[object]]
    ) -> Set[Tuple[object, ...]]:
        """The subset of candidate head tuples the clause derives.

        On backends with compiled queries this is **one** set-at-a-time
        statement for the whole candidate list (the stored-procedure analogue
        of Section 7.5.2); otherwise it loops ``clause_covers_tuple``.
        """
        if self._compiled is not None:
            try:
                return self._compiled.covered_head_tuples(clause, candidates)
            except CompilationNotSupported:
                pass
        return {
            tuple(candidate)
            for candidate in candidates
            if self.clause_covers_tuple(clause, candidate)
        }

    def covered_tuples_batch(
        self,
        clauses: Sequence[HornClause],
        candidates: Sequence[Sequence[object]],
        parallelism: int = 1,
    ) -> List[Set[Tuple[object, ...]]]:
        """Per-clause covered candidate sets for a whole batch of clauses.

        Backends exposing ``covered_head_tuples_batch`` (the SQLite family)
        answer the batch with one shared candidate temp table per head
        signature — and, on the pooled backend, fan the clauses out across
        snapshot connections when ``parallelism > 1``.  Clauses the backend
        cannot compile fall back to :meth:`covered_tuples` individually.
        Results are returned in input order.
        """
        clause_list = list(clauses)
        batch = getattr(self._compiled, "covered_head_tuples_batch", None)
        if batch is not None:
            try:
                partial = batch(clause_list, candidates, parallelism=parallelism)
            except CompilationNotSupported:
                partial = [None] * len(clause_list)
        else:
            partial = [None] * len(clause_list)
        return [
            covered if covered is not None else self.covered_tuples(clause, candidates)
            for clause, covered in zip(clause_list, partial)
        ]

    def count_bindings(self, body: Sequence[Atom], limit: Optional[int] = None) -> int:
        """Number of satisfying assignments of the body (used by FOIL's gain)."""
        if self._compiled is not None:
            try:
                return self._compiled.count_bindings(body, limit)
            except CompilationNotSupported:
                pass
        count = 0
        for _ in self.bindings_for_body(body):
            count += 1
            if limit is not None and count >= limit:
                break
        return count

    # ------------------------------------------------------------------ #
    # Core join
    # ------------------------------------------------------------------ #
    def bindings_for_body(
        self, body: Sequence[Atom], initial: Optional[Binding] = None
    ) -> Iterator[Binding]:
        """Generate all variable bindings satisfying every body atom.

        Atoms are evaluated in an order chosen greedily: at each step the atom
        with the most bound arguments (and smallest relation as tie-break) is
        evaluated next, which keeps intermediate result sizes small.  On
        compiled backends the enumeration runs as a single SQL statement.
        """
        if self._compiled is not None:
            try:
                yield from self._compiled.iter_bindings(body, initial)
                return
            except CompilationNotSupported:
                pass
        remaining = list(body)
        order = self._plan(remaining, set((initial or {}).keys()))
        yield from self._join(order, 0, dict(initial or {}))

    def _plan(self, body: List[Atom], bound: Set[Variable]) -> List[Atom]:
        """Greedy join ordering: most-bound, smallest-relation atom first."""
        remaining = list(body)
        ordered: List[Atom] = []
        bound_vars = set(bound)
        while remaining:
            def score(atom: Atom) -> Tuple[int, int]:
                atom_vars = atom.variables()
                unbound = sum(1 for v in atom_vars if v not in bound_vars)
                try:
                    relation_size = len(self.instance.relation(atom.predicate))
                except KeyError:
                    relation_size = 0
                return (unbound, relation_size)

            best = min(remaining, key=score)
            remaining.remove(best)
            ordered.append(best)
            bound_vars |= set(best.variables())
        return ordered

    def _join(
        self, body: List[Atom], position: int, binding: Binding
    ) -> Iterator[Binding]:
        if position == len(body):
            yield dict(binding)
            return
        atom = body[position]
        try:
            relation = self.instance.relation(atom.predicate)
        except KeyError:
            return
        if relation.schema.arity != atom.arity:
            return
        positional_constraints: Dict[int, object] = {}
        for index, term in enumerate(atom.terms):
            if isinstance(term, Constant):
                positional_constraints[index] = term.value
            elif term in binding:
                positional_constraints[index] = binding[term]
        for row in relation.tuples_matching(positional_constraints):
            extended = dict(binding)
            consistent = True
            for index, term in enumerate(atom.terms):
                if isinstance(term, Variable):
                    existing = extended.get(term)
                    if existing is None:
                        extended[term] = row[index]
                    elif existing != row[index]:
                        consistent = False
                        break
            if consistent:
                yield from self._join(body, position + 1, extended)

    @staticmethod
    def _term_value(term: Term, binding: Binding) -> object:
        if isinstance(term, Constant):
            return term.value
        value = binding.get(term)
        if value is None and term not in binding:
            raise KeyError(f"unbound head variable {term}")
        return value


def evaluate_definition(
    instance: DatabaseInstance, definition: HornDefinition
) -> Set[Tuple[object, ...]]:
    """Convenience wrapper: result of a definition on an instance."""
    return QueryEvaluator(instance).evaluate_definition(definition)


def evaluate_clause(
    instance: DatabaseInstance, clause: HornClause
) -> Set[Tuple[object, ...]]:
    """Convenience wrapper: result of a single clause on an instance."""
    return QueryEvaluator(instance).evaluate_clause(clause)
