"""SQLite storage/evaluation backend: the Python analogue of Castor's VoltDB.

The paper pushes bottom-clause construction and coverage testing into an
in-memory RDBMS via stored procedures (Section 7 / Table 13).  This backend
reproduces the architectural move with the standard-library ``sqlite3``:

* every relation is materialized as an indexed table (one index per column,
  a UNIQUE constraint over the full row for set semantics);
* conjunctive clause bodies are **compiled into single SQL statements** —
  satisfiability, binding enumeration, head-tuple computation, and
  FOIL-style binding counts all run set-at-a-time inside SQLite's join
  planner instead of the tuple-at-a-time Python backtracking join;
* query-based coverage of a whole example set is one statement: the example
  tuples are loaded into a temp table and joined against an ``EXISTS`` of
  the compiled body, so testing a clause against N examples costs one
  round-trip rather than N evaluator calls.

Values must be SQLite-storable (``str``/``int``/``float``/``bytes``/bool).
Anything else raises :class:`BackendValueError` on insert; lookups for such
values simply return the empty set (they cannot have been stored).  Bodies
the compiler cannot express (e.g. more atoms than SQLite's join limit) raise
:class:`CompilationNotSupported`, and the caller falls back to the generic
tuple-at-a-time path.
"""

from __future__ import annotations

import sqlite3
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

from ..logic.atoms import Atom
from ..logic.clauses import HornClause
from ..logic.terms import Constant, Variable
from .schema import RelationSchema

Row = Tuple[object, ...]

# SQLite refuses joins of more than 64 tables; stay safely below.
MAX_COMPILED_ATOMS = 60

_STORABLE_TYPES = (str, int, float, bytes)


class BackendValueError(TypeError):
    """A value cannot be stored by the SQLite backend."""


class CompilationNotSupported(Exception):
    """The body/clause cannot be compiled to a single SQL statement.

    Callers catch this and fall back to generic tuple-at-a-time evaluation.
    """


def _storable(value: object) -> object:
    """Map a Python value to its SQLite representation, or raise."""
    if isinstance(value, bool):
        return int(value)
    if isinstance(value, int):
        # SQLite integers are 64-bit; out-of-range ints would raise an
        # uncatchable-at-this-layer OverflowError inside sqlite3 otherwise.
        if -(2**63) <= value < 2**63:
            return value
    elif value is not None and isinstance(value, _STORABLE_TYPES):
        return value
    raise BackendValueError(
        f"sqlite backend cannot store value {value!r} of type {type(value).__name__}"
    )


def _quote(identifier: str) -> str:
    return '"' + identifier.replace('"', '""') + '"'


_SERIALIZED: Optional[bool] = None


def _sqlite_is_serialized() -> bool:
    """Whether the linked SQLite is in serialized (fully thread-safe) mode.

    ``sqlite3.threadsafety`` only reflects the real build since Python 3.11
    (it is hardcoded to 1 on older versions), so fall back to the compile
    options for 3.9/3.10.
    """
    global _SERIALIZED
    if _SERIALIZED is None:
        if sqlite3.threadsafety == 3:
            _SERIALIZED = True
        else:
            probe = sqlite3.connect(":memory:")
            try:
                options = {row[0] for row in probe.execute("PRAGMA compile_options")}
            finally:
                probe.close()
            _SERIALIZED = "THREADSAFE=1" in options
    return _SERIALIZED


class SQLiteRelation:
    """One relation's extension as an indexed SQLite table.

    Implements the :class:`~repro.database.backend.RelationBackend` interface
    so it is a drop-in replacement for the dict-based ``RelationInstance``.
    """

    def __init__(self, schema: RelationSchema, connection: sqlite3.Connection):
        if schema.arity == 0:
            raise ValueError(
                f"sqlite backend requires relations of arity >= 1, got {schema.name!r}"
            )
        self.schema = schema
        self._connection = connection
        self._table = _quote(f"rel_{schema.name}")
        columns = ", ".join(f"c{i}" for i in range(schema.arity))
        self._connection.execute(
            f"CREATE TABLE {self._table} ({columns}, UNIQUE ({columns}))"
        )
        for i in range(schema.arity):
            index_name = _quote(f"idx_{schema.name}_c{i}")
            self._connection.execute(
                f"CREATE INDEX {index_name} ON {self._table} (c{i})"
            )
        self._placeholders = ", ".join("?" for _ in range(schema.arity))
        self._all_match = " AND ".join(f"c{i} = ?" for i in range(schema.arity))

    # ------------------------------------------------------------------ #
    # Mutation
    # ------------------------------------------------------------------ #
    def _check_arity(self, row: Sequence[object]) -> Row:
        row_tuple: Row = tuple(row)
        if len(row_tuple) != self.schema.arity:
            raise ValueError(
                f"tuple arity {len(row_tuple)} does not match relation "
                f"{self.schema.name!r} arity {self.schema.arity}"
            )
        return row_tuple

    def add(self, row: Sequence[object]) -> None:
        """Insert a tuple; silently ignores exact duplicates."""
        row_tuple = self._check_arity(row)
        values = tuple(_storable(v) for v in row_tuple)
        self._connection.execute(
            f"INSERT OR IGNORE INTO {self._table} VALUES ({self._placeholders})",
            values,
        )

    def add_all(self, rows: Iterable[Sequence[object]]) -> None:
        prepared = [
            tuple(_storable(v) for v in self._check_arity(row)) for row in rows
        ]
        self._connection.executemany(
            f"INSERT OR IGNORE INTO {self._table} VALUES ({self._placeholders})",
            prepared,
        )

    def remove(self, row: Sequence[object]) -> None:
        """Delete a tuple; raises KeyError if absent."""
        row_tuple = self._check_arity(row)
        try:
            values = tuple(_storable(v) for v in row_tuple)
        except BackendValueError:
            values = None
        if values is not None:
            cursor = self._connection.execute(
                f"DELETE FROM {self._table} WHERE {self._all_match}", values
            )
            if cursor.rowcount > 0:
                return
        raise KeyError(f"tuple {row_tuple!r} not in relation {self.schema.name!r}")

    # ------------------------------------------------------------------ #
    # Lookup
    # ------------------------------------------------------------------ #
    @property
    def rows(self) -> Set[Row]:
        """The set of tuples (materialized from the table)."""
        cursor = self._connection.execute(f"SELECT * FROM {self._table}")
        return {tuple(row) for row in cursor}

    def tuples_containing(self, value: object) -> Set[Row]:
        """All tuples mentioning ``value`` in any column."""
        try:
            stored = _storable(value)
        except BackendValueError:
            return set()
        condition = " OR ".join(f"c{i} = ?" for i in range(self.schema.arity))
        cursor = self._connection.execute(
            f"SELECT * FROM {self._table} WHERE {condition}",
            tuple(stored for _ in range(self.schema.arity)),
        )
        return {tuple(row) for row in cursor}

    def tuples_with(self, position: int, value: object) -> Set[Row]:
        """All tuples with ``value`` in column ``position``."""
        return self.tuples_matching({position: value})

    def tuples_matching(self, bindings: Dict[int, object]) -> Set[Row]:
        """Tuples matching all ``position -> value`` bindings (index-backed)."""
        if not bindings:
            return self.rows
        conditions: List[str] = []
        params: List[object] = []
        for position, value in bindings.items():
            if not 0 <= position < self.schema.arity:
                return set()
            try:
                params.append(_storable(value))
            except BackendValueError:
                return set()
            conditions.append(f"c{position} = ?")
        cursor = self._connection.execute(
            f"SELECT * FROM {self._table} WHERE {' AND '.join(conditions)}",
            tuple(params),
        )
        return {tuple(row) for row in cursor}

    def project(self, attributes: Sequence[str]) -> Set[Row]:
        """Projection π_attributes of this relation (as a set of tuples)."""
        positions = self.schema.positions_of(attributes)
        columns = ", ".join(f"c{p}" for p in positions)
        cursor = self._connection.execute(
            f"SELECT DISTINCT {columns} FROM {self._table}"
        )
        return {tuple(row) for row in cursor}

    def distinct_values(self, attribute: str) -> Set[object]:
        """Distinct values of one attribute."""
        position = self.schema.position_of(attribute)
        cursor = self._connection.execute(
            f"SELECT DISTINCT c{position} FROM {self._table}"
        )
        return {row[0] for row in cursor}

    def __len__(self) -> int:
        cursor = self._connection.execute(f"SELECT COUNT(*) FROM {self._table}")
        return int(cursor.fetchone()[0])

    def __iter__(self) -> Iterator[Row]:
        cursor = self._connection.execute(f"SELECT * FROM {self._table}")
        return iter([tuple(row) for row in cursor])

    def __contains__(self, row: Sequence[object]) -> bool:
        row_tuple = tuple(row)
        if len(row_tuple) != self.schema.arity:
            return False
        try:
            values = tuple(_storable(v) for v in row_tuple)
        except BackendValueError:
            return False
        cursor = self._connection.execute(
            f"SELECT 1 FROM {self._table} WHERE {self._all_match} LIMIT 1", values
        )
        return cursor.fetchone() is not None

    def __eq__(self, other: object) -> bool:
        return (
            hasattr(other, "schema")
            and hasattr(other, "rows")
            and other.schema == self.schema
            and other.rows == self.rows
        )

    def __repr__(self) -> str:
        return f"SQLiteRelation({self.schema.name!r}, {len(self)} tuples)"


class _CompiledBody:
    """A conjunctive body translated to SQL FROM/WHERE fragments.

    ``empty`` marks bodies that are statically unsatisfiable on this instance
    (unknown relation, arity mismatch, unstorable constant) — their result is
    the empty set, which is exactly what the tuple-at-a-time join would
    produce, so no fallback is needed.
    """

    __slots__ = ("from_items", "where", "params", "variable_columns", "empty")

    def __init__(self) -> None:
        self.from_items: List[str] = []
        self.where: List[str] = []
        self.params: List[object] = []
        self.variable_columns: Dict[Variable, str] = {}
        self.empty = False


class SQLiteBackend:
    """Relation storage plus compiled set-at-a-time query evaluation.

    One backend object owns one in-memory SQLite connection shared by every
    relation of a :class:`~repro.database.instance.DatabaseInstance`, so
    multi-relation joins run inside a single statement.
    """

    name = "sqlite"
    supports_compiled_queries = True

    def __init__(self, connection: Optional[sqlite3.Connection] = None):
        if connection is None:
            # With a serialized SQLite build the library itself locks around
            # every call, so the connection may be shared by the coverage
            # engine's worker threads.
            connection = sqlite3.connect(
                ":memory:", check_same_thread=not _sqlite_is_serialized()
            )
        self._connection = connection
        self._connection.execute("PRAGMA temp_store = MEMORY")
        self._relations: Dict[str, SQLiteRelation] = {}
        self._temp_counter = 0

    def make_relation(self, schema: RelationSchema) -> SQLiteRelation:
        if schema.name in self._relations:
            raise ValueError(
                f"relation {schema.name!r} already exists on this backend; "
                "a SQLiteBackend object serves exactly one DatabaseInstance"
            )
        relation = SQLiteRelation(schema, self._connection)
        self._relations[schema.name] = relation
        return relation

    # ------------------------------------------------------------------ #
    # Body compilation
    # ------------------------------------------------------------------ #
    def _compile_body(
        self,
        body: Sequence[Atom],
        binding: Optional[Dict[Variable, object]] = None,
        outer_columns: Optional[Dict[Variable, str]] = None,
    ) -> _CompiledBody:
        """Translate a conjunctive body into FROM/WHERE fragments.

        ``binding`` pins variables to concrete values (the initial binding of
        the backtracking join); ``outer_columns`` pins variables to columns of
        an enclosing query (used by set-at-a-time coverage, where head
        variables reference the candidate-example temp table).
        """
        if len(body) > MAX_COMPILED_ATOMS:
            raise CompilationNotSupported(
                f"body has {len(body)} atoms, above the {MAX_COMPILED_ATOMS}-way join limit"
            )
        compiled = _CompiledBody()
        if outer_columns:
            compiled.variable_columns.update(outer_columns)
        binding = binding or {}
        for alias_index, atom in enumerate(body):
            relation = self._relations.get(atom.predicate)
            if relation is None or relation.schema.arity != atom.arity:
                compiled.empty = True
                return compiled
            alias = f"a{alias_index}"
            compiled.from_items.append(f"{relation._table} AS {alias}")
            for position, term in enumerate(atom.terms):
                column = f"{alias}.c{position}"
                if isinstance(term, Constant):
                    try:
                        compiled.params.append(_storable(term.value))
                    except BackendValueError:
                        compiled.empty = True
                        return compiled
                    compiled.where.append(f"{column} = ?")
                    continue
                if term in binding:
                    try:
                        compiled.params.append(_storable(binding[term]))
                    except BackendValueError:
                        compiled.empty = True
                        return compiled
                    compiled.where.append(f"{column} = ?")
                    # The variable stays addressable for SELECT projections.
                    compiled.variable_columns.setdefault(term, column)
                    continue
                known = compiled.variable_columns.get(term)
                if known is None:
                    compiled.variable_columns[term] = column
                else:
                    compiled.where.append(f"{column} = {known}")
        return compiled

    @staticmethod
    def _sql_for(compiled: _CompiledBody, select: str) -> str:
        sql = f"SELECT {select} FROM {', '.join(compiled.from_items)}"
        if compiled.where:
            sql += " WHERE " + " AND ".join(compiled.where)
        return sql

    # ------------------------------------------------------------------ #
    # Set-at-a-time evaluation (probed by QueryEvaluator)
    # ------------------------------------------------------------------ #
    def satisfiable(
        self, body: Sequence[Atom], binding: Optional[Dict[Variable, object]] = None
    ) -> bool:
        """One satisfying assignment exists (``SELECT 1 ... LIMIT 1``)."""
        if not body:
            return True
        compiled = self._compile_body(body, binding)
        if compiled.empty:
            return False
        sql = self._sql_for(compiled, "1") + " LIMIT 1"
        return self._connection.execute(sql, compiled.params).fetchone() is not None

    def count_bindings(
        self, body: Sequence[Atom], limit: Optional[int] = None
    ) -> int:
        """Number of satisfying assignments, optionally capped at ``limit``."""
        if not body:
            return 1 if limit is None or limit >= 1 else 0
        compiled = self._compile_body(body)
        if compiled.empty:
            return 0
        inner = self._sql_for(compiled, "1")
        if limit is not None:
            inner += f" LIMIT {int(limit)}"
        cursor = self._connection.execute(
            f"SELECT COUNT(*) FROM ({inner})", compiled.params
        )
        return int(cursor.fetchone()[0])

    def iter_bindings(
        self, body: Sequence[Atom], binding: Optional[Dict[Variable, object]] = None
    ) -> Iterator[Dict[Variable, object]]:
        """Enumerate satisfying assignments of the body's variables."""
        base = dict(binding or {})
        if not body:
            yield dict(base)
            return
        compiled = self._compile_body(body, binding)
        if compiled.empty:
            return
        variables = [
            v for v in compiled.variable_columns if v not in base
        ]
        if not variables:
            if self.satisfiable(body, binding):
                yield dict(base)
            return
        select = ", ".join(compiled.variable_columns[v] for v in variables)
        cursor = self._connection.execute(
            self._sql_for(compiled, select), compiled.params
        )
        for row in cursor:
            result = dict(base)
            result.update(zip(variables, row))
            yield result

    def head_tuples(
        self, clause: HornClause, max_results: Optional[int] = None
    ) -> Set[Row]:
        """All head tuples produced by a (safe) clause, as one SELECT DISTINCT."""
        if not clause.body:
            raise CompilationNotSupported("empty body: nothing to join")
        compiled = self._compile_body(clause.body)
        if compiled.empty:
            return set()
        select_parts: List[str] = []
        head_params: List[object] = []
        for term in clause.head.terms:
            if isinstance(term, Constant):
                try:
                    head_params.append(_storable(term.value))
                except BackendValueError:
                    raise CompilationNotSupported(
                        f"unstorable head constant {term.value!r}"
                    )
                select_parts.append("?")
                continue
            column = compiled.variable_columns.get(term)
            if column is None:
                raise ValueError(f"unbound head variable {term}")
            select_parts.append(column)
        sql = self._sql_for(compiled, "DISTINCT " + ", ".join(select_parts))
        if max_results is not None:
            sql += f" LIMIT {int(max_results)}"
        cursor = self._connection.execute(sql, head_params + compiled.params)
        return {tuple(row) for row in cursor}

    def covered_head_tuples(
        self, clause: HornClause, candidates: Sequence[Sequence[object]]
    ) -> Set[Row]:
        """The subset of candidate head tuples the clause derives — one query.

        This is the set-at-a-time coverage test (the paper's stored-procedure
        path): the candidates are loaded into a temp table and filtered by an
        ``EXISTS`` over the compiled body, so the whole example set is tested
        in a single statement.
        """
        arity = clause.head.arity
        viable: List[Row] = []
        for raw in candidates:
            candidate = tuple(raw)
            if len(candidate) != arity:
                continue
            consistent = True
            seen: Dict[Variable, object] = {}
            for term, value in zip(clause.head.terms, candidate):
                if isinstance(term, Constant):
                    if term.value != value:
                        consistent = False
                        break
                else:
                    previous = seen.get(term)
                    if previous is not None and previous != value:
                        consistent = False
                        break
                    seen[term] = value
            if consistent:
                viable.append(candidate)
        if not viable:
            return set()
        if not clause.body:
            return set(viable)

        # Project candidates onto the distinct head variables.
        first_position: Dict[Variable, int] = {}
        for position, term in enumerate(clause.head.terms):
            if isinstance(term, Variable) and term not in first_position:
                first_position[term] = position
        variables = sorted(first_position, key=lambda v: first_position[v])
        if not variables:
            # All-constant head: the body does not reference the candidates.
            return set(viable) if self.satisfiable(clause.body) else set()
        projections: Dict[Row, List[Row]] = {}
        for candidate in viable:
            key = tuple(candidate[first_position[v]] for v in variables)
            projections.setdefault(key, []).append(candidate)

        self._temp_counter += 1
        temp = _quote(f"cand_{self._temp_counter}")
        columns = ", ".join(f"x{i}" for i in range(len(variables))) or "x0"
        try:
            stored_keys = [
                tuple(_storable(v) for v in key) for key in projections
            ]
        except BackendValueError:
            raise CompilationNotSupported("unstorable candidate value")
        outer_columns = {
            variable: f"cand.x{i}" for i, variable in enumerate(variables)
        }
        compiled = self._compile_body(clause.body, outer_columns=outer_columns)
        if compiled.empty:
            return set()
        self._connection.execute(f"CREATE TEMP TABLE {temp} ({columns})")
        try:
            placeholders = ", ".join("?" for _ in range(max(1, len(variables))))
            self._connection.executemany(
                f"INSERT INTO {temp} VALUES ({placeholders})", stored_keys
            )
            exists = self._sql_for(compiled, "1")
            select = ", ".join(f"cand.x{i}" for i in range(len(variables))) or "1"
            sql = (
                f"SELECT {select} FROM {temp} AS cand "
                f"WHERE EXISTS ({exists})"
            )
            covered: Set[Row] = set()
            for row in self._connection.execute(sql, compiled.params):
                for candidate in projections.get(tuple(row), []):
                    covered.add(candidate)
            return covered
        finally:
            self._connection.execute(f"DROP TABLE {temp}")

    def __repr__(self) -> str:
        return f"SQLiteBackend({len(self._relations)} relations)"
