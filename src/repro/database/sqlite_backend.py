"""SQLite storage/evaluation backend: the Python analogue of Castor's VoltDB.

The paper pushes bottom-clause construction and coverage testing into an
in-memory RDBMS via stored procedures (Section 7 / Table 13).  This backend
reproduces the architectural move with the standard-library ``sqlite3``:

* every relation is materialized as an indexed table (one index per column,
  a UNIQUE constraint over the full row for set semantics);
* conjunctive clause bodies are **compiled into single SQL statements** —
  satisfiability, binding enumeration, head-tuple computation, and
  FOIL-style binding counts all run set-at-a-time inside SQLite's join
  planner instead of the tuple-at-a-time Python backtracking join;
* query-based coverage of a whole example set is one statement: the example
  tuples are loaded into a temp table and joined against an ``EXISTS`` of
  the compiled body, so testing a clause against N examples costs one
  round-trip rather than N evaluator calls.

Values must be SQLite-storable (``str``/``int``/``float``/``bytes``/bool).
Anything else raises :class:`BackendValueError` on insert; lookups for such
values simply return the empty set (they cannot have been stored).  Bodies
the compiler cannot express (e.g. more atoms than SQLite's join limit) raise
:class:`CompilationNotSupported`, and the caller falls back to the generic
tuple-at-a-time path.
"""

from __future__ import annotations

import itertools
import os
import sqlite3
import threading
from concurrent.futures import ThreadPoolExecutor
from contextlib import contextmanager
from typing import (
    Callable,
    Dict,
    FrozenSet,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from ..logic.atoms import Atom
from ..logic.clauses import HornClause
from ..logic.terms import Constant, Variable
from ..obs import registry as obs_registry
from .schema import RelationSchema

Row = Tuple[object, ...]

#: Per-pool label for registry series (a fresh pool must read zero).
_POOL_SEQ = itertools.count(1)

# SQLite refuses joins of more than 64 tables; stay safely below.
MAX_COMPILED_ATOMS = 60

_STORABLE_TYPES = (str, int, float, bytes)


class BackendValueError(TypeError):
    """A value cannot be stored by the SQLite backend."""


class CompilationNotSupported(Exception):
    """The body/clause cannot be compiled to a single SQL statement.

    Callers catch this and fall back to generic tuple-at-a-time evaluation.
    """


def _storable(value: object) -> object:
    """Map a Python value to its SQLite representation, or raise."""
    if isinstance(value, bool):
        return int(value)
    if isinstance(value, int):
        # SQLite integers are 64-bit; out-of-range ints would raise an
        # uncatchable-at-this-layer OverflowError inside sqlite3 otherwise.
        if -(2**63) <= value < 2**63:
            return value
    elif value is not None and isinstance(value, _STORABLE_TYPES):
        return value
    raise BackendValueError(
        f"sqlite backend cannot store value {value!r} of type {type(value).__name__}"
    )


def _quote(identifier: str) -> str:
    return '"' + identifier.replace('"', '""') + '"'


_SERIALIZED: Optional[bool] = None


def _sqlite_is_serialized() -> bool:
    """Whether the linked SQLite is in serialized (fully thread-safe) mode.

    ``sqlite3.threadsafety`` only reflects the real build since Python 3.11
    (it is hardcoded to 1 on older versions), so fall back to the compile
    options for 3.9/3.10.
    """
    global _SERIALIZED
    if _SERIALIZED is None:
        if sqlite3.threadsafety == 3:
            _SERIALIZED = True
        else:
            probe = sqlite3.connect(":memory:")
            try:
                options = {row[0] for row in probe.execute("PRAGMA compile_options")}
            finally:
                probe.close()
            _SERIALIZED = "THREADSAFE=1" in options
    return _SERIALIZED


class SQLiteRelation:
    """One relation's extension as an indexed SQLite table.

    Implements the :class:`~repro.database.backend.RelationBackend` interface
    so it is a drop-in replacement for the dict-based ``RelationInstance``.
    """

    def __init__(
        self,
        schema: RelationSchema,
        connection: sqlite3.Connection,
        on_mutation: Optional[
            Callable[[Optional[Tuple[str, str, Tuple[Row, ...]]]], None]
        ] = None,
    ):
        if schema.arity == 0:
            raise ValueError(
                f"sqlite backend requires relations of arity >= 1, got {schema.name!r}"
            )
        self.schema = schema
        self._connection = connection
        # Invoked after every successful data change; the pooled backend uses
        # it to version relation contents for snapshot staleness checks.
        self._on_mutation = on_mutation
        # Installed by DatabaseInstance.mark_managed(): invoked before every
        # mutation so prepared instances can warn when callers bypass the
        # transaction/update API (stale-cache hazard).
        self.mutation_guard: Optional[Callable[[], None]] = None
        self._table = _quote(f"rel_{schema.name}")
        columns = ", ".join(f"c{i}" for i in range(schema.arity))
        self._connection.execute(
            f"CREATE TABLE {self._table} ({columns}, UNIQUE ({columns}))"
        )
        for i in range(schema.arity):
            index_name = _quote(f"idx_{schema.name}_c{i}")
            self._connection.execute(
                f"CREATE INDEX {index_name} ON {self._table} (c{i})"
            )
        self._placeholders = ", ".join("?" for _ in range(schema.arity))
        self._all_match = " AND ".join(f"c{i} = ?" for i in range(schema.arity))

    # ------------------------------------------------------------------ #
    # Mutation
    # ------------------------------------------------------------------ #
    def _check_arity(self, row: Sequence[object]) -> Row:
        row_tuple: Row = tuple(row)
        if len(row_tuple) != self.schema.arity:
            raise ValueError(
                f"tuple arity {len(row_tuple)} does not match relation "
                f"{self.schema.name!r} arity {self.schema.arity}"
            )
        return row_tuple

    def _mutated(self, change: Optional[Tuple[str, str, Tuple[Row, ...]]] = None) -> None:
        # ``change`` is ``(op, relation, rows)`` with op in {"add", "remove"};
        # backends that ship incremental worker reloads log it (see
        # ShardedSQLiteBackend), everyone else just bumps the data version.
        if self._on_mutation is not None:
            self._on_mutation(change)

    def add(self, row: Sequence[object]) -> None:
        """Insert a tuple; silently ignores exact duplicates."""
        if self.mutation_guard is not None:
            self.mutation_guard()
        row_tuple = self._check_arity(row)
        values = tuple(_storable(v) for v in row_tuple)
        cursor = self._connection.execute(
            f"INSERT OR IGNORE INTO {self._table} VALUES ({self._placeholders})",
            values,
        )
        if cursor.rowcount != 0:
            self._mutated(("add", self.schema.name, (values,)))

    def add_all(self, rows: Iterable[Sequence[object]]) -> None:
        if self.mutation_guard is not None:
            self.mutation_guard()
        prepared = [
            tuple(_storable(v) for v in self._check_arity(row)) for row in rows
        ]
        cursor = self._connection.executemany(
            f"INSERT OR IGNORE INTO {self._table} VALUES ({self._placeholders})",
            prepared,
        )
        if cursor.rowcount != 0:
            # Duplicates that were ignored still appear in the change record;
            # re-adding them on a diff reload is idempotent.
            self._mutated(("add", self.schema.name, tuple(prepared)))

    def remove(self, row: Sequence[object]) -> None:
        """Delete a tuple; raises KeyError if absent."""
        if self.mutation_guard is not None:
            self.mutation_guard()
        row_tuple = self._check_arity(row)
        try:
            values = tuple(_storable(v) for v in row_tuple)
        except BackendValueError:
            values = None
        if values is not None:
            cursor = self._connection.execute(
                f"DELETE FROM {self._table} WHERE {self._all_match}", values
            )
            if cursor.rowcount > 0:
                self._mutated(("remove", self.schema.name, (values,)))
                return
        raise KeyError(f"tuple {row_tuple!r} not in relation {self.schema.name!r}")

    # ------------------------------------------------------------------ #
    # Lookup
    # ------------------------------------------------------------------ #
    @property
    def rows(self) -> Set[Row]:
        """The set of tuples (materialized from the table)."""
        cursor = self._connection.execute(f"SELECT * FROM {self._table}")
        return {tuple(row) for row in cursor}

    def tuples_containing(self, value: object) -> Set[Row]:
        """All tuples mentioning ``value`` in any column."""
        try:
            stored = _storable(value)
        except BackendValueError:
            return set()
        condition = " OR ".join(f"c{i} = ?" for i in range(self.schema.arity))
        cursor = self._connection.execute(
            f"SELECT * FROM {self._table} WHERE {condition}",
            tuple(stored for _ in range(self.schema.arity)),
        )
        return {tuple(row) for row in cursor}

    def tuples_with(self, position: int, value: object) -> Set[Row]:
        """All tuples with ``value`` in column ``position``."""
        return self.tuples_matching({position: value})

    def tuples_matching(self, bindings: Dict[int, object]) -> Set[Row]:
        """Tuples matching all ``position -> value`` bindings (index-backed)."""
        if not bindings:
            return self.rows
        conditions: List[str] = []
        params: List[object] = []
        for position, value in bindings.items():
            if not 0 <= position < self.schema.arity:
                return set()
            try:
                params.append(_storable(value))
            except BackendValueError:
                return set()
            conditions.append(f"c{position} = ?")
        cursor = self._connection.execute(
            f"SELECT * FROM {self._table} WHERE {' AND '.join(conditions)}",
            tuple(params),
        )
        return {tuple(row) for row in cursor}

    def project(self, attributes: Sequence[str]) -> Set[Row]:
        """Projection π_attributes of this relation (as a set of tuples)."""
        positions = self.schema.positions_of(attributes)
        columns = ", ".join(f"c{p}" for p in positions)
        cursor = self._connection.execute(
            f"SELECT DISTINCT {columns} FROM {self._table}"
        )
        return {tuple(row) for row in cursor}

    def distinct_values(self, attribute: str) -> Set[object]:
        """Distinct values of one attribute."""
        position = self.schema.position_of(attribute)
        cursor = self._connection.execute(
            f"SELECT DISTINCT c{position} FROM {self._table}"
        )
        return {row[0] for row in cursor}

    def __len__(self) -> int:
        cursor = self._connection.execute(f"SELECT COUNT(*) FROM {self._table}")
        return int(cursor.fetchone()[0])

    def __iter__(self) -> Iterator[Row]:
        cursor = self._connection.execute(f"SELECT * FROM {self._table}")
        return iter([tuple(row) for row in cursor])

    def __contains__(self, row: Sequence[object]) -> bool:
        row_tuple = tuple(row)
        if len(row_tuple) != self.schema.arity:
            return False
        try:
            values = tuple(_storable(v) for v in row_tuple)
        except BackendValueError:
            return False
        cursor = self._connection.execute(
            f"SELECT 1 FROM {self._table} WHERE {self._all_match} LIMIT 1", values
        )
        return cursor.fetchone() is not None

    def __eq__(self, other: object) -> bool:
        return (
            hasattr(other, "schema")
            and hasattr(other, "rows")
            and other.schema == self.schema
            and other.rows == self.rows
        )

    def __repr__(self) -> str:
        return f"SQLiteRelation({self.schema.name!r}, {len(self)} tuples)"


class _CompiledBody:
    """A conjunctive body translated to SQL FROM/WHERE fragments.

    ``empty`` marks bodies that are statically unsatisfiable on this instance
    (unknown relation, arity mismatch, unstorable constant) — their result is
    the empty set, which is exactly what the tuple-at-a-time join would
    produce, so no fallback is needed.
    """

    __slots__ = ("from_items", "where", "params", "variable_columns", "empty")

    def __init__(self) -> None:
        self.from_items: List[str] = []
        self.where: List[str] = []
        self.params: List[object] = []
        self.variable_columns: Dict[Variable, str] = {}
        self.empty = False


def compile_conjunction(
    body: Sequence[Atom],
    resolve_table: Callable[[Atom], Optional[str]],
    binding: Optional[Dict[Variable, object]] = None,
    outer_columns: Optional[Dict[Variable, str]] = None,
    alias_condition: Optional[Callable[[str], str]] = None,
) -> _CompiledBody:
    """Translate a conjunctive body into SQL FROM/WHERE fragments.

    ``resolve_table`` maps an atom to the table holding its predicate's
    extension (``None`` marks the body statically empty on this store);
    ``binding`` pins variables to concrete values (the initial binding of the
    backtracking join); ``outer_columns`` pins variables to columns of an
    enclosing query (set-at-a-time coverage references the candidate temp
    table this way); ``alias_condition`` emits one extra parameter-free
    condition per atom (the saturation store uses it to keep every atom
    inside a single example's saturation).
    """
    if len(body) > MAX_COMPILED_ATOMS:
        raise CompilationNotSupported(
            f"body has {len(body)} atoms, above the {MAX_COMPILED_ATOMS}-way join limit"
        )
    compiled = _CompiledBody()
    if outer_columns:
        compiled.variable_columns.update(outer_columns)
    binding = binding or {}
    for alias_index, atom in enumerate(body):
        table = resolve_table(atom)
        if table is None:
            compiled.empty = True
            return compiled
        alias = f"a{alias_index}"
        compiled.from_items.append(f"{table} AS {alias}")
        if alias_condition is not None:
            compiled.where.append(alias_condition(alias))
        for position, term in enumerate(atom.terms):
            column = f"{alias}.c{position}"
            if isinstance(term, Constant):
                try:
                    compiled.params.append(_storable(term.value))
                except BackendValueError:
                    compiled.empty = True
                    return compiled
                compiled.where.append(f"{column} = ?")
                continue
            if term in binding:
                try:
                    compiled.params.append(_storable(binding[term]))
                except BackendValueError:
                    compiled.empty = True
                    return compiled
                compiled.where.append(f"{column} = ?")
                # The variable stays addressable for SELECT projections.
                compiled.variable_columns.setdefault(term, column)
                continue
            known = compiled.variable_columns.get(term)
            if known is None:
                compiled.variable_columns[term] = column
            else:
                compiled.where.append(f"{column} = {known}")
    return compiled


def _head_signature(head: Atom) -> Tuple[object, ...]:
    """Canonical shape of a clause head: constants plus variable-repeat pattern.

    Two heads with the same signature accept exactly the same candidate
    tuples and project them onto the same key positions, so batched coverage
    can share one candidate temp table across all clauses of a signature.
    """
    seen: Dict[Variable, int] = {}
    signature: List[object] = []
    for term in head.terms:
        if isinstance(term, Constant):
            signature.append(("const", term.value))
        else:
            signature.append(("var", seen.setdefault(term, len(seen))))
    return tuple(signature)


class _CandidateProjection:
    """Candidate head tuples filtered and projected for one head signature.

    ``viable`` drops candidates that cannot match the head (wrong arity,
    constant mismatch, inconsistent repeated variables); ``projections`` maps
    each distinct key (values at the first occurrence of every distinct head
    variable, in position order) back to the candidates it represents;
    ``stored_keys`` is ``None`` when some key value is not SQLite-storable.
    """

    __slots__ = ("viable", "var_positions", "projections", "stored_keys")

    def __init__(self, head: Atom, candidates: Sequence[Sequence[object]]):
        arity = head.arity
        first_position: Dict[Variable, int] = {}
        for position, term in enumerate(head.terms):
            if isinstance(term, Variable) and term not in first_position:
                first_position[term] = position
        self.var_positions: List[int] = sorted(first_position.values())

        self.viable: List[Row] = []
        for raw in candidates:
            candidate = tuple(raw)
            if len(candidate) != arity:
                continue
            consistent = True
            seen: Dict[Variable, object] = {}
            for term, value in zip(head.terms, candidate):
                if isinstance(term, Constant):
                    if term.value != value:
                        consistent = False
                        break
                else:
                    previous = seen.get(term)
                    if previous is not None and previous != value:
                        consistent = False
                        break
                    seen[term] = value
            if consistent:
                self.viable.append(candidate)

        self.projections: Dict[Row, List[Row]] = {}
        for candidate in self.viable:
            key = tuple(candidate[p] for p in self.var_positions)
            self.projections.setdefault(key, []).append(candidate)
        try:
            self.stored_keys: Optional[List[Row]] = [
                tuple(_storable(v) for v in key) for key in self.projections
            ]
        except BackendValueError:
            self.stored_keys = None


class SQLiteBackend:
    """Relation storage plus compiled set-at-a-time query evaluation.

    One backend object owns one in-memory SQLite connection shared by every
    relation of a :class:`~repro.database.instance.DatabaseInstance`, so
    multi-relation joins run inside a single statement.
    """

    name = "sqlite"
    supports_compiled_queries = True
    supports_saturation_queries = True
    # One shared connection: concurrent readers would interleave statements
    # on it (and a non-serialized SQLite build pins it to one thread), so
    # phase-overlap machinery must not read this backend from worker threads.
    supports_concurrent_reads = False

    def __init__(self, connection: Optional[sqlite3.Connection] = None):
        if connection is None:
            # With a serialized SQLite build the library itself locks around
            # every call, so the connection may be shared by the coverage
            # engine's worker threads.  Autocommit keeps the database free of
            # open write transactions, which snapshot pools require.
            connection = sqlite3.connect(
                ":memory:",
                check_same_thread=not _sqlite_is_serialized(),
                isolation_level=None,
            )
        self._connection = connection
        self._connection.execute("PRAGMA temp_store = MEMORY")
        self._relations: Dict[str, SQLiteRelation] = {}
        self._temp_ids = itertools.count(1)
        # One reusable frontier-values temp table for saturation queries
        # (created lazily); the lock serializes its refill when batched
        # construction fans out over threads.
        self._frontier_table: Optional[str] = None
        self._frontier_lock = threading.Lock()
        # Bumped on every successful relation mutation; versions the data
        # independently of scratch writes (temp tables do not count).
        self._data_version = 0

    def _bump_data_version(
        self, change: Optional[Tuple[str, str, Tuple[Row, ...]]] = None
    ) -> None:
        del change  # subclasses that ship incremental reloads log it
        self._data_version += 1

    def make_relation(self, schema: RelationSchema) -> SQLiteRelation:
        if schema.name in self._relations:
            raise ValueError(
                f"relation {schema.name!r} already exists on this backend; "
                "a SQLiteBackend object serves exactly one DatabaseInstance"
            )
        relation = SQLiteRelation(
            schema, self._connection, on_mutation=self._bump_data_version
        )
        self._relations[schema.name] = relation
        return relation

    # ------------------------------------------------------------------ #
    # Saturation queries (the stored-procedure frontier step)
    # ------------------------------------------------------------------ #
    def neighbors_of_batch(
        self, values: Sequence[object]
    ) -> Dict[object, List[Tuple[str, Row]]]:
        """``value -> [(relation, tuple)]`` for one whole saturation frontier.

        The frontier values are loaded into a temp table and every relation
        is joined against it with ONE statement (a UNION of per-column
        index-driven joins), so expanding a depth level of bottom-clause
        construction costs one round-trip per relation instead of one
        lookup per (value, relation) pair.  Values SQLite cannot store come
        back with empty neighbor lists (they cannot have been stored).
        """
        results: Dict[object, List[Tuple[str, Row]]] = {
            value: [] for value in values
        }
        stored_of: Dict[object, object] = {}
        for value in results:
            try:
                stored_of[_storable(value)] = value
            except BackendValueError:
                continue
        if not stored_of:
            return results
        with self._frontier_lock:
            temp = self._frontier_table
            if temp is None:
                temp = self._frontier_table = _quote("frontier_values")
                self._connection.execute(f"CREATE TEMP TABLE {temp} (v)")
            else:
                self._connection.execute(f"DELETE FROM {temp}")
            self._connection.executemany(
                f"INSERT INTO {temp} VALUES (?)",
                [(stored,) for stored in stored_of],
            )
            for name, relation in self._relations.items():
                arms = [
                    f"SELECT f.v, t.* FROM {temp} AS f, {relation._table} AS t "
                    f"WHERE t.c{i} = f.v"
                    for i in range(relation.schema.arity)
                ]
                # UNION (not UNION ALL) dedups tuples matched in two columns.
                for row in self._connection.execute(" UNION ".join(arms)):
                    value = stored_of.get(row[0])
                    if value is not None:
                        results[value].append((name, tuple(row[1:])))
            # Release the frontier rows now rather than pinning the last
            # batch's values in the long-lived connection until next call.
            self._connection.execute(f"DELETE FROM {temp}")
        return results

    # ------------------------------------------------------------------ #
    # Body compilation
    # ------------------------------------------------------------------ #
    def _compile_body(
        self,
        body: Sequence[Atom],
        binding: Optional[Dict[Variable, object]] = None,
        outer_columns: Optional[Dict[Variable, str]] = None,
    ) -> _CompiledBody:
        """Translate a conjunctive body into FROM/WHERE fragments.

        ``binding`` pins variables to concrete values (the initial binding of
        the backtracking join); ``outer_columns`` pins variables to columns of
        an enclosing query (used by set-at-a-time coverage, where head
        variables reference the candidate-example temp table).
        """

        def resolve(atom: Atom) -> Optional[str]:
            relation = self._relations.get(atom.predicate)
            if relation is None or relation.schema.arity != atom.arity:
                return None
            return relation._table

        return compile_conjunction(
            body, resolve, binding=binding, outer_columns=outer_columns
        )

    @staticmethod
    def _sql_for(compiled: _CompiledBody, select: str) -> str:
        sql = f"SELECT {select} FROM {', '.join(compiled.from_items)}"
        if compiled.where:
            sql += " WHERE " + " AND ".join(compiled.where)
        return sql

    # ------------------------------------------------------------------ #
    # Set-at-a-time evaluation (probed by QueryEvaluator)
    # ------------------------------------------------------------------ #
    def satisfiable(
        self,
        body: Sequence[Atom],
        binding: Optional[Dict[Variable, object]] = None,
        connection: Optional[sqlite3.Connection] = None,
    ) -> bool:
        """One satisfying assignment exists (``SELECT 1 ... LIMIT 1``)."""
        if not body:
            return True
        compiled = self._compile_body(body, binding)
        if compiled.empty:
            return False
        sql = self._sql_for(compiled, "1") + " LIMIT 1"
        connection = connection or self._connection
        return connection.execute(sql, compiled.params).fetchone() is not None

    def count_bindings(
        self, body: Sequence[Atom], limit: Optional[int] = None
    ) -> int:
        """Number of satisfying assignments, optionally capped at ``limit``."""
        if not body:
            return 1 if limit is None or limit >= 1 else 0
        compiled = self._compile_body(body)
        if compiled.empty:
            return 0
        inner = self._sql_for(compiled, "1")
        if limit is not None:
            inner += f" LIMIT {int(limit)}"
        cursor = self._connection.execute(
            f"SELECT COUNT(*) FROM ({inner})", compiled.params
        )
        return int(cursor.fetchone()[0])

    def iter_bindings(
        self, body: Sequence[Atom], binding: Optional[Dict[Variable, object]] = None
    ) -> Iterator[Dict[Variable, object]]:
        """Enumerate satisfying assignments of the body's variables."""
        base = dict(binding or {})
        if not body:
            yield dict(base)
            return
        compiled = self._compile_body(body, binding)
        if compiled.empty:
            return
        variables = [
            v for v in compiled.variable_columns if v not in base
        ]
        if not variables:
            if self.satisfiable(body, binding):
                yield dict(base)
            return
        select = ", ".join(compiled.variable_columns[v] for v in variables)
        cursor = self._connection.execute(
            self._sql_for(compiled, select), compiled.params
        )
        for row in cursor:
            result = dict(base)
            result.update(zip(variables, row))
            yield result

    def head_tuples(
        self, clause: HornClause, max_results: Optional[int] = None
    ) -> Set[Row]:
        """All head tuples produced by a (safe) clause, as one SELECT DISTINCT."""
        if not clause.body:
            raise CompilationNotSupported("empty body: nothing to join")
        compiled = self._compile_body(clause.body)
        if compiled.empty:
            return set()
        select_parts: List[str] = []
        head_params: List[object] = []
        for term in clause.head.terms:
            if isinstance(term, Constant):
                try:
                    head_params.append(_storable(term.value))
                except BackendValueError as exc:
                    raise CompilationNotSupported(
                        f"unstorable head constant {term.value!r}"
                    ) from exc
                select_parts.append("?")
                continue
            column = compiled.variable_columns.get(term)
            if column is None:
                raise ValueError(f"unbound head variable {term}")
            select_parts.append(column)
        sql = self._sql_for(compiled, "DISTINCT " + ", ".join(select_parts))
        if max_results is not None:
            sql += f" LIMIT {int(max_results)}"
        cursor = self._connection.execute(sql, head_params + compiled.params)
        return {tuple(row) for row in cursor}

    @staticmethod
    def _outer_columns_for(head: Atom) -> Dict[Variable, str]:
        """Map the head's distinct variables (first-occurrence order) to the
        candidate temp table's key columns ``cand.x0, cand.x1, ...``."""
        first_position: Dict[Variable, int] = {}
        for position, term in enumerate(head.terms):
            if isinstance(term, Variable) and term not in first_position:
                first_position[term] = position
        variables = sorted(first_position, key=lambda v: first_position[v])
        return {variable: f"cand.x{i}" for i, variable in enumerate(variables)}

    def _covered_batch_on(
        self,
        connection: sqlite3.Connection,
        indexed_clauses: Sequence[Tuple[int, HornClause]],
        candidates: Sequence[Sequence[object]],
    ) -> Dict[int, Optional[Set[Row]]]:
        """Set-at-a-time coverage of several clauses on one connection.

        Clauses are grouped by head signature so the candidate tuples are
        loaded into ONE temp table per signature and reused by every clause
        of the group — this amortization (not just thread fan-out) is what
        makes batched scoring beat the per-clause sequential path.  The
        result maps each input index to its covered candidate set, or to
        ``None`` when that clause cannot be compiled (the caller falls back
        to the tuple-at-a-time join).
        """
        results: Dict[int, Optional[Set[Row]]] = {}
        groups: Dict[Tuple[object, ...], List[Tuple[int, HornClause]]] = {}
        for index, clause in indexed_clauses:
            groups.setdefault(_head_signature(clause.head), []).append((index, clause))

        for members in groups.values():
            head = members[0][1].head
            projection = _CandidateProjection(head, candidates)
            if not projection.viable:
                for index, _ in members:
                    results[index] = set()
                continue
            if not projection.var_positions:
                # All-constant heads: the body never references the candidates.
                for index, clause in members:
                    if not clause.body:
                        results[index] = set(projection.viable)
                        continue
                    try:
                        satisfied = self.satisfiable(
                            clause.body, connection=connection
                        )
                    except CompilationNotSupported:
                        results[index] = None
                        continue
                    results[index] = set(projection.viable) if satisfied else set()
                continue
            if projection.stored_keys is None:
                # Unstorable candidate values: tuple-at-a-time fallback.
                for index, _ in members:
                    results[index] = None
                continue

            width = len(projection.var_positions)
            temp = _quote(f"cand_{next(self._temp_ids)}")
            columns = ", ".join(f"x{i}" for i in range(width))
            connection.execute(f"CREATE TEMP TABLE {temp} ({columns})")
            try:
                placeholders = ", ".join("?" for _ in range(width))
                connection.executemany(
                    f"INSERT INTO {temp} VALUES ({placeholders})",
                    projection.stored_keys,
                )
                select = ", ".join(f"cand.x{i}" for i in range(width))
                for index, clause in members:
                    if not clause.body:
                        results[index] = set(projection.viable)
                        continue
                    outer_columns = self._outer_columns_for(clause.head)
                    try:
                        compiled = self._compile_body(
                            clause.body, outer_columns=outer_columns
                        )
                    except CompilationNotSupported:
                        results[index] = None
                        continue
                    if compiled.empty:
                        results[index] = set()
                        continue
                    exists = self._sql_for(compiled, "1")
                    sql = (
                        f"SELECT {select} FROM {temp} AS cand "
                        f"WHERE EXISTS ({exists})"
                    )
                    covered: Set[Row] = set()
                    for row in connection.execute(sql, compiled.params):
                        for candidate in projection.projections.get(tuple(row), []):
                            covered.add(candidate)
                    results[index] = covered
            finally:
                connection.execute(f"DROP TABLE {temp}")
        return results

    def covered_head_tuples(
        self,
        clause: HornClause,
        candidates: Sequence[Sequence[object]],
        connection: Optional[sqlite3.Connection] = None,
    ) -> Set[Row]:
        """The subset of candidate head tuples the clause derives — one query.

        This is the set-at-a-time coverage test (the paper's stored-procedure
        path): the candidates are loaded into a temp table and filtered by an
        ``EXISTS`` over the compiled body, so the whole example set is tested
        in a single statement.
        """
        connection = connection or self._connection
        result = self._covered_batch_on(connection, [(0, clause)], candidates)[0]
        if result is None:
            raise CompilationNotSupported(
                "clause not compilable for set-at-a-time coverage"
            )
        return result

    def covered_head_tuples_batch(
        self,
        clauses: Sequence[HornClause],
        candidates: Sequence[Sequence[object]],
        parallelism: Optional[int] = None,
    ) -> List[Optional[Set[Row]]]:
        """Covered candidate sets for N clauses against one candidate list.

        Sharing one candidate temp table per head signature amortizes the
        per-clause setup the sequential path pays N times.  Entries are
        ``None`` for clauses that need the tuple-at-a-time fallback.  The
        single-connection backend ignores ``parallelism``; the pooled
        subclass fans groups out across snapshot connections.
        """
        del parallelism  # one connection: batching amortizes, threads cannot
        indexed = list(enumerate(clauses))
        results = self._covered_batch_on(self._connection, indexed, candidates)
        return [results[index] for index in range(len(indexed))]

    def __repr__(self) -> str:
        return f"SQLiteBackend({len(self._relations)} relations)"


class SQLiteReadPool:
    """A pool of snapshot connections over one source SQLite database.

    Each pooled connection is an independent in-memory copy of the source
    (built with SQLite's online backup), so worker threads can evaluate
    queries truly concurrently: ``sqlite3`` releases the GIL inside
    ``step()`` and per-copy connections never contend on page locks.
    Snapshots are refreshed lazily — ``state_fn`` returns a cheap token of
    the source's current state, and a leased connection whose token is stale
    is re-copied before use, so mutations between batches are always visible.
    """

    def __init__(
        self,
        source: sqlite3.Connection,
        state_fn: Callable[[], object],
        max_idle: int = 8,
        source_owned: bool = True,
    ):
        self._source = source
        self._state_fn = state_fn
        self._max_idle = int(max_idle)
        # ``source_owned`` marks a source connection the backend created
        # itself (autocommit, no caller-managed transactions): only then may
        # the pool commit a stray open transaction before a backup.
        self._source_owned = bool(source_owned)
        self._lock = threading.Lock()
        self._idle: List[Tuple[sqlite3.Connection, object]] = []
        self._c_snapshots = obs_registry().counter(
            "sqlite.pool.snapshots", pool=next(_POOL_SEQ)
        )

    @property
    def snapshots_taken(self) -> int:
        return self._c_snapshots.value

    def _snapshot(
        self, connection: Optional[sqlite3.Connection] = None
    ) -> Tuple[sqlite3.Connection, object]:
        # Called with self._lock held: snapshot refreshes are serialized so
        # the source connection is never used from two threads at once.
        # Token is read BEFORE the copy: a write racing the backup leaves the
        # snapshot newer than its token, which only causes a harmless refresh.
        state = self._state_fn()
        if connection is None:
            connection = sqlite3.connect(
                ":memory:", check_same_thread=False, isolation_level=None
            )
            connection.execute("PRAGMA temp_store = MEMORY")
        if self._source.in_transaction:
            # The online backup cannot copy past an open write transaction.
            if not self._source_owned:
                raise RuntimeError(
                    "cannot snapshot a caller-supplied connection with an "
                    "open transaction; commit or roll back before batched "
                    "coverage on the pooled backend"
                )
            self._source.commit()
        self._source.backup(connection)
        self._c_snapshots.inc()
        return connection, state

    @contextmanager
    def lease(self) -> Iterator[sqlite3.Connection]:
        """Borrow a fresh-enough snapshot connection for the ``with`` block."""
        with self._lock:
            entry = self._idle.pop() if self._idle else None
            current = self._state_fn()
            if entry is None:
                connection, state = self._snapshot()
            else:
                connection, state = entry
                if state != current:
                    connection, state = self._snapshot(connection)
        try:
            yield connection
        finally:
            with self._lock:
                if len(self._idle) < self._max_idle:
                    self._idle.append((connection, state))
                    connection = None
            if connection is not None:
                connection.close()

    def close(self) -> None:
        with self._lock:
            for connection, _ in self._idle:
                connection.close()
            self._idle.clear()


class PooledSQLiteBackend(SQLiteBackend):
    """SQLite backend with a snapshot read pool for the parallel covering loop.

    Storage and single-statement evaluation are inherited unchanged; the
    difference is batched coverage: ``covered_head_tuples_batch`` fans the
    candidate clauses out over a thread pool in which every worker queries
    its own snapshot connection, so scoring one generation of refinements
    uses multiple cores on top of the temp-table amortization of the base
    backend.  Writes go to the primary connection and invalidate snapshots
    lazily (see :class:`SQLiteReadPool`).
    """

    name = "sqlite-pooled"
    # Reads fan out over per-worker snapshot connections, so concurrent
    # readers never share a cursor.
    supports_concurrent_reads = True

    def __init__(
        self,
        connection: Optional[sqlite3.Connection] = None,
        pool_size: Optional[int] = None,
    ):
        owns_connection = connection is None
        if connection is None:
            # The pool's backup runs from worker threads, so the primary must
            # not be pinned to its creating thread (serialized SQLite builds
            # lock internally; the pool lock serializes every backup anyway).
            connection = sqlite3.connect(
                ":memory:", check_same_thread=False, isolation_level=None
            )
        super().__init__(connection)
        if pool_size is None:
            pool_size = min(4, os.cpu_count() or 1)
        self.pool_size = max(1, int(pool_size))
        self.pool = SQLiteReadPool(
            self._connection, self._pool_state, source_owned=owns_connection
        )

    def _pool_state(self) -> Tuple[int, int]:
        # Relation mutations bump the data version; new relations change the
        # count.  Deliberately NOT total_changes: scratch temp-table writes
        # from read-only coverage calls must not invalidate snapshots.
        return (len(self._relations), self._data_version)

    def covered_head_tuples_batch(
        self,
        clauses: Sequence[HornClause],
        candidates: Sequence[Sequence[object]],
        parallelism: Optional[int] = None,
    ) -> List[Optional[Set[Row]]]:
        workers = self.pool_size if parallelism is None else max(1, int(parallelism))
        clause_list = list(clauses)
        workers = min(workers, len(clause_list))
        if workers <= 1:
            return super().covered_head_tuples_batch(clause_list, candidates)

        chunks: List[List[Tuple[int, HornClause]]] = [[] for _ in range(workers)]
        for index, clause in enumerate(clause_list):
            chunks[index % workers].append((index, clause))

        def run(chunk: List[Tuple[int, HornClause]]) -> Dict[int, Optional[Set[Row]]]:
            with self.pool.lease() as snapshot:
                return self._covered_batch_on(snapshot, chunk, candidates)

        results: Dict[int, Optional[Set[Row]]] = {}
        with ThreadPoolExecutor(max_workers=workers) as executor:
            for partial in executor.map(run, chunks):
                results.update(partial)
        return [results[index] for index in range(len(clause_list))]

    def __repr__(self) -> str:
        return (
            f"PooledSQLiteBackend({len(self._relations)} relations, "
            f"pool_size={self.pool_size})"
        )


class SaturationStore:
    """Ground saturations materialized into tagged tables for compiled
    θ-subsumption coverage (Section 7.5.3 pushed into SQL).

    Every materialized example gets an integer id.  The saturation's head
    tuple goes into a per-(target, arity) ``sat_head_*`` table and each
    ground body atom into a per-(predicate, arity) ``sat_body_*`` table
    tagged with the id.  ``covered_ids`` then answers "which materialized
    examples does clause C cover" with ONE statement: C θ-subsumes a ground
    clause D exactly when D's body, read as a canonical database, satisfies
    C's body under the head matching — an ``EXISTS`` join that SQLite
    evaluates for every example's saturation at once.

    Unlike the Python :class:`~repro.logic.subsumption.SubsumptionEngine`
    the SQL path has no backtrack budget: clauses whose Python search would
    exhaust ``max_backtracks`` (and conservatively report "not covered") are
    decided exactly here.

    Examples whose head or saturation contains values SQLite cannot store
    (or non-ground atoms) are rejected with :class:`BackendValueError`; the
    coverage engine keeps testing those through the Python engine.
    """

    def __init__(self) -> None:
        self._connection = sqlite3.connect(
            ":memory:", check_same_thread=False, isolation_level=None
        )
        self._connection.execute("PRAGMA temp_store = MEMORY")
        self._lock = threading.RLock()
        self._head_tables: Dict[Tuple[str, int], str] = {}
        self._body_tables: Dict[Tuple[str, int], str] = {}
        self._ids = itertools.count(1)
        self._key_ids: Dict[Tuple[str, Row], int] = {}
        self._size = 0
        self._stale_statistics = False
        self._analyzed_size = 0

    def __len__(self) -> int:
        return self._size

    # ------------------------------------------------------------------ #
    # Materialization
    # ------------------------------------------------------------------ #
    def _head_table(self, target: str, arity: int) -> str:
        table = self._head_tables.get((target, arity))
        if table is None:
            table = _quote(f"sat_head_{target}_{arity}")
            columns = ", ".join(f"h{i}" for i in range(arity))
            self._connection.execute(
                f"CREATE TABLE {table} (ex INTEGER PRIMARY KEY, {columns})"
            )
            self._head_tables[(target, arity)] = table
        return table

    def _body_table(self, predicate: str, arity: int) -> str:
        table = self._body_tables.get((predicate, arity))
        if table is None:
            table = _quote(f"sat_body_{predicate}_{arity}")
            columns = ", ".join(f"c{i}" for i in range(arity))
            self._connection.execute(f"CREATE TABLE {table} (ex INTEGER, {columns})")
            for i in range(arity):
                index_name = _quote(f"idx_sat_{predicate}_{arity}_c{i}")
                self._connection.execute(
                    f"CREATE INDEX {index_name} ON {table} (ex, c{i})"
                )
            self._body_tables[(predicate, arity)] = table
        return table

    def add_example(
        self, target: str, head_values: Sequence[object], body: Sequence[Atom]
    ) -> int:
        """Materialize one example's ground saturation; returns its id.

        Validates everything before touching the database so a rejected
        example leaves no partial rows behind.  Re-adding an example already
        in the store returns its existing id without inserting (so a store
        may be shared by several coverage engines over the same instance —
        saturations of one example are identical across them).
        """
        head_row = tuple(head_values)
        if not head_row:
            raise BackendValueError("cannot materialize a zero-arity example head")
        stored_head = tuple(_storable(v) for v in head_row)
        existing = self._key_ids.get((target, stored_head))
        if existing is not None:
            return existing
        prepared: Dict[Tuple[str, int], List[Row]] = {}
        for atom in body:
            if atom.arity == 0:
                raise BackendValueError("cannot materialize a zero-arity atom")
            values: List[object] = []
            for term in atom.terms:
                if not isinstance(term, Constant):
                    raise BackendValueError(
                        f"saturation atom {atom} is not ground"
                    )
                values.append(_storable(term.value))
            prepared.setdefault((atom.predicate, atom.arity), []).append(tuple(values))

        with self._lock:
            racing = self._key_ids.get((target, stored_head))
            if racing is not None:
                return racing
            example_id = next(self._ids)
            head_table = self._head_table(target, len(head_row))
            placeholders = ", ".join("?" for _ in range(len(head_row) + 1))
            self._connection.execute(
                f"INSERT INTO {head_table} VALUES ({placeholders})",
                (example_id, *stored_head),
            )
            for (predicate, arity), rows in prepared.items():
                body_table = self._body_table(predicate, arity)
                row_placeholders = ", ".join("?" for _ in range(arity + 1))
                self._connection.executemany(
                    f"INSERT INTO {body_table} VALUES ({row_placeholders})",
                    [(example_id, *row) for row in rows],
                )
            self._key_ids[(target, stored_head)] = example_id
            self._size += 1
            self._stale_statistics = True
            return example_id

    def existing_id(
        self, target: str, head_values: Sequence[object]
    ) -> Optional[int]:
        """The id of an already-materialized example, or ``None``.

        Lets engines sharing a store (cross-validation folds, the harness
        presaturation pass) claim stored saturations without rebuilding
        them — the same dedup key :meth:`add_example` uses.
        """
        try:
            stored = tuple(_storable(v) for v in head_values)
        except BackendValueError:
            return None
        return self._key_ids.get((target, stored))

    def stored_key(
        self, target: str, head_values: Sequence[object]
    ) -> Optional[Tuple[str, Row]]:
        """The dedup key this store files ``(target, head_values)`` under.

        ``None`` when the head contains unstorable values (such an example
        can never be materialized here).  Lets callers correlate their own
        example objects with keys returned by :meth:`invalidate_touching`.
        """
        try:
            return (target, tuple(_storable(v) for v in head_values))
        except BackendValueError:
            return None

    def remove_example(
        self, target: str, head_values: Sequence[object]
    ) -> Optional[int]:
        """Drop one materialized saturation by its dedup key.

        Returns the removed example's id, or ``None`` when the key was not
        materialized (including heads with unstorable values, which can
        never have been stored).  Incremental maintenance uses this to
        retract-and-repair saturations a delta invalidated.
        """
        try:
            stored = tuple(_storable(v) for v in head_values)
        except BackendValueError:
            return None
        with self._lock:
            example_id = self._key_ids.pop((target, stored), None)
            if example_id is None:
                return None
            self._delete_ids({example_id})
            return example_id

    def invalidate_touching(
        self, values: Iterable[object]
    ) -> List[Tuple[str, Row]]:
        """Drop every saturation whose footprint intersects ``values``.

        The footprint of a materialized example is its head tuple plus every
        constant in its ground body.  Bottom-clause construction only ever
        probes the database with values drawn from that footprint, so a
        delta whose touched values are disjoint from it cannot change the
        saturation — dropping exactly the intersecting examples (for the
        caller to rebuild) keeps delta maintenance byte-identical to a cold
        rebuild.  Returns the ``(target, head tuple)`` keys dropped.
        """
        storable: List[object] = []
        for value in values:
            try:
                storable.append(_storable(value))
            except BackendValueError:
                continue  # never stored, cannot intersect any footprint
        if not storable:
            return []
        with self._lock:
            if not self._key_ids:
                return []
            self._connection.execute(
                "CREATE TEMP TABLE IF NOT EXISTS _touch (v PRIMARY KEY) WITHOUT ROWID"
            )
            self._connection.execute("DELETE FROM _touch")
            self._connection.executemany(
                "INSERT OR IGNORE INTO _touch VALUES (?)", [(v,) for v in storable]
            )
            dead: Set[int] = set()
            for (_target, arity), table in self._head_tables.items():
                condition = " OR ".join(
                    f"h{i} IN (SELECT v FROM _touch)" for i in range(arity)
                )
                dead.update(
                    row[0]
                    for row in self._connection.execute(
                        f"SELECT ex FROM {table} WHERE {condition}"
                    )
                )
            for (_predicate, arity), table in self._body_tables.items():
                condition = " OR ".join(
                    f"c{i} IN (SELECT v FROM _touch)" for i in range(arity)
                )
                dead.update(
                    row[0]
                    for row in self._connection.execute(
                        f"SELECT DISTINCT ex FROM {table} WHERE {condition}"
                    )
                )
            self._connection.execute("DELETE FROM _touch")
            if not dead:
                return []
            dropped = [key for key, ex in self._key_ids.items() if ex in dead]
            for key in dropped:
                del self._key_ids[key]
            self._delete_ids(dead)
            return dropped

    def _delete_ids(self, ids: Set[int]) -> None:
        """Purge rows for ``ids`` from every head and body table (lock held)."""
        self._connection.execute(
            "CREATE TEMP TABLE IF NOT EXISTS _dead (ex INTEGER PRIMARY KEY) WITHOUT ROWID"
        )
        self._connection.execute("DELETE FROM _dead")
        self._connection.executemany(
            "INSERT OR IGNORE INTO _dead VALUES (?)", [(ex,) for ex in ids]
        )
        for table in self._head_tables.values():
            self._connection.execute(
                f"DELETE FROM {table} WHERE ex IN (SELECT ex FROM _dead)"
            )
        for table in self._body_tables.values():
            self._connection.execute(
                f"DELETE FROM {table} WHERE ex IN (SELECT ex FROM _dead)"
            )
        self._connection.execute("DELETE FROM _dead")
        self._size -= len(ids)
        self._stale_statistics = True

    def contents(self) -> Dict[Tuple[str, Row], FrozenSet[Tuple[str, Row]]]:
        """Canonical dump: ``(target, head tuple) -> {(predicate, body row)}``.

        Independent of materialization order and example-id assignment, so
        two stores filled through different paths (in-process vs sharded
        saturation construction) can be compared for identical contents.
        """
        with self._lock:
            heads: Dict[int, Tuple[str, Row]] = {}
            for (target, _arity), table in self._head_tables.items():
                for row in self._connection.execute(f"SELECT * FROM {table}"):
                    heads[row[0]] = (target, tuple(row[1:]))
            result: Dict[Tuple[str, Row], Set[Tuple[str, Row]]] = {
                key: set() for key in heads.values()
            }
            for (predicate, _arity), table in self._body_tables.items():
                for row in self._connection.execute(f"SELECT * FROM {table}"):
                    key = heads.get(row[0])
                    if key is not None:
                        result[key].add((predicate, tuple(row[1:])))
        return {key: frozenset(atoms) for key, atoms in result.items()}

    # ------------------------------------------------------------------ #
    # Coverage
    # ------------------------------------------------------------------ #
    def covered_ids(
        self, clause: HornClause, only_ids: Optional[Iterable[int]] = None
    ) -> Set[int]:
        """Ids of every materialized example the clause covers — one query.

        ``only_ids`` restricts the scan to the given example ids: delta
        maintenance re-scores just the examples a mutation invalidated
        instead of re-joining the clause against every stored saturation.

        Raises :class:`CompilationNotSupported` for bodies above the join
        limit; the caller falls back to the Python subsumption engine for
        that clause.
        """
        head = clause.head
        with self._lock:
            head_table = self._head_tables.get((head.predicate, head.arity))
            if head_table is None:
                return set()
            if self._stale_statistics:
                # Without index statistics SQLite's greedy planner can pick
                # catastrophic orders for wide saturation joins (50x+ slower).
                # But ANALYZE scans every saturation table, which would
                # dominate a delta-maintenance round that only re-adds a
                # handful of examples — and the planner only cares about
                # *relative* cardinalities, which barely move under small
                # churn.  Re-analyze only when the store has grown or shrunk
                # past 2x since the statistics were last taken.
                if not (
                    0 < self._analyzed_size // 2 <= self._size
                    and self._size <= self._analyzed_size * 2
                ):
                    self._connection.execute("ANALYZE")
                    self._analyzed_size = self._size
                self._stale_statistics = False

            where: List[str] = []
            params: List[object] = []
            outer_columns: Dict[Variable, str] = {}
            first_column: Dict[Variable, int] = {}
            for position, term in enumerate(head.terms):
                column = f"cand.h{position}"
                if isinstance(term, Constant):
                    try:
                        params.append(_storable(term.value))
                    except BackendValueError:
                        # Stored head values are storable, so nothing matches.
                        return set()
                    where.append(f"{column} = ?")
                    continue
                known = first_column.get(term)
                if known is None:
                    first_column[term] = position
                    outer_columns[term] = column
                else:
                    where.append(f"{column} = cand.h{known}")

            if clause.body:
                compiled = compile_conjunction(
                    clause.body,
                    lambda atom: self._body_tables.get((atom.predicate, atom.arity)),
                    outer_columns=outer_columns,
                    alias_condition=lambda alias: f"{alias}.ex = cand.ex",
                )
                if compiled.empty:
                    return set()
                exists = "SELECT 1 FROM " + ", ".join(compiled.from_items)
                if compiled.where:
                    exists += " WHERE " + " AND ".join(compiled.where)
                where.append(f"EXISTS ({exists})")
                params.extend(compiled.params)

            if only_ids is not None:
                ids = sorted({int(example_id) for example_id in only_ids})
                if not ids:
                    return set()
                # The scope rides a temp table rather than an inline
                # ``IN (?, ?, ...)`` so the SQL text stays identical across
                # calls: sqlite3's per-connection statement cache then skips
                # re-planning the (potentially 20-way) saturation join on
                # every delta-maintenance round.
                self._connection.execute(
                    "CREATE TEMP TABLE IF NOT EXISTS _covered_scope "
                    "(ex INTEGER PRIMARY KEY)"
                )
                self._connection.execute("DELETE FROM _covered_scope")
                self._connection.executemany(
                    "INSERT INTO _covered_scope VALUES (?)",
                    [(example_id,) for example_id in ids],
                )
                where.append("cand.ex IN (SELECT ex FROM _covered_scope)")

            sql = f"SELECT cand.ex FROM {head_table} AS cand"
            if where:
                sql += " WHERE " + " AND ".join(where)
            return {row[0] for row in self._connection.execute(sql, params)}

    def __repr__(self) -> str:
        return (
            f"SaturationStore({self._size} examples, "
            f"{len(self._body_tables)} predicates)"
        )
