"""First-class change vocabulary for incremental maintenance.

A :class:`Delta` is an ordered batch of tuple-level changes against a
:class:`~repro.database.instance.DatabaseInstance`: each op is an
``(op, relation, rows)`` triple where ``op`` is ``"add"`` or ``"remove"``,
``relation`` names a relation symbol, and ``rows`` is a tuple of value
tuples.  This is the same shape the sharded backend's mutation log has
always recorded internally; promoting it to a public type gives every
layer — instances, backends, shard workers, the saturation/coverage
engines, and :meth:`LearningSession.update` — one shared, wire-encodable
vocabulary for "what changed".

Semantics (the contract every consumer relies on):

* **Ordered.** Ops apply first-to-last; ``add`` then ``remove`` of the
  same row deletes it, the reverse order inserts it.
* **Set-based.** ``add`` of a row already present is a no-op; ``remove``
  of an absent row is a no-op (idempotent retraction — this is what makes
  replaying a delta onto an already-updated shard safe).
* **Conservative footprint.** :meth:`touched_values` reports every value
  in every listed row regardless of whether the op was effective.
  Invalidation built on it may therefore over-approximate, never
  under-approximate.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Sequence, Tuple

Row = Tuple[object, ...]
DeltaOp = Tuple[str, str, Tuple[Row, ...]]

_VALID_OPS = ("add", "remove")


class Delta:
    """An immutable, ordered batch of tuple insertions and retractions."""

    __slots__ = ("_ops",)

    def __init__(self, ops: Iterable[Sequence[object]] = ()):
        normalized: List[DeltaOp] = []
        for entry in ops:
            try:
                op, relation, rows = entry
            except (TypeError, ValueError) as exc:
                raise ValueError(
                    f"delta op must be an (op, relation, rows) triple: {entry!r}"
                ) from exc
            if op not in _VALID_OPS:
                raise ValueError(f"delta op must be 'add' or 'remove', got {op!r}")
            if not isinstance(relation, str) or not relation:
                raise ValueError(f"delta relation must be a non-empty string: {relation!r}")
            row_tuples = tuple(tuple(row) for row in rows)
            if not row_tuples:
                continue
            normalized.append((op, relation, row_tuples))
        self._ops: Tuple[DeltaOp, ...] = tuple(normalized)

    # ------------------------------------------------------------------ #
    # Construction helpers
    # ------------------------------------------------------------------ #
    @classmethod
    def add(cls, relation: str, rows: Iterable[Sequence[object]]) -> "Delta":
        """A delta inserting ``rows`` into ``relation``."""
        return cls([("add", relation, tuple(rows))])

    @classmethod
    def remove(cls, relation: str, rows: Iterable[Sequence[object]]) -> "Delta":
        """A delta retracting ``rows`` from ``relation``."""
        return cls([("remove", relation, tuple(rows))])

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def ops(self) -> Tuple[DeltaOp, ...]:
        """The ordered ``(op, relation, rows)`` triples."""
        return self._ops

    @property
    def row_count(self) -> int:
        """Total rows listed across all ops (duplicates counted)."""
        return sum(len(rows) for _, _, rows in self._ops)

    @property
    def is_empty(self) -> bool:
        return not self._ops

    def touched_relations(self) -> FrozenSet[str]:
        """Names of every relation any op mentions."""
        return frozenset(relation for _, relation, _ in self._ops)

    def touched_values(self) -> FrozenSet[object]:
        """Every value appearing in any listed row (the delta's footprint).

        A saturation whose constants are disjoint from this set — and whose
        example head values are too — cannot be affected by applying the
        delta; this is the invalidation key the incremental engines use.
        """
        values: set = set()
        for _, _, rows in self._ops:
            for row in rows:
                values.update(row)
        return frozenset(values)

    # ------------------------------------------------------------------ #
    # Combination
    # ------------------------------------------------------------------ #
    def then(self, other: "Delta") -> "Delta":
        """This delta followed by ``other`` (order-preserving concatenation)."""
        if not isinstance(other, Delta):
            raise TypeError(f"can only chain Delta with Delta, not {type(other).__name__}")
        return Delta(self._ops + other._ops)

    def __add__(self, other: "Delta") -> "Delta":
        return self.then(other)

    def coalesced(self) -> "Delta":
        """Merge runs of same-op, same-relation entries into single ops.

        Order across differing (op, relation) boundaries is preserved, so
        applying the coalesced delta is observationally identical to
        applying the original.  Adjacent duplicate rows within a run are
        deduplicated (set semantics make them no-ops anyway).
        """
        merged: List[List[object]] = []
        for op, relation, rows in self._ops:
            if merged and merged[-1][0] == op and merged[-1][1] == relation:
                merged[-1][2].extend(rows)  # type: ignore[union-attr]
            else:
                merged.append([op, relation, list(rows)])
        out: List[DeltaOp] = []
        for op, relation, rows in merged:  # type: ignore[assignment]
            seen: Dict[Row, None] = {}
            for row in rows:  # type: ignore[union-attr]
                seen.setdefault(row, None)
            out.append((op, relation, tuple(seen)))
        return Delta(out)

    # ------------------------------------------------------------------ #
    # Value semantics
    # ------------------------------------------------------------------ #
    def __bool__(self) -> bool:
        return bool(self._ops)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Delta):
            return NotImplemented
        return self._ops == other._ops

    def __hash__(self) -> int:
        return hash(self._ops)

    def __repr__(self) -> str:
        return f"Delta({len(self._ops)} ops, {self.row_count} rows)"

    # Plain-tuple pickle state keeps the type cheap to ship to shard workers.
    def __getstate__(self) -> Tuple[DeltaOp, ...]:
        return self._ops

    def __setstate__(self, state: Tuple[DeltaOp, ...]) -> None:
        self._ops = state


def as_delta(value: object) -> Delta:
    """Normalize legacy mutation-log shapes into a :class:`Delta`.

    Accepts a :class:`Delta`, one ``(op, relation, rows)`` triple, or an
    iterable of such triples — the shapes PR 4's worker ``apply_diff``
    historically received.
    """
    if isinstance(value, Delta):
        return value
    if (
        isinstance(value, (tuple, list))
        and len(value) == 3
        and isinstance(value[0], str)
        and value[0] in _VALID_OPS
    ):
        return Delta([value])
    if isinstance(value, (tuple, list)):
        combined = Delta()
        for entry in value:
            combined = combined.then(as_delta(entry))
        return combined
    raise ValueError(f"cannot interpret {value!r} as a Delta")
