"""Relational algebra over named-attribute rows.

Decomposition and composition (Section 4) are expressed with projection and
natural join, so this module provides those operators over *named rows*
(dictionaries from attribute name to value), independent of any particular
relation instance.  The natural join here is the multi-way join used to
reconstruct a composed relation from its decomposed parts.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence, Set, Tuple

from .instance import RelationInstance
from .schema import RelationSchema

NamedRow = Tuple[Tuple[str, object], ...]


def named_rows(instance: RelationInstance) -> List[Dict[str, object]]:
    """Convert a relation instance into a list of attribute->value dicts."""
    attributes = instance.schema.attributes
    return [dict(zip(attributes, row)) for row in instance.rows]


def project_rows(
    rows: Iterable[Dict[str, object]], attributes: Sequence[str]
) -> List[Dict[str, object]]:
    """Project named rows onto ``attributes`` with duplicate elimination."""
    seen: Set[NamedRow] = set()
    result: List[Dict[str, object]] = []
    for row in rows:
        projected = {a: row[a] for a in attributes}
        key = tuple(sorted(projected.items(), key=lambda kv: kv[0]))
        if key not in seen:
            seen.add(key)
            result.append(projected)
    return result


def select_rows(
    rows: Iterable[Dict[str, object]], conditions: Dict[str, object]
) -> List[Dict[str, object]]:
    """Select rows where every ``attribute == value`` condition holds."""
    return [
        row for row in rows if all(row.get(a) == v for a, v in conditions.items())
    ]


def natural_join_rows(
    left: Iterable[Dict[str, object]], right: Iterable[Dict[str, object]]
) -> List[Dict[str, object]]:
    """Natural join of two collections of named rows.

    Joins on all shared attribute names.  When there are no shared attributes
    the result is the Cartesian product — callers that need the paper's
    restriction (at least one common attribute, Definition 4.1) must check
    before calling.
    """
    left_rows = list(left)
    right_rows = list(right)
    if not left_rows or not right_rows:
        return []
    shared = sorted(set(left_rows[0]) & set(right_rows[0]))
    index: Dict[Tuple[object, ...], List[Dict[str, object]]] = {}
    for row in right_rows:
        key = tuple(row[a] for a in shared)
        index.setdefault(key, []).append(row)
    joined: List[Dict[str, object]] = []
    for row in left_rows:
        key = tuple(row[a] for a in shared)
        for match in index.get(key, []):
            combined = dict(match)
            combined.update(row)
            joined.append(combined)
    return joined


def natural_join_many(
    row_sets: Sequence[Iterable[Dict[str, object]]],
) -> List[Dict[str, object]]:
    """Left-fold natural join over several collections of named rows."""
    row_sets = [list(rows) for rows in row_sets]
    if not row_sets:
        return []
    result = row_sets[0]
    for rows in row_sets[1:]:
        result = natural_join_rows(result, rows)
    return result


def rows_to_tuples(
    rows: Iterable[Dict[str, object]], schema: RelationSchema
) -> List[Tuple[object, ...]]:
    """Serialize named rows to positional tuples for ``schema``."""
    return [tuple(row[a] for a in schema.attributes) for row in rows]


def join_is_globally_consistent(
    instances: Sequence[RelationInstance],
) -> bool:
    """Check global consistency of the natural join of ``instances``.

    The join is globally consistent when projecting the full join back onto
    each relation's attributes recovers exactly that relation — i.e. no
    relation has a dangling tuple with respect to the join (Section 4).
    """
    joined = natural_join_many([named_rows(instance) for instance in instances])
    for instance in instances:
        projected = {
            tuple(row[a] for a in instance.schema.attributes) for row in joined
        }
        if projected != instance.rows:
            return False
    return True


def join_is_pairwise_consistent(instances: Sequence[RelationInstance]) -> bool:
    """Check pairwise consistency: no relation loses tuples joining with another.

    Only pairs that share at least one attribute are checked, matching the
    natural-join restriction of Definition 4.1.
    """
    for i, left in enumerate(instances):
        for j, right in enumerate(instances):
            if i == j:
                continue
            shared = left.schema.shares_attributes_with(right.schema)
            if not shared:
                continue
            joined = natural_join_rows(named_rows(left), named_rows(right))
            projected = {
                tuple(row[a] for a in left.schema.attributes) for row in joined
            }
            if projected != left.rows:
                return False
    return True
