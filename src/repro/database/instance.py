"""Relation and database instances with hash indexes.

This module plays the role of the in-memory RDBMS (VoltDB in the paper): it
stores tuples, maintains hash indexes from constants to tuples so that
bottom-clause construction can find "all tuples containing constant ``a``" in
O(1) per tuple, and checks FDs/INDs on demand.

:class:`RelationInstance` is the relation store of the default ``memory``
backend.  :class:`DatabaseInstance` is backend-agnostic: pass
``backend="sqlite"`` (or any name registered in
:mod:`repro.database.backend`) to materialize the instance in a different
storage/evaluation engine with the same interface.
"""

from __future__ import annotations

from typing import (
    Callable,
    Dict,
    FrozenSet,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
    Union,
)

from .backend import Backend, RelationBackend, create_backend
from .constraints import FunctionalDependency, InclusionDependency
from .schema import RelationSchema, Schema

Row = Tuple[object, ...]


class RelationInstance:
    """The extension of a single relation: a set of tuples plus indexes.

    Tuples are plain Python tuples of values positionally aligned with the
    relation schema's attributes.  Two indexes are maintained:

    * ``value -> positions`` index: for each value appearing anywhere in the
      relation, the set of tuples containing it (used by bottom-clause
      construction, which looks tuples up by constant regardless of column);
    * ``(position, value) -> tuples`` index: used by joins and IND walks.
    """

    def __init__(
        self,
        schema: RelationSchema,
        rows: Iterable[Sequence[object]] = (),
        on_change: Optional[Callable[[Row, bool], None]] = None,
    ):
        self.schema = schema
        self._rows: Set[Row] = set()
        self._by_value: Dict[object, Set[Row]] = {}
        self._by_position_value: Dict[Tuple[int, object], Set[Row]] = {}
        # Invoked as ``on_change(row, added)`` after every effective insert or
        # delete; the memory backend uses it to maintain its cross-relation
        # value index (the saturation-frontier capability).
        self._on_change = on_change
        for row in rows:
            self.add(row)

    # ------------------------------------------------------------------ #
    # Mutation
    # ------------------------------------------------------------------ #
    def add(self, row: Sequence[object]) -> None:
        """Insert a tuple; silently ignores exact duplicates."""
        row_tuple: Row = tuple(row)
        if len(row_tuple) != self.schema.arity:
            raise ValueError(
                f"tuple arity {len(row_tuple)} does not match relation "
                f"{self.schema.name!r} arity {self.schema.arity}"
            )
        if row_tuple in self._rows:
            return
        self._rows.add(row_tuple)
        for position, value in enumerate(row_tuple):
            self._by_value.setdefault(value, set()).add(row_tuple)
            self._by_position_value.setdefault((position, value), set()).add(row_tuple)
        if self._on_change is not None:
            self._on_change(row_tuple, True)

    def add_all(self, rows: Iterable[Sequence[object]]) -> None:
        for row in rows:
            self.add(row)

    def remove(self, row: Sequence[object]) -> None:
        """Delete a tuple; raises KeyError if absent."""
        row_tuple: Row = tuple(row)
        if row_tuple not in self._rows:
            raise KeyError(f"tuple {row_tuple!r} not in relation {self.schema.name!r}")
        self._rows.discard(row_tuple)
        for position, value in enumerate(row_tuple):
            self._by_value.get(value, set()).discard(row_tuple)
            self._by_position_value.get((position, value), set()).discard(row_tuple)
        if self._on_change is not None:
            self._on_change(row_tuple, False)

    # ------------------------------------------------------------------ #
    # Lookup
    # ------------------------------------------------------------------ #
    @property
    def rows(self) -> Set[Row]:
        """The set of tuples (do not mutate)."""
        return self._rows

    def tuples_containing(self, value: object) -> Set[Row]:
        """All tuples mentioning ``value`` in any column."""
        return self._by_value.get(value, set())

    def tuples_with(self, position: int, value: object) -> Set[Row]:
        """All tuples with ``value`` in column ``position``."""
        return self._by_position_value.get((position, value), set())

    def tuples_matching(self, bindings: Dict[int, object]) -> Set[Row]:
        """Tuples matching all ``position -> value`` bindings (index-accelerated)."""
        if not bindings:
            return set(self._rows)
        candidate_sets = [
            self.tuples_with(position, value) for position, value in bindings.items()
        ]
        candidate_sets.sort(key=len)
        result = set(candidate_sets[0])
        for candidates in candidate_sets[1:]:
            result &= candidates
            if not result:
                break
        return result

    def project(self, attributes: Sequence[str]) -> Set[Tuple[object, ...]]:
        """Projection π_attributes of this relation (as a set of tuples)."""
        positions = self.schema.positions_of(attributes)
        return {tuple(row[p] for p in positions) for row in self._rows}

    def distinct_values(self, attribute: str) -> Set[object]:
        """Distinct values of one attribute."""
        position = self.schema.position_of(attribute)
        return {row[position] for row in self._rows}

    def __len__(self) -> int:
        return len(self._rows)

    def __iter__(self) -> Iterator[Row]:
        return iter(self._rows)

    def __contains__(self, row: Sequence[object]) -> bool:
        return tuple(row) in self._rows

    def __eq__(self, other: object) -> bool:
        # Duck-typed so relation stores of different backends compare by
        # contents (e.g. memory vs sqlite parity checks).
        return (
            hasattr(other, "schema")
            and hasattr(other, "rows")
            and other.schema == self.schema
            and set(other.rows) == self._rows
        )

    def __repr__(self) -> str:
        return f"RelationInstance({self.schema.name!r}, {len(self)} tuples)"


class DatabaseInstance:
    """An instance of a schema: one relation store per relation symbol.

    The storage/evaluation engine is pluggable: ``backend`` may be a name
    (``"memory"``, ``"sqlite"``) or a pre-built backend object.  Every
    relation store of one instance is created by the same backend, so
    backends that compile multi-relation queries (SQLite) can join across
    relations in a single statement.
    """

    def __init__(self, schema: Schema, backend: Union[str, Backend, None] = None):
        self.schema = schema
        self.backend: Backend = create_backend(backend)
        self._relations: Dict[str, RelationBackend] = {
            relation.name: self.backend.make_relation(relation)
            for relation in schema.relations
        }
        # Backends that replicate the instance elsewhere (the sharded
        # evaluation service) need the full schema — constraints included,
        # since saturation construction reads FDs/INDs — not just the
        # per-relation schemas make_relation sees.
        bind_schema = getattr(self.backend, "bind_instance_schema", None)
        if bind_schema is not None:
            bind_schema(schema)

    @property
    def backend_name(self) -> str:
        """The selector name of this instance's backend (``memory``, ``sqlite``)."""
        return self.backend.name

    # ------------------------------------------------------------------ #
    # Access
    # ------------------------------------------------------------------ #
    def relation(self, name: str) -> RelationBackend:
        """The instance of relation ``name``."""
        try:
            return self._relations[name]
        except KeyError as exc:
            raise KeyError(f"relation {name!r} not in instance") from exc

    def relations(self) -> List[RelationBackend]:
        return list(self._relations.values())

    def add_tuple(self, relation: str, row: Sequence[object]) -> None:
        """Insert a tuple into a relation."""
        self.relation(relation).add(row)

    def add_tuples(self, relation: str, rows: Iterable[Sequence[object]]) -> None:
        self.relation(relation).add_all(rows)

    def total_tuples(self) -> int:
        """Total number of tuples across all relations (the paper's #T)."""
        return sum(len(instance) for instance in self._relations.values())

    def tuples_containing(self, value: object) -> List[Tuple[str, Row]]:
        """All (relation name, tuple) pairs where the tuple mentions ``value``.

        Backends exposing a cheap single-value neighbor hook (the memory
        backend's cross-relation value index) answer in one dict hit;
        otherwise every relation's per-relation index is consulted.
        """
        neighbors = getattr(self.backend, "neighbors_of", None)
        if neighbors is not None:
            return neighbors(value)
        found: List[Tuple[str, Row]] = []
        for name, instance in self._relations.items():
            for row in instance.tuples_containing(value):
                found.append((name, row))
        return found

    def neighbors_of_batch(
        self, values: Sequence[object]
    ) -> Dict[object, List[Tuple[str, Row]]]:
        """``value -> [(relation, tuple)]`` for a whole saturation frontier.

        This is the set-at-a-time frontier expansion bottom-clause
        construction is built on: backends with the saturation capability
        (``supports_saturation_queries``) answer the entire batch natively —
        the SQLite family runs one statement per relation over a temp
        frontier-values table, the memory backend reads its cross-relation
        index — and other backends fall back to per-value lookups.
        """
        if getattr(self.backend, "supports_saturation_queries", False):
            return self.backend.neighbors_of_batch(values)
        return {value: self.tuples_containing(value) for value in values}

    # ------------------------------------------------------------------ #
    # Constraint checking
    # ------------------------------------------------------------------ #
    def satisfies_fd(self, fd: FunctionalDependency) -> bool:
        """Check a functional dependency against the stored tuples."""
        instance = self.relation(fd.relation)
        lhs_positions = instance.schema.positions_of(fd.lhs)
        rhs_positions = instance.schema.positions_of(fd.rhs)
        seen: Dict[Tuple[object, ...], Tuple[object, ...]] = {}
        for row in instance:
            key = tuple(row[p] for p in lhs_positions)
            value = tuple(row[p] for p in rhs_positions)
            if key in seen and seen[key] != value:
                return False
            seen[key] = value
        return True

    def satisfies_ind(self, ind: InclusionDependency) -> bool:
        """Check an inclusion dependency (both directions when with_equality)."""
        left_projection = self.relation(ind.left).project(ind.left_attrs)
        right_projection = self.relation(ind.right).project(ind.right_attrs)
        if not left_projection <= right_projection:
            return False
        if ind.with_equality and not right_projection <= left_projection:
            return False
        return True

    def ind_holds_with_equality(self, ind: InclusionDependency) -> bool:
        """True when the IND holds as an equality on this instance.

        This is the preprocessing check of Section 7.4: a subset-form IND that
        happens to hold with equality on the current instance can be promoted
        and used by Castor exactly like an IND with equality.
        """
        left_projection = self.relation(ind.left).project(ind.left_attrs)
        right_projection = self.relation(ind.right).project(ind.right_attrs)
        return left_projection == right_projection

    def satisfies_all_constraints(self) -> bool:
        """Check every FD and IND declared by the schema."""
        return all(
            self.satisfies_fd(fd) for fd in self.schema.functional_dependencies
        ) and all(
            self.satisfies_ind(ind) for ind in self.schema.inclusion_dependencies
        )

    def violated_constraints(self) -> List[object]:
        """Return the list of constraints that do not hold on this instance."""
        violations: List[object] = []
        for fd in self.schema.functional_dependencies:
            if not self.satisfies_fd(fd):
                violations.append(fd)
        for ind in self.schema.inclusion_dependencies:
            if not self.satisfies_ind(ind):
                violations.append(ind)
        return violations

    # ------------------------------------------------------------------ #
    # Comparison / copying
    # ------------------------------------------------------------------ #
    def data_token(self) -> Optional[Tuple[int, int]]:
        """Cheap token of this instance's current contents-version.

        Changes whenever a tuple is inserted or deleted (and when the
        relation set changes), so caches keyed on an instance — e.g. a
        :class:`~repro.session.session.LearningSession`'s prepared-instance
        and saturation-store caches — can notice mutations without
        scanning.  ``None`` when the backend tracks no version (exotic
        third-party backends); every registered backend tracks one.
        """
        pool_state = getattr(self.backend, "_pool_state", None)
        if pool_state is not None:
            return pool_state()
        # Plain SQLite (no snapshot pool) and the memory backend expose the
        # bare version counter instead.
        for attribute in ("_data_version", "data_version"):
            version = getattr(self.backend, attribute, None)
            if version is not None:
                return (len(self._relations), version)
        return None

    def copy(self) -> "DatabaseInstance":
        """Deep-ish copy: new relation stores (same backend kind) sharing tuples."""
        return self.with_backend(self.backend_name)

    def with_backend(self, backend: Union[str, Backend, None]) -> "DatabaseInstance":
        """Materialize the same contents in a (possibly different) backend."""
        duplicate = DatabaseInstance(self.schema, backend=backend)
        for name, instance in self._relations.items():
            duplicate.add_tuples(name, instance.rows)
        return duplicate

    def same_contents(self, other: "DatabaseInstance") -> bool:
        """True when both instances store identical tuple sets per relation name."""
        if set(self._relations) != set(other._relations):
            return False
        return all(
            self._relations[name].rows == other._relations[name].rows
            for name in self._relations
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, DatabaseInstance):
            return NotImplemented
        return self.same_contents(other)

    def __repr__(self) -> str:
        return (
            f"DatabaseInstance({self.schema.name!r}, {len(self._relations)} relations, "
            f"{self.total_tuples()} tuples)"
        )
